"""Shared benchmark fixtures.

The full campaign is expensive (~20 s), so it runs once per session; each
benchmark then times the *regeneration* of its table or figure from the
run and records paper-vs-measured values in ``extra_info`` (visible with
``pytest benchmarks/ --benchmark-only --benchmark-verbose`` or in the
saved JSON).
"""

from __future__ import annotations

import pytest

from repro import Experiment, ExperimentConfig


@pytest.fixture(scope="session")
def full_results():
    """The complete Feb 12 - May 12 campaign at the default seed."""
    return Experiment(ExperimentConfig(seed=7)).run()


def record(benchmark, **info):
    """Attach paper-vs-measured values to the benchmark record and print them."""
    for key, value in info.items():
        benchmark.extra_info[key] = value
    width = max(len(k) for k in info)
    print()
    for key, value in info.items():
        print(f"  {key:<{width}} : {value}")
