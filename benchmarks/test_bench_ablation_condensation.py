"""A3 -- Ablation: can water condense inside a powered case?

Paper, Section 5: "Our current knowledge is that water has few
possibilities to condense in the equipment, as this would require the
outside air to suddenly become warmer than the computer cases.  As the
cases are heated by their internal power draw ... this phenomena is not
as likely as some initial ideas suggested."

This ablation sweeps the whole campaign's tent conditions and evaluates
the dewpoint margin of (a) a powered case running a few degrees above
intake air and (b) a powered-off case at intake temperature -- showing
that internal heat is what keeps the hardware dry.
"""

from conftest import record

from repro.analysis.condensation import minimum_safe_rise_c, sweep_case_rises
from repro.hardware.vendors import VENDOR_A


def sweep(full_results):
    """Condensation exposure for powered vs unpowered cases in the tent."""
    temp = full_results.inside_temperature_raw()
    rh = full_results.inside_humidity_raw()
    powered_rise = VENDOR_A.case_rise_k_per_w * VENDOR_A.average_power_w()
    unpowered, powered = sweep_case_rises(temp, rh, [0.0, powered_rise])
    safe_rise = minimum_safe_rise_c(temp, rh)
    return powered, unpowered, safe_rise


def test_bench_ablation_condensation(benchmark, full_results):
    powered, unpowered, safe_rise = benchmark(sweep, full_results)

    # The paper's argument: a powered case never dips below the dewpoint.
    assert powered.safe
    assert unpowered.condensing_fraction >= 0.0  # dead boxes may flirt with it
    assert safe_rise <= powered.case_rise_c

    record(
        benchmark,
        paper_claim="water has few possibilities to condense in powered equipment",
        samples=powered.samples,
        powered_case_rise_c=round(powered.case_rise_c, 1),
        powered_min_margin_c=round(powered.min_margin_c, 1),
        powered_condensing_fraction=powered.condensing_fraction,
        unpowered_min_margin_c=round(unpowered.min_margin_c, 1),
        unpowered_condensing_fraction=round(unpowered.condensing_fraction, 4),
        minimum_safe_case_rise_c=safe_rise,
    )
