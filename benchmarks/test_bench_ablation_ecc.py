"""A2 -- Ablation: error-correcting memory vs the wrong-hash census.

DESIGN.md decision 2/4: bit flips occur at the paper's one-in-570-million
page-op rate on every bank, but ECC banks correct them.  This ablation
replays the paper-scale workload (27,627 runs' worth of page operations)
against ECC and non-ECC banks and compares escaped corruption -- showing
that the paper's five wrong hashes are a property of the parity-less
desktops, not of the outdoor conditions.
"""

from conftest import record

from repro.hardware.components import MemoryBank
from repro.hardware.vendors import VENDOR_A, VENDOR_C
from repro.sim.rng import RngStreams
from repro.workload.kernel_tree import KernelSourceTree

_PAPER_RUNS = 27_627


def replay(spec, stream_name):
    """Feed the paper's whole page-op census through one memory bank."""
    tree = KernelSourceTree()
    bank = MemoryBank(spec, RngStreams(7).stream(stream_name))
    escaped = 0
    # Batch per 1000 cycles: binomial sampling is exact under aggregation.
    batch = 1000 * tree.page_ops_per_cycle()
    remaining = _PAPER_RUNS * tree.page_ops_per_cycle()
    time = 0.0
    while remaining > 0:
        ops = min(batch, remaining)
        escaped += bank.perform_page_ops(ops, time)
        remaining -= ops
        time += 1.0
    return bank, escaped


def run_ablation():
    non_ecc_bank, non_ecc_escaped = replay(VENDOR_A, "ablation.non-ecc")
    ecc_bank, ecc_escaped = replay(VENDOR_C, "ablation.ecc")
    return non_ecc_bank, non_ecc_escaped, ecc_bank, ecc_escaped


def test_bench_ablation_ecc(benchmark):
    non_ecc_bank, non_ecc_escaped, ecc_bank, ecc_escaped = benchmark(run_ablation)

    assert ecc_escaped == 0
    assert non_ecc_escaped > 0
    # Both banks see faults at the same underlying rate.
    assert ecc_bank.corrected_fault_count > 0

    record(
        benchmark,
        paper_census="5 wrong hashes, all on non-ECC hosts",
        replayed_runs=_PAPER_RUNS,
        non_ecc_escaped_faults=non_ecc_escaped,
        ecc_escaped_faults=ecc_escaped,
        ecc_corrected_faults=ecc_bank.corrected_fault_count,
        fault_rate_one_in_millions=round(1e-6 / non_ecc_bank.fault_ratio),
    )
