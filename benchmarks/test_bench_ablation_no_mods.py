"""A5 -- Ablation: what if the operators had never modified the tent?

The paper's Section 3.2 narrates a fight against heat retention: foil,
knife, and fan.  This ablation runs the identical campaign (same seed,
same weather, same fleet) without any intervention and compares tent
temperatures, case temperatures, and the failure census -- quantifying
what the modifications bought in *reliability*, not just comfort.
"""

import datetime as dt

from conftest import record

from repro import Experiment
from repro.core.scenarios import no_modifications, paper_campaign

_UNTIL = dt.datetime(2010, 4, 20)


def run_pair():
    modded = Experiment(paper_campaign(seed=7)).run(until=_UNTIL)
    sealed = Experiment(no_modifications(seed=7)).run(until=_UNTIL)
    return modded, sealed


def test_bench_ablation_no_modifications(benchmark):
    modded, sealed = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    clock = modded.clock
    window = (clock.at(2010, 3, 25), clock.at(2010, 4, 20))

    modded_tent = modded.inside_temperature_raw().window(*window)
    sealed_tent = sealed.inside_temperature_raw().window(*window)
    assert sealed_tent.mean() > modded_tent.mean() + 5.0

    modded_failures = len(modded.overall_census().failure_events)
    sealed_failures = len(sealed.overall_census().failure_events)

    record(
        benchmark,
        paper_story="repeated modifications to limit the heat retained by the tent fabric",
        modded_tent_mean_c=round(modded_tent.mean(), 1),
        sealed_tent_mean_c=round(sealed_tent.mean(), 1),
        modded_tent_max_c=round(modded_tent.max(), 1),
        sealed_tent_max_c=round(sealed_tent.max(), 1),
        modded_failure_events=modded_failures,
        sealed_failure_events=sealed_failures,
        verdict=(
            "the interventions keep the tent near outside conditions; sealed, "
            "it turns into a greenhouse by April"
        ),
    )
