"""A6 -- Ablation: why the tent exists at all.

Section 3.1: "The main problem to overcome was how to shield the
computers from water or, in our case, snow."  This ablation runs the same
host population for one month in February-March under three shelters --
bare sky, the prototype's plastic boxes, and the tent -- and counts
water-ingress deaths.  Expected shape: bare hosts mostly die within the
month; the boxes (97 % protection) mostly survive the prototype weekend's
scale but accumulate risk over a month; the tent loses nobody to water.
"""

from conftest import record

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import TransientFaultModel
from repro.hardware.host import Host
from repro.hardware.vendors import VENDOR_A
from repro.sim.clock import DAY, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import OutdoorAmbient, PlasticBoxShelter
from repro.thermal.tent import Tent

_HOSTS = 12
_DAYS = 30


def _survivors(make_enclosure, seed_base):
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(17))
    clock = SimClock()
    start = clock.at(2010, 2, 19)
    quiet = TransientFaultModel(base_rate_per_hour=0.0, defective_rate_per_hour=0.0)
    alive = 0
    for i in range(_HOSTS):
        enclosure = make_enclosure(weather)
        host = Host(i + 1, VENDOR_A, RngStreams(seed_base + i), transient_model=quiet)
        host.install(enclosure, start)
        enclosure.set_it_load(host.average_power_w)
        t = start
        while t < start + _DAYS * DAY and host.running:
            enclosure.advance(t)
            host.tick(1800.0, t)
            t += 1800.0
        alive += host.running
    return alive


def run_ablation():
    return {
        "bare sky": _survivors(lambda w: OutdoorAmbient("outside", w), 100),
        "plastic boxes": _survivors(lambda w: PlasticBoxShelter("boxes", w), 200),
        "tent": _survivors(lambda w: Tent("tent", w), 300),
    }


def test_bench_ablation_shelter(benchmark):
    survivors = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    assert survivors["tent"] == _HOSTS  # water never reaches tent hardware
    assert survivors["bare sky"] < survivors["plastic boxes"]
    assert survivors["bare sky"] <= _HOSTS // 2

    record(
        benchmark,
        paper_story="'The main problem to overcome was how to shield the computers from water or, in our case, snow.'",
        hosts_per_shelter=_HOSTS,
        exposure_days=_DAYS,
        survivors_bare_sky=survivors["bare sky"],
        survivors_plastic_boxes=survivors["plastic boxes"],
        survivors_tent=survivors["tent"],
    )
