"""A1 -- Ablation: which tent modification buys how much cooling.

DESIGN.md decision 1: the tent is a single thermal node whose envelope
parameters change at the R/I/B/F events.  This ablation runs the full
factorial of interventions at the late-campaign load (nine hosts,
~0.93 kW) and reports the steady-state inside-over-outside excess for
each configuration -- quantifying the paper's qualitative "major
operations undertaken to limit the heat retained by the tent fabric".
"""

import itertools

from conftest import record

from repro.thermal.tent import Modification, TentEnvelope

_LOAD_W = 930.0
_WIND_MS = 3.8
_NOON_SOLAR_WM2 = 250.0

_MODS = (
    Modification.REFLECTIVE_FOIL,
    Modification.INNER_TENT_REMOVED,
    Modification.BOTTOM_TARP_REMOVED,
    Modification.FAN_INSTALLED,
    Modification.DOOR_HALF_OPEN,
)


def factorial_sweep():
    """Steady-state excess (degC) for every subset of modifications."""
    results = {}
    for bits in itertools.product((False, True), repeat=len(_MODS)):
        envelope = TentEnvelope()
        letters = ""
        for mod, active in zip(_MODS, bits):
            if active:
                envelope = envelope.with_modification(mod)
                letters += mod.letter
        ua = envelope.ua_w_per_k(_WIND_MS)
        heat = _LOAD_W + envelope.solar_gain_w(_NOON_SOLAR_WM2)
        results[letters or "(sealed)"] = heat / ua
    return results


def test_bench_ablation_tent_modifications(benchmark):
    sweep = benchmark(factorial_sweep)
    sealed = sweep["(sealed)"]
    fully_open = sweep["RIBFD"]
    assert fully_open < sealed / 3.0

    # Marginal benefit of each single modification over the sealed tent.
    singles = {
        mod.letter: round(sealed - sweep[mod.letter], 1) for mod in _MODS
    }
    record(
        benchmark,
        configurations=len(sweep),
        sealed_excess_c=round(sealed, 1),
        all_mods_excess_c=round(fully_open, 1),
        single_mod_benefit_c=singles,
        paper_shape="each of R, I, B, F visibly lowers the tent's internal temperature",
    )
