"""A4 -- Ablation: single-node vs two-node tent thermal model.

DESIGN.md decision 1 models the tent as one lumped thermal mass.  The
check: run the richer air+mass two-node model through the same two
late-March days under identical forcing and compare.  Expected shape --
identical steady states (the equilibrium algebra is the same), transient
divergence bounded to a couple of degrees on sub-hour scales, far below
the day-scale structure Figs. 3-4 resolve.  That bound is what licenses
the simpler model for the campaign.
"""

import numpy as np
from conftest import record

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.sim.clock import DAY, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.tent import Tent
from repro.thermal.twonode import TwoNodeTent

_LOAD_W = 930.0


def run_both():
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(41), SimClock())
    single = Tent("one", weather)
    double = TwoNodeTent("two", weather)
    start = SimClock().at(2010, 3, 20)
    end = start + 2 * DAY
    traces = {"one": [], "two": []}
    for enclosure, key in ((single, "one"), (double, "two")):
        enclosure.set_it_load(_LOAD_W)
        t = start
        while t <= end:
            enclosure.advance(t)
            traces[key].append(enclosure.intake_temp_c)
            t += 300.0
    return single, double, np.array(traces["one"]), np.array(traces["two"])


def test_bench_ablation_thermal_model(benchmark):
    single, double, trace_one, trace_two = benchmark(run_both)

    # Skip the first half-day: both models start from the profile's
    # initial temperature and need to forget it.
    settled_one = trace_one[144:]
    settled_two = trace_two[144:]
    divergence = np.abs(settled_one - settled_two)

    assert double.steady_state_air_excess_c(3.0) == single.steady_state_excess_c(3.0)
    assert divergence.max() < 4.0
    assert divergence.mean() < 2.0

    record(
        benchmark,
        design_decision="single lumped node for the tent (DESIGN.md #1)",
        steady_state_excess_match=True,
        transient_divergence_mean_c=round(float(divergence.mean()), 2),
        transient_divergence_max_c=round(float(divergence.max()), 2),
        figure_resolution="Figs. 3-4 resolve day-scale structure",
        verdict="single node adequate",
    )
