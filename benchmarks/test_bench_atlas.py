"""P3 -- atlas throughput: the multi-site economics sweep at scale.

The ``repro atlas`` verb scores hundreds of synthetic sites through the
runner's generic task plane; this benchmark pins the costs that keep the
200-site acceptance run interactive:

- the per-site scoring cost (a full synthetic weather year plus the
  economics pass) must stay under ``PER_SITE_BUDGET_S``,
- a warm cache must serve the whole sweep at least ``CACHE_SPEEDUP_FLOOR``
  times faster than computing it, and
- the ranked table must come out byte-identical whether the records were
  computed serially, in a pool, or replayed from cache -- the property
  the CI kill-and-resume smoke leans on.

The figures land in ``BENCH_atlas.json`` at the repo root.

Also runnable standalone, without pytest:
``PYTHONPATH=src python benchmarks/test_bench_atlas.py``.
"""

import json
import os
import tempfile
import time

from repro.atlas.sweep import run_atlas, specs_for_sites
from repro.atlas.table import rank_records, render_atlas_table

SEED = 7
N_SITES = 24
#: Wall-clock ceiling for scoring one site (weather year + economics).
PER_SITE_BUDGET_S = 0.5
#: A warm cache must beat recomputation by at least this factor.
CACHE_SPEEDUP_FLOOR = 3.0
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_atlas.json")


def profile_atlas():
    specs = specs_for_sites(N_SITES, seed=SEED)

    wall_start = time.perf_counter()
    serial = run_atlas(specs, jobs=1)
    serial_s = time.perf_counter() - wall_start

    cache_dir = tempfile.mkdtemp(prefix="bench-atlas-")
    wall_start = time.perf_counter()
    pooled = run_atlas(specs, jobs=2, cache_dir=cache_dir)
    pooled_s = time.perf_counter() - wall_start

    wall_start = time.perf_counter()
    warm = run_atlas(specs, jobs=2, cache_dir=cache_dir)
    warm_s = time.perf_counter() - wall_start

    tables = {
        "serial": render_atlas_table(serial.records),
        "pooled": render_atlas_table(pooled.records),
        "warm": render_atlas_table(warm.records),
    }
    ranked = rank_records(serial.records)
    best, worst = ranked[0], ranked[-1]
    return {
        "n_sites": N_SITES,
        "seed": SEED,
        "serial_wall_s": round(serial_s, 4),
        "serial_ms_per_site": round(1000.0 * serial_s / N_SITES, 2),
        "pooled_wall_s": round(pooled_s, 4),
        "warm_cache_wall_s": round(warm_s, 4),
        "warm_cache_speedup": round(serial_s / warm_s, 1),
        "warm_cache_hits": warm.cache_hits,
        "tables_identical": len(set(tables.values())) == 1,
        "sites_saving_money": sum(
            1 for r in ranked if r.savings_usd_per_year > 0
        ),
        "best_site": {
            "name": best.site,
            "latitude_deg": best.latitude_deg,
            "free_fraction": round(best.free_fraction, 4),
            "savings_usd_per_year": round(best.savings_usd_per_year, 2),
        },
        "worst_site": {
            "name": worst.site,
            "latitude_deg": worst.latitude_deg,
            "free_fraction": round(worst.free_fraction, 4),
            "savings_usd_per_year": round(worst.savings_usd_per_year, 2),
        },
    }


def _emit(report):
    path = os.path.abspath(OUTPUT)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _check(report):
    assert report["tables_identical"], (
        "serial, pooled, and warm-cache sweeps rendered different tables"
    )
    assert report["warm_cache_hits"] == report["n_sites"], (
        f"warm sweep only hit {report['warm_cache_hits']} of "
        f"{report['n_sites']} cached sites"
    )
    per_site = report["serial_ms_per_site"] / 1000.0
    assert per_site <= PER_SITE_BUDGET_S, (
        f"scoring one site took {per_site:.3f} s "
        f"(budget {PER_SITE_BUDGET_S} s) -- a 200-site atlas would crawl"
    )
    assert report["warm_cache_speedup"] >= CACHE_SPEEDUP_FLOOR, (
        f"warm cache is only {report['warm_cache_speedup']:.1f}x faster "
        f"than recomputing (floor {CACHE_SPEEDUP_FLOOR}x)"
    )
    assert report["best_site"]["free_fraction"] \
        > report["worst_site"]["free_fraction"]


def test_bench_atlas_sweep(benchmark):
    from conftest import record

    report = benchmark.pedantic(profile_atlas, rounds=1, iterations=1)
    _emit(report)
    record(
        benchmark,
        serial_ms_per_site=report["serial_ms_per_site"],
        warm_cache_speedup=report["warm_cache_speedup"],
        sites_saving_money=f"{report['sites_saving_money']}/{report['n_sites']}",
        best_site=(
            f"{report['best_site']['name']} at "
            f"{report['best_site']['latitude_deg']:+.1f} deg, "
            f"free {100 * report['best_site']['free_fraction']:.0f} % of hours"
        ),
    )
    _check(report)


if __name__ == "__main__":
    result = profile_atlas()
    _emit(result)
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
    print(f"OK: {result['n_sites']} sites at "
          f"{result['serial_ms_per_site']:.0f} ms/site, warm cache "
          f"{result['warm_cache_speedup']:.1f}x; wrote {os.path.abspath(OUTPUT)}")
