"""P8 -- chaos-plane overhead: a disarmed plant must stay under 5%.

The plant-fault chaos plane (:mod:`repro.plant`) is wired through the
fleet-scale frame, but a campaign that never asks for faults must not
pay for the wiring: with an empty :class:`PlantFaultPlan` and no trip
policy, no plant object is constructed and the frame keeps its original
callback list.  The acceptance budget says the *empty-plan* campaign
may cost at most **5%** more wall time than a plain campaign for a
100k-host steady window -- and its census must be identical, because a
disarmed chaos plane that perturbs the simulation is a bug, not an
overhead.

Method mirrors ``test_bench_observe.py``: build two identical campaigns
(one plain, one constructed with ``PlantFaultPlan.parse("")``), warm
both for one simulated day, time a multi-day steady window ``REPEATS``
times on fresh pairs, and compare the minimums.

The figures land in ``BENCH_chaos.json`` at the repo root.

Also runnable standalone, without pytest:
``PYTHONPATH=src python benchmarks/test_bench_chaos.py``.
"""

import json
import os
import time

from repro.core.config import ExperimentConfig
from repro.core.fleetscale import FleetScaleCampaign
from repro.plant.faults import PlantFaultPlan

SEED = 7
HOSTS = 100_000
WARMUP_DAYS = 1.0
WINDOW_DAYS = 2.0
#: Timed repetitions; the minimum per variant is compared.
REPEATS = 3
#: Acceptance ceiling on (empty-plan - plain) / plain for the window.
OVERHEAD_BUDGET = 0.05
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_chaos.json")


def _build(with_empty_plan):
    if with_empty_plan:
        return FleetScaleCampaign(
            HOSTS,
            ExperimentConfig(seed=SEED),
            plant_faults=PlantFaultPlan.parse(""),
        )
    return FleetScaleCampaign(HOSTS, ExperimentConfig(seed=SEED))


def _timed_window(with_empty_plan):
    """Wall seconds for the steady window, one fresh campaign."""
    fleet = _build(with_empty_plan)
    fleet.step_days(WARMUP_DAYS)
    wall_start = time.perf_counter()
    fleet.step_days(WINDOW_DAYS)
    wall = time.perf_counter() - wall_start
    return wall, fleet


def profile_chaos_overhead():
    plain_walls, empty_walls = [], []
    plain_summary = empty_summary = None
    for _ in range(REPEATS):
        wall, fleet = _timed_window(with_empty_plan=False)
        plain_walls.append(wall)
        plain_summary = fleet.summary()
        wall, fleet = _timed_window(with_empty_plan=True)
        empty_walls.append(wall)
        assert fleet.plant is None, (
            "an empty fault plan must not construct a plant"
        )
        empty_summary = fleet.summary()

    assert plain_summary == empty_summary, (
        "the disarmed chaos plane changed the census -- overhead numbers "
        "are meaningless"
    )
    plain = min(plain_walls)
    empty = min(empty_walls)
    overhead = (empty - plain) / plain
    return {
        "seed": SEED,
        "hosts": HOSTS,
        "window_days": WINDOW_DAYS,
        "repeats": REPEATS,
        "plain_wall_s": round(plain, 4),
        "empty_plan_wall_s": round(empty, 4),
        "plain_wall_s_per_sim_day": round(plain / WINDOW_DAYS, 5),
        "empty_plan_wall_s_per_sim_day": round(empty / WINDOW_DAYS, 5),
        "overhead_frac": round(overhead, 5),
        "overhead_budget": OVERHEAD_BUDGET,
        "census_identical": True,
    }


def _emit(report):
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _check(report):
    assert report["overhead_frac"] < OVERHEAD_BUDGET, (
        f"the disarmed chaos plane costs {report['overhead_frac'] * 100:.1f}% "
        f"of the plain tick (budget {OVERHEAD_BUDGET * 100:.0f}%) for a "
        f"{HOSTS}-host window"
    )


def test_bench_chaos_overhead(benchmark):
    from conftest import record

    report = benchmark.pedantic(profile_chaos_overhead, rounds=1, iterations=1)
    _emit(report)
    record(
        benchmark,
        plain_wall_s_per_sim_day=report["plain_wall_s_per_sim_day"],
        empty_plan_wall_s_per_sim_day=report["empty_plan_wall_s_per_sim_day"],
        overhead_frac=report["overhead_frac"],
        overhead_budget=OVERHEAD_BUDGET,
    )
    _check(report)


if __name__ == "__main__":
    result = profile_chaos_overhead()
    _emit(result)
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
    print(
        f"OK: {result['overhead_frac'] * 100:.2f}% <= "
        f"{OVERHEAD_BUDGET * 100:.0f}% overhead; wrote {os.path.abspath(OUTPUT)}"
    )
