"""P1 -- checkpoint cost: flush and restore overhead vs horizon length.

The resumable-sweep contract only pays off if a checkpoint flush is
cheap next to the simulation it protects.  This benchmark advances one
campaign through three horizons, measures the wall cost of simulating
each segment, of one checkpoint flush (snapshot + atomic write), and of
one restore at each horizon, then asserts the flush stays under 5 % of
the stepping time between flushes at the default 14-day resumable-sweep
cadence.  The figures land in ``BENCH_checkpoint.json`` at the repo
root.

Also runnable standalone, without pytest:
``PYTHONPATH=src python benchmarks/test_bench_checkpoint.py``.
"""

import datetime as dt
import json
import os
import tempfile
import time

from repro.core.builder import Campaign, CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.sim.clock import DAY
from repro.state.checkpoint import read_checkpoint, write_checkpoint

SEED = 7
#: The default resumable-sweep cadence (``DEFAULT_CHECKPOINT_EVERY_S``).
CADENCE_DAYS = 14
#: Campaign-days past the prototype weekend at which cost is sampled.
HORIZON_DAYS = (7, 21, 35)
BUDGET_PCT = 5.0
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_checkpoint.json")


def _timed(fn, rounds=3):
    """Best-of-``rounds`` wall time for ``fn`` (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def profile_checkpoint_cost():
    """Advance one campaign through the horizons, costing each layer."""
    config = ExperimentConfig(seed=SEED)
    campaign = CampaignBuilder(config).build()
    tmpdir = tempfile.mkdtemp(prefix="bench-ck-")
    points = []
    for index, days in enumerate(HORIZON_DAYS):
        until = config.prototype_end + dt.timedelta(days=days)
        sim_before = campaign.sim.now
        wall_start = time.perf_counter()
        if index == 0:
            campaign.run(until=until)
        else:
            campaign.continue_run(until=until)
        segment_wall_s = time.perf_counter() - wall_start
        segment_sim_days = (campaign.sim.now - sim_before) / DAY
        wall_per_sim_day = segment_wall_s / segment_sim_days

        path = os.path.join(tmpdir, f"checkpoint_{days:03d}d.json")

        def flush():
            write_checkpoint(path, campaign.checkpoint())

        flush_s = _timed(flush)
        restore_s = _timed(lambda: Campaign.restore(read_checkpoint(path)))
        points.append(
            {
                "horizon_days": days,
                "segment_sim_days": round(segment_sim_days, 3),
                "segment_wall_s": round(segment_wall_s, 4),
                "wall_s_per_sim_day": round(wall_per_sim_day, 5),
                "flush_s": round(flush_s, 5),
                "restore_s": round(restore_s, 5),
                "checkpoint_bytes": os.path.getsize(path),
                # One flush per cadence interval, against the stepping
                # cost of that same interval.
                "overhead_pct_at_cadence": round(
                    100.0 * flush_s / (wall_per_sim_day * CADENCE_DAYS), 3
                ),
            }
        )
    return {
        "seed": SEED,
        "cadence_days": CADENCE_DAYS,
        "budget_pct": BUDGET_PCT,
        "points": points,
        "worst_overhead_pct": max(p["overhead_pct_at_cadence"] for p in points),
    }


def _emit(report):
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_bench_checkpoint_overhead(benchmark):
    from conftest import record

    report = benchmark.pedantic(profile_checkpoint_cost, rounds=1, iterations=1)
    _emit(report)
    worst = report["points"][-1]
    record(
        benchmark,
        checkpoint_bytes=worst["checkpoint_bytes"],
        flush_s=worst["flush_s"],
        restore_s=worst["restore_s"],
        worst_overhead_pct=report["worst_overhead_pct"],
        budget_pct=BUDGET_PCT,
    )
    assert report["worst_overhead_pct"] < BUDGET_PCT


if __name__ == "__main__":
    result = profile_checkpoint_cost()
    _emit(result)
    print(json.dumps(result, indent=2, sort_keys=True))
    assert result["worst_overhead_pct"] < BUDGET_PCT, (
        f"checkpoint overhead {result['worst_overhead_pct']:.2f}% "
        f"exceeds the {BUDGET_PCT}% budget"
    )
    print(f"OK: worst overhead {result['worst_overhead_pct']:.2f}% "
          f"< {BUDGET_PCT}% budget; wrote {os.path.abspath(OUTPUT)}")
