"""P1 -- checkpoint cost: flush and restore overhead vs horizon length.

The resumable-sweep contract only pays off if a checkpoint flush is
cheap next to the simulation it protects.  This benchmark advances one
campaign through four horizons and, at each, measures the wall cost of
simulating the segment, of one *full* checkpoint flush (snapshot +
atomic write), of one *delta* flush through the chain the campaign
actually writes (:class:`DeltaCheckpointWriter`), and of one restore
from the delta cut.  It asserts:

- the delta flush stays under 5 % of the stepping time between flushes
  at the default 14-day resumable-sweep cadence, and
- delta cut sizes are horizon-flat: once the fleet is fully installed
  (from day ~22), a cut costs bytes proportional to the cadence
  interval, not the campaign length.  Full snapshots keep growing with
  the horizon -- the JSON shows both so the contrast is on record.

The figures land in ``BENCH_checkpoint.json`` at the repo root.

Also runnable standalone, without pytest:
``PYTHONPATH=src python benchmarks/test_bench_checkpoint.py``.
"""

import datetime as dt
import json
import os
import tempfile
import time

from repro.core.builder import Campaign, CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.sim.clock import DAY
from repro.state.checkpoint import (
    DeltaCheckpointWriter,
    read_checkpoint,
    write_checkpoint,
)

SEED = 7
#: The default resumable-sweep cadence (``DEFAULT_CHECKPOINT_EVERY_S``).
CADENCE_DAYS = 14
#: Campaign-days past the prototype weekend at which cost is sampled.
#: The horizons are one cadence apart, so each delta cut covers exactly
#: one 14-day interval; the last two intervals run at full fleet size.
HORIZON_DAYS = (7, 21, 35, 49)
BUDGET_PCT = 5.0
#: Delta cuts over identical-shape intervals must stay within this
#: factor of each other (the content is deterministic; the headroom
#: covers future model changes, not noise).
FLAT_FACTOR = 1.35
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_checkpoint.json")


def _timed(fn, rounds=3):
    """Best-of-``rounds`` wall time for ``fn`` (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def profile_checkpoint_cost():
    """Advance one campaign through the horizons, costing each layer."""
    config = ExperimentConfig(seed=SEED)
    campaign = CampaignBuilder(config).build()
    tmpdir = tempfile.mkdtemp(prefix="bench-ck-")
    writer = DeltaCheckpointWriter()
    points = []
    for index, days in enumerate(HORIZON_DAYS):
        until = config.prototype_end + dt.timedelta(days=days)
        sim_before = campaign.sim.now
        wall_start = time.perf_counter()
        if index == 0:
            campaign.run(until=until)
        else:
            campaign.continue_run(until=until)
        segment_wall_s = time.perf_counter() - wall_start
        segment_sim_days = (campaign.sim.now - sim_before) / DAY
        wall_per_sim_day = segment_wall_s / segment_sim_days

        full_path = os.path.join(tmpdir, f"full_{days:03d}d.json")
        full_s = _timed(lambda: write_checkpoint(full_path, campaign.checkpoint()))

        # The chain cut the campaign's own cadence would write: the
        # first is a full base, later ones diff against the previous
        # horizon's cut.  Re-writing would advance the chain, so each
        # timing round restores the writer to the pre-cut chain state.
        delta_path = os.path.join(tmpdir, f"checkpoint_{days:03d}d.json")
        chain_state = dict(writer.__dict__)

        def delta_flush():
            writer.__dict__.update(chain_state)
            assert writer.write(delta_path, campaign.checkpoint())

        delta_s = _timed(delta_flush)
        restore_s = _timed(lambda: Campaign.restore(read_checkpoint(delta_path)))
        points.append(
            {
                "horizon_days": days,
                "segment_sim_days": round(segment_sim_days, 3),
                "segment_wall_s": round(segment_wall_s, 4),
                "wall_s_per_sim_day": round(wall_per_sim_day, 5),
                "flush_s": round(delta_s, 5),
                "full_flush_s": round(full_s, 5),
                "restore_s": round(restore_s, 5),
                "checkpoint_bytes": os.path.getsize(delta_path),
                "full_checkpoint_bytes": os.path.getsize(full_path),
                # One flush per cadence interval, against the stepping
                # cost of that same interval.
                "overhead_pct_at_cadence": round(
                    100.0 * delta_s / (wall_per_sim_day * CADENCE_DAYS), 3
                ),
            }
        )
    return {
        "seed": SEED,
        "cadence_days": CADENCE_DAYS,
        "budget_pct": BUDGET_PCT,
        "flat_factor": FLAT_FACTOR,
        "points": points,
        "worst_overhead_pct": max(p["overhead_pct_at_cadence"] for p in points),
    }


def _emit(report):
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _check(report):
    assert report["worst_overhead_pct"] < BUDGET_PCT, (
        f"checkpoint overhead {report['worst_overhead_pct']:.2f}% "
        f"exceeds the {BUDGET_PCT}% budget"
    )
    # Horizon-flatness: the last two cuts cover identical 14-day
    # full-fleet intervals, so their delta sizes must match up to
    # FLAT_FACTOR while the full snapshots keep growing.
    last, prev = report["points"][-1], report["points"][-2]
    ratio = last["checkpoint_bytes"] / prev["checkpoint_bytes"]
    assert ratio < FLAT_FACTOR, (
        f"delta checkpoint bytes grew {ratio:.2f}x across one cadence "
        f"interval at constant fleet size (limit {FLAT_FACTOR}x)"
    )
    assert last["checkpoint_bytes"] < last["full_checkpoint_bytes"], (
        "a delta cut should be smaller than the full snapshot it replaces"
    )


def test_bench_checkpoint_overhead(benchmark):
    from conftest import record

    report = benchmark.pedantic(profile_checkpoint_cost, rounds=1, iterations=1)
    _emit(report)
    worst = report["points"][-1]
    record(
        benchmark,
        checkpoint_bytes=worst["checkpoint_bytes"],
        full_checkpoint_bytes=worst["full_checkpoint_bytes"],
        flush_s=worst["flush_s"],
        restore_s=worst["restore_s"],
        worst_overhead_pct=report["worst_overhead_pct"],
        budget_pct=BUDGET_PCT,
    )
    _check(report)


if __name__ == "__main__":
    result = profile_checkpoint_cost()
    _emit(result)
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
    print(f"OK: worst overhead {result['worst_overhead_pct']:.2f}% "
          f"< {BUDGET_PCT}% budget; wrote {os.path.abspath(OUTPUT)}")
