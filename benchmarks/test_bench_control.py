"""P1 -- control-plane cost: tick overhead and checkpoint-backed resets.

The closed-loop refactor routes *every* campaign through the
``ControlPlane``, so its overhead budget is strict on two axes:

- **tick overhead** -- a periodically ticking controller (thermostat at
  its default 5-minute interval: observe, decide, mostly hold) must cost
  less than 5 % extra wall time over the paper operator, which schedules
  pure wakes and never ticks.  The paper-operator campaign *is* the
  plain step: it produces the pinned digest byte-identically.
- **episode reset** -- ``ControlEnv.reset()`` restores a cached
  in-memory checkpoint instead of re-simulating the warm-up; that
  restore must be at least 10x faster than the cold build it replaces,
  or thousand-episode training loops pay the warm-up thousands of
  times.

The figures land in ``BENCH_control.json`` at the repo root.

Also runnable standalone, without pytest:
``PYTHONPATH=src python benchmarks/test_bench_control.py``.
"""

import datetime as dt
import json
import os
import time

from repro.control.env import ControlEnv
from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig

SEED = 7
#: Two weeks of campaign past the prototype weekend: long enough that
#: per-tick costs dominate construction noise, short enough to iterate.
UNTIL = dt.datetime(2010, 3, 5, 12, 0)
TICK_BUDGET_PCT = 5.0
RESET_SPEEDUP_FLOOR = 10.0
#: Episode window for the reset benchmark: the env's default start (the
#: warm-up the cache skips is the 17 days from the Feb 12 epoch).
EPISODE_START = dt.datetime(2010, 3, 1, 12, 0)
EPISODE_END = dt.datetime(2010, 3, 2, 12, 0)
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_control.json")


def _timed(fn, rounds=3):
    """Best-of-``rounds`` wall time for ``fn`` (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _campaign_wall_s(controller):
    def run():
        campaign = (
            CampaignBuilder(ExperimentConfig(seed=SEED))
            .with_controller(controller)
            .build()
        )
        campaign.run(until=UNTIL)
        return campaign

    return _timed(run), run()


def profile_control_cost():
    """Cost the tick loop against the wake-only baseline, then resets."""
    baseline_s, baseline = _campaign_wall_s("paper-operator")
    ticking_s, ticking = _campaign_wall_s("thermostat")
    ticks = ticking.control.ticks
    assert baseline.control.ticks == 0, "the paper operator must not tick"
    assert ticks > 0, "the thermostat never ticked"
    overhead_pct = 100.0 * (ticking_s - baseline_s) / baseline_s

    env = ControlEnv(
        episode_start=EPISODE_START,
        episode_end=EPISODE_END,
        interval_s=1800.0,
    )
    cold_s = _timed(env.reset, rounds=1)  # builds + simulates the warm-up
    warm_s = _timed(env.reset)  # restores the cached checkpoint
    speedup = cold_s / warm_s

    return {
        "seed": SEED,
        "tick_budget_pct": TICK_BUDGET_PCT,
        "reset_speedup_floor": RESET_SPEEDUP_FLOOR,
        "baseline_wall_s": round(baseline_s, 4),
        "ticking_wall_s": round(ticking_s, 4),
        "control_ticks": ticks,
        "tick_overhead_pct": round(overhead_pct, 3),
        "tick_overhead_us": round(
            1e6 * max(ticking_s - baseline_s, 0.0) / ticks, 2
        ),
        "cold_reset_s": round(cold_s, 4),
        "warm_reset_s": round(warm_s, 5),
        "reset_speedup": round(speedup, 2),
    }


def _emit(report):
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _check(report):
    assert report["tick_overhead_pct"] < TICK_BUDGET_PCT, (
        f"control-tick overhead {report['tick_overhead_pct']:.2f}% "
        f"exceeds the {TICK_BUDGET_PCT}% budget"
    )
    assert report["reset_speedup"] >= RESET_SPEEDUP_FLOOR, (
        f"checkpoint-backed reset is only {report['reset_speedup']:.1f}x "
        f"faster than a cold build (floor {RESET_SPEEDUP_FLOOR}x)"
    )


def test_bench_control_plane(benchmark):
    from conftest import record

    report = benchmark.pedantic(profile_control_cost, rounds=1, iterations=1)
    _emit(report)
    record(
        benchmark,
        tick_overhead_pct=report["tick_overhead_pct"],
        tick_overhead_us=report["tick_overhead_us"],
        control_ticks=report["control_ticks"],
        cold_reset_s=report["cold_reset_s"],
        warm_reset_s=report["warm_reset_s"],
        reset_speedup=report["reset_speedup"],
    )
    _check(report)


if __name__ == "__main__":
    result = profile_control_cost()
    _emit(result)
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
    print(
        f"OK: tick overhead {result['tick_overhead_pct']:.2f}% "
        f"< {TICK_BUDGET_PCT}%; reset {result['reset_speedup']:.1f}x "
        f">= {RESET_SPEEDUP_FLOOR}x; wrote {os.path.abspath(OUTPUT)}"
    )
