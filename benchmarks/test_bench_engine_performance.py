"""P1 -- substrate performance: what a campaign-second costs.

Not a paper artefact, but a systems repository should know its own
numbers: event-loop throughput, weather-generator build time, and the
cost of one archival cycle.  Regressions here stretch the 20-second
full campaign into minutes.
"""

from conftest import record

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import TransientFaultModel
from repro.hardware.host import Host
from repro.hardware.vendors import VENDOR_A
from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom
from repro.workload.archiver import ArchiverProcess, WorkloadLedger

_EVENTS = 50_000


def drain_event_queue():
    sim = Simulator()
    for i in range(_EVENTS):
        sim.schedule(float(i % 1000), lambda: None)
    sim.run()
    return sim.events_fired


def build_weather():
    return WeatherGenerator(HELSINKI_2010, RngStreams(3))


def test_bench_event_loop_throughput(benchmark):
    fired = benchmark.pedantic(drain_event_queue, rounds=3, iterations=1)
    assert fired == _EVENTS
    per_second = _EVENTS / benchmark.stats.stats.mean
    record(
        benchmark,
        events=_EVENTS,
        events_per_second=int(per_second),
    )
    # Regression guard, sized for a loaded CI box: the campaign needs the
    # loop to sustain on the order of 10^5 events/s on idle hardware, but
    # under full-suite contention half that is normal.
    assert per_second > 25_000


def test_bench_weather_generator_build(benchmark):
    weather = benchmark.pedantic(build_weather, rounds=3, iterations=1)
    assert weather.end_time > weather.start_time
    record(
        benchmark,
        grid_hours=int((weather.end_time - weather.start_time) / 3600.0),
    )


def test_bench_archival_cycles(benchmark):
    sim = Simulator()
    weather = build_weather()
    basement = BasementMachineRoom("basement", weather)
    start = SimClock().at(2010, 2, 19)
    sim.run_until(start)
    basement.advance(start)
    host = Host(
        1, VENDOR_A, RngStreams(3),
        transient_model=TransientFaultModel(base_rate_per_hour=0.0),
    )
    host.install(basement, start)
    ledger = WorkloadLedger()
    archiver = ArchiverProcess(sim, host, ledger)

    def one_day():
        sim.run_until(sim.now + 86_400.0)
        return ledger.total_runs

    runs = benchmark.pedantic(one_day, rounds=3, iterations=1)
    assert runs >= 144  # one day of 10-minute cycles
    record(benchmark, cycles_completed=runs)
