"""E12 -- extension: the campaign run across the whole year.

The paper's stated future work ("more data over longer periods of time
and over varying meteorological conditions"), executed: the same fleet
from February to November under the full-year Helsinki profile.  Expected
shape: the paper-snapshot census is unchanged (5.6 %); additional
failures accrue with exposure -- concentrated in the known-unreliable
vendor-B series and in the warm months -- and still no cold common cause.

This is the suite's one genuinely long benchmark (~1 min per round).
"""

import datetime as dt

from conftest import record

from repro import Experiment, ExperimentConfig
from repro.analysis.failures import find_common_cause_clusters
from repro.analysis.reliability import kaplan_meier, lifetimes_from_results
from repro.climate.sites import HELSINKI_FULL_YEAR
from repro.sim.clock import DAY


def run_extended():
    config = ExperimentConfig(
        seed=7, climate=HELSINKI_FULL_YEAR, end_date=dt.datetime(2010, 11, 1)
    )
    return Experiment(config).run()


def test_bench_extended_campaign(benchmark):
    results = benchmark.pedantic(run_extended, rounds=1, iterations=1)

    snapshot = results.snapshot
    assert snapshot is not None
    lifetimes = lifetimes_from_results(results)
    failures = [lt for lt in lifetimes if lt.failed]
    survival = kaplan_meier(lifetimes)
    clusters = find_common_cause_clusters(results.fault_log.events)
    cold_clusters = 0
    outside = results.outside_temperature()
    for cluster in clusters:
        for event in cluster.events:
            window = outside.window(event.time - 3600.0, event.time + 3600.0)
            if not window.empty and window.mean() < 0.0:
                cold_clusters += 1

    assert snapshot.failure_rate_percent <= 17.0
    assert cold_clusters == 0

    failed_vendors = sorted(
        results.fleet.host(lt.host_id).spec.vendor_id for lt in failures
    )
    record(
        benchmark,
        paper_snapshot_rate_pct=5.6,
        measured_snapshot_rate_pct=round(snapshot.failure_rate_percent, 1),
        months_simulated=8.6,
        failures_by_november=len(failures),
        failed_vendors=failed_vendors,
        final_survival=round(survival[-1].survival, 2) if survival else 1.0,
        first_failure_day=(
            round(min(lt.duration_s for lt in failures) / DAY, 1) if failures else None
        ),
        cold_common_cause_clusters=cold_clusters,
        total_runs=results.ledger.total_runs,
    )
