"""E5 -- Section 4: the host failure-rate census.

Paper: "Of the eighteen hosts installed initially, one has encountered
two transient system failures ... A failure rate of 5.6 % may seem harsh
initially, but Intel has reported a comparable rate of 4.46 % during
their experiment."  Also: "None of the hosts in the control group have
failed yet, and neither has the new host that replaced host #15."

The benchmark times the snapshot-census construction from the run's
fault log.
"""

from conftest import record

from repro.analysis.failures import INTEL_FAILURE_RATE_PERCENT
from repro.core.results import take_snapshot


def test_bench_failure_rate_census(benchmark, full_results):
    snapshot_time = full_results.snapshot.time
    snapshot = benchmark(
        take_snapshot,
        full_results.config,
        full_results.ledger,
        full_results.fault_log,
        snapshot_time,
    )
    assert snapshot.initially_installed == 18
    assert snapshot.failure_rate_percent <= 17.0
    assert snapshot.basement_failed <= 1

    failed_vendors = sorted(
        {
            full_results.fleet.host(hid).spec.vendor_id
            for hid in snapshot.failed_host_ids
        }
    )
    record(
        benchmark,
        paper_failure_rate_pct=5.6,
        measured_failure_rate_pct=round(snapshot.failure_rate_percent, 1),
        intel_reported_pct=INTEL_FAILURE_RATE_PERCENT,
        paper_failed_hosts="#15 only (known-unreliable vendor-B series)",
        measured_failed_hosts=list(snapshot.failed_host_ids),
        measured_failed_vendors=failed_vendors,
        paper_control_group_failures=0,
        measured_control_group_failures=snapshot.basement_failed,
        measured_tent_failures=snapshot.tent_failed,
    )
