"""E2 -- Fig. 2: dates of when (tent) servers were installed.

Paper: prototype Feb 12; testing starts Feb 19; staged installs through
Mar 13 ("the last of the hosts was installed March 13th"); host #15
replaced after its Mar 17 failure.  The figure shows ten tent rows
(01, 02, 03, 06, 10, 14, 15, 11, 18 and the replacement 19).

The benchmark times the timeline reconstruction from a finished run.
"""

from conftest import record

from repro.analysis.figures import fig2_timeline


def test_bench_fig2_install_timeline(benchmark, full_results):
    timeline = benchmark(fig2_timeline, full_results)
    clock = full_results.clock
    assert len(timeline.rows) == 10
    assert timeline.host_ids()[-1] == 19
    first = timeline.rows[0]
    replacement = next(r for r in timeline.rows if r.host_id == 19)
    record(
        benchmark,
        paper_first_install="2010-02-19",
        measured_first_install=clock.format(first.install_time)[:10],
        paper_last_initial_install="2010-03-13",
        measured_last_initial_install=clock.format(
            max(r.install_time for r in timeline.rows if r.replacement_for is None)
        )[:10],
        paper_replacement_after="2010-03-17",
        measured_replacement_install=clock.format(replacement.install_time)[:10],
        paper_tent_rows=10,
        measured_tent_rows=len(timeline.rows),
        measured_row_order=",".join(f"{r.host_id:02d}" for r in timeline.rows),
    )
