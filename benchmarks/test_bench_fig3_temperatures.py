"""E3 -- Fig. 3: temperatures outside and inside the tent.

Paper shape: the tent runs warmer than outside; each marked intervention
(R: reflective foil, I: inner tent removed, B: bottom tarpaulin removed,
F: fan installed) narrows the inside/outside gap; inside data begins only
when the Lascar logger arrives; outside dips to about -22 degC.

The benchmark times the full figure regeneration (outlier removal
included) from a finished run.
"""

from conftest import record

from repro.analysis.figures import fig3_temperatures


def test_bench_fig3_temperature_series(benchmark, full_results):
    data = benchmark(fig3_temperatures, full_results)
    clock = full_results.clock
    excess = data.inside_excess()

    pre_mods = excess.window(clock.at(2010, 3, 1), clock.at(2010, 3, 5))
    post_mods = excess.window(clock.at(2010, 4, 10), clock.at(2010, 5, 10))
    assert set("RIBF") <= set(data.events)
    assert post_mods.mean() < pre_mods.mean()
    assert data.outside.min() < -18.0

    record(
        benchmark,
        paper_outside_min_c=-22.0,
        measured_outside_min_c=round(data.outside.min(), 1),
        paper_shape="inside gap narrows after each of R, I, B, F",
        measured_excess_before_mods_c=round(pre_mods.mean(), 1),
        measured_excess_after_mods_c=round(post_mods.mean(), 1),
        measured_events={
            letter: clock.format(t) for letter, t in sorted(data.events.items())
        },
        paper_inside_data_from="early March (logger arrived late)",
        measured_inside_data_from=clock.format(data.inside.times[0])[:10],
        measured_outside_samples=len(data.outside),
        measured_inside_samples=len(data.inside),
    )
