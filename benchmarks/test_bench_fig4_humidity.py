"""E4 -- Fig. 4: relative humidities inside and outside the tent.

Paper shape: "the tent has been able to retain more stable relative
humidities than outside air, although sharp temperature drops are still
visible.  As we increase air flow to lower the inside temperatures, the
humidity also begins to vary more intensely."  Inside data starts at the
Lascar's late arrival; outside air reaches the 80-90 %+ RH band.

The benchmark times the figure regeneration including the companion
outlier removal.
"""

from conftest import record

from repro.analysis.figures import fig4_humidities


def test_bench_fig4_humidity_series(benchmark, full_results):
    data = benchmark(fig4_humidities, full_results)
    clock = full_results.clock

    stability = data.stability_ratio()
    before = data.inside.window(clock.at(2010, 3, 1), clock.at(2010, 3, 12))
    after = data.inside.window(clock.at(2010, 4, 1), clock.at(2010, 5, 10))
    high_rh_fraction = float((data.outside.values > 85.0).mean())

    assert stability > 1.0
    assert after.std() > before.std()
    assert high_rh_fraction > 0.05

    record(
        benchmark,
        paper_shape_1="inside RH more stable than outside",
        measured_stability_ratio=round(stability, 2),
        paper_shape_2="inside RH varies more once airflow is increased",
        measured_inside_rh_std_before_mods=round(before.std(), 1),
        measured_inside_rh_std_after_mods=round(after.std(), 1),
        paper_high_rh="episodes above 80-90 % RH observed and survived",
        measured_fraction_above_85pct=round(high_rh_fraction, 3),
        measured_outside_rh_range=(
            round(data.outside.min()), round(data.outside.max())
        ),
        measured_inside_rh_range=(
            round(data.inside.min()), round(data.inside.max())
        ),
    )
