"""P2 -- fleet throughput: batch mode vs the per-object event loop.

The columnar refactor's perf targets, measured end to end:

- at the paper's own 19-host scale the batch fleet path
  (:class:`~repro.core.fleetscale.FleetScaleCampaign`, what
  ``repro run --hosts N`` drives) must be at least **10x** faster per
  simulated day than the object-backend discrete-event campaign, and
- scaling must stay near-linear: the wall cost *per host-day* at 100k
  hosts may not exceed the 1k-host cost (batch dispatch amortizes numpy
  overhead, so per-host cost should fall with scale, not rise), and a
  100k-host simulated day must complete in seconds, not minutes.

The object baseline is timed over a steady window (fleet fully
installed, mid-March) via ``continue_run``; the batch figures time
``step_days`` after a warm-up day so one-off build costs (cohort
layout, weather spin-up) are excluded from the steady-state rate.

The figures land in ``BENCH_fleet.json`` at the repo root.

Also runnable standalone, without pytest:
``PYTHONPATH=src python benchmarks/test_bench_fleet.py``.
"""

import datetime as dt
import json
import os
import time

from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.core.fleetscale import FleetScaleCampaign
from repro.sim.clock import DAY

SEED = 7
#: Minimum batch-vs-object speedup at the paper's 19-host scale.
SPEEDUP_FLOOR = 10.0
#: Wall-clock ceiling for one simulated day at 100k hosts.
LARGE_FLEET_DAY_BUDGET_S = 10.0
#: Fleet sizes for the scaling curve (paper scale, 1k, 100k).
FLEET_SIZES = (19, 1_000, 100_000)
#: Simulated days per timed window (the 100k point uses a single day).
WINDOW_DAYS = {19: 3.0, 1_000: 3.0, 100_000: 1.0}
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_fleet.json")


def _object_baseline():
    """Steady-state wall cost per sim-day of the object-backend campaign."""
    config = ExperimentConfig(seed=SEED)
    campaign = CampaignBuilder(config).with_fleet_backend("object").build()
    # Mid-March: every install/modification plan has fired, so the
    # window measures the fleet the paper actually ran, at full size.
    steady_start = dt.datetime(2010, 3, 15, 12, 0)
    campaign.run(until=steady_start)
    sim_before = campaign.sim.now
    wall_start = time.perf_counter()
    campaign.continue_run(until=steady_start + dt.timedelta(days=3))
    wall = time.perf_counter() - wall_start
    return wall / ((campaign.sim.now - sim_before) / DAY)


def _batch_point(n_hosts):
    """Build + steady-state rate for one batch fleet size."""
    build_start = time.perf_counter()
    fleet = FleetScaleCampaign(n_hosts, ExperimentConfig(seed=SEED))
    build_s = time.perf_counter() - build_start
    fleet.step_days(1.0)  # warm-up: weather cache, numpy buffers
    window = WINDOW_DAYS[n_hosts]
    wall_start = time.perf_counter()
    fleet.step_days(window)
    wall = time.perf_counter() - wall_start
    summary = fleet.summary()
    assert summary["simulated_s"] >= (1.0 + window) * 86_400.0 - 1e-6
    per_day = wall / window
    return {
        "hosts": n_hosts,
        "build_s": round(build_s, 4),
        "window_days": window,
        "window_wall_s": round(wall, 4),
        "wall_s_per_sim_day": round(per_day, 5),
        "wall_us_per_host_day": round(1e6 * per_day / n_hosts, 3),
        "running_at_end": summary["running"],
        "transient_failures": summary["transient_failures"],
    }


def profile_fleet_throughput():
    object_per_day = _object_baseline()
    points = [_batch_point(n) for n in FLEET_SIZES]
    paper_scale = points[0]
    return {
        "seed": SEED,
        "speedup_floor": SPEEDUP_FLOOR,
        "object_wall_s_per_sim_day": round(object_per_day, 5),
        "batch_points": points,
        "speedup_at_paper_scale": round(
            object_per_day / paper_scale["wall_s_per_sim_day"], 2
        ),
        "large_fleet_day_budget_s": LARGE_FLEET_DAY_BUDGET_S,
    }


def _emit(report):
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _check(report):
    assert report["speedup_at_paper_scale"] >= SPEEDUP_FLOOR, (
        f"batch mode is only {report['speedup_at_paper_scale']:.1f}x the "
        f"object backend at 19 hosts (floor {SPEEDUP_FLOOR}x)"
    )
    small, large = report["batch_points"][1], report["batch_points"][-1]
    assert large["wall_us_per_host_day"] <= small["wall_us_per_host_day"], (
        f"per-host cost rose from {small['wall_us_per_host_day']} us at "
        f"{small['hosts']} hosts to {large['wall_us_per_host_day']} us at "
        f"{large['hosts']} hosts -- scaling is superlinear"
    )
    assert large["wall_s_per_sim_day"] < LARGE_FLEET_DAY_BUDGET_S, (
        f"a 100k-host simulated day took {large['wall_s_per_sim_day']:.2f} s "
        f"(budget {LARGE_FLEET_DAY_BUDGET_S} s)"
    )


def test_bench_fleet_throughput(benchmark):
    from conftest import record

    report = benchmark.pedantic(profile_fleet_throughput, rounds=1, iterations=1)
    _emit(report)
    large = report["batch_points"][-1]
    record(
        benchmark,
        object_wall_s_per_sim_day=report["object_wall_s_per_sim_day"],
        batch_wall_s_per_sim_day_19=report["batch_points"][0]["wall_s_per_sim_day"],
        batch_wall_s_per_sim_day_100k=large["wall_s_per_sim_day"],
        speedup_at_paper_scale=report["speedup_at_paper_scale"],
        speedup_floor=SPEEDUP_FLOOR,
    )
    _check(report)


if __name__ == "__main__":
    result = profile_fleet_throughput()
    _emit(result)
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
    print(f"OK: {result['speedup_at_paper_scale']:.1f}x >= {SPEEDUP_FLOOR}x at "
          f"paper scale; wrote {os.path.abspath(OUTPUT)}")
