"""E11 -- the geographic-extension argument (paper Section 1).

Paper: "Using outside air to cool the data center can yield energy
savings from 40 % to 67 %, according to HP and Intel respectively" and
"If we can bring the server equipment to tolerate North European
conditions, we have shown that Intel's results from New Mexico and HP's
from North East England can be extended to most parts of the globe."

The benchmark times the four-site year-long feasibility sweep and records
the free-cooling fraction and cooling-energy savings per site.  Expected
shape: Helsinki ~ NE England > New Mexico >> Singapore, with the
colder sites comfortably past the 40-67 % band the industry reports
claimed.
"""

from conftest import record

from repro.analysis.freecooling import compare_sites
from repro.climate.sites import ALL_SITES


def test_bench_free_cooling_by_site(benchmark):
    ranked = benchmark.pedantic(
        lambda: compare_sites(ALL_SITES, seed=0), rounds=3, iterations=1
    )
    by_site = {a.site: a for a in ranked}

    helsinki = by_site["helsinki-2010-full-year"]
    new_mexico = by_site["new-mexico-full-year"]
    singapore = by_site["singapore-full-year"]

    assert helsinki.free_fraction > new_mexico.free_fraction > singapore.free_fraction
    assert helsinki.cooling_energy_savings > 0.67  # beats Intel's claim

    record(
        benchmark,
        paper_claims="HP ~40 % (NE England), Intel ~67 % (New Mexico) savings",
        **{
            a.site.replace("-", "_"): (
                f"free {100 * a.free_fraction:.0f} % of hours, "
                f"saves {100 * a.cooling_energy_savings:.0f} % of cooling energy"
            )
            for a in ranked
        },
    )
