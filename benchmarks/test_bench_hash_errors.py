"""E6 -- Section 4.2.2: wrong md5sum hashes.

Paper: "Our synthetic load has encountered problems in 5 out of a total
of 27627 test runs ... two hosts placed outside reported one wrong
md5sum hash each, and one host placed inside reported three wrong
hashes.  All three hosts that have reported faulty hashes contain memory
chips without error-correcting parities."  bzip2recover found "only a
single one of the 396 bzip2 compression blocks had been corrupted".

Our campaign accumulates more runs than the paper's snapshot (its run
census is smaller than its own timeline implies; see EXPERIMENTS.md), so
the comparable quantity is the wrong-hash *rate* per run, plus the
structural facts: only non-ECC hosts, single corrupted blocks.

The benchmark times the wrong-hash census extraction.
"""

from conftest import record

from repro.workload.bzip2 import bzip2recover


def census(ledger, fleet):
    per_host = []
    for host_id in ledger.hosts_with_wrong_hashes():
        host = fleet.host(host_id)
        per_host.append(
            (host_id, host.spec.vendor_id, host.spec.ecc_memory,
             ledger.wrong_per_host[host_id])
        )
    newest = ledger.most_recent_stored_archive()
    recovery = bzip2recover(newest) if newest is not None else None
    return per_host, recovery


def test_bench_wrong_hash_census(benchmark, full_results):
    per_host, recovery = benchmark(census, full_results.ledger, full_results.fleet)
    ledger = full_results.ledger

    assert all(not ecc for (_hid, _vendor, ecc, _n) in per_host)
    assert recovery is not None
    assert recovery.total_blocks == 396

    paper_rate = 5 / 27_627
    record(
        benchmark,
        paper_wrong_hashes="5 in 27,627 runs",
        measured_wrong_hashes=f"{ledger.total_wrong_hashes} in {ledger.total_runs} runs",
        paper_rate_per_run=round(paper_rate, 7),
        measured_rate_per_run=round(ledger.wrong_hash_ratio, 7),
        paper_ecc_involved=False,
        measured_ecc_involved=any(ecc for (_h, _v, ecc, _n) in per_host),
        paper_recovery="1 of 396 bzip2 blocks corrupted",
        measured_recovery=recovery.summary(),
    )
