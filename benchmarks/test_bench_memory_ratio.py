"""E7 -- Section 4.2.2: the memory failure-ratio estimate.

Paper: "we have estimated the amount of memory pages read and written to
lie in the ballpark of 3.2 billion.  If the estimate is correct, and the
six faulty archives are caused by a single memory page fault each, the
failure ratio is around one in 570 million."

The benchmark times the estimate over the full run's ledger.
"""

from conftest import record

from repro.analysis.memory_errors import (
    PAPER_RATIO_ONE_IN,
    estimate_memory_error_ratio,
    paper_estimate,
)


def test_bench_memory_error_ratio(benchmark, full_results):
    estimate = benchmark(
        estimate_memory_error_ratio, full_results.ledger, full_results.fleet.tree
    )
    assert estimate.faulty_archives > 0
    assert estimate.within_factor_of_paper(factor=4.0)

    record(
        benchmark,
        paper_page_ops_billions=3.2,
        measured_page_ops_billions=round(estimate.total_page_ops / 1e9, 2),
        paper_ratio_one_in_millions=PAPER_RATIO_ONE_IN / 1e6,
        paper_arithmetic_one_in_millions=round(paper_estimate().ratio_one_in / 1e6),
        measured_ratio_one_in_millions=round(estimate.ratio_one_in / 1e6),
        measured_faulty_archives=estimate.faulty_archives,
        measured_runs=estimate.total_runs,
    )
