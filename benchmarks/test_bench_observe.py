"""P7 -- observatory overhead: series recording must stay under 5%.

The fleet observatory records eleven per-pod signals every frame plus a
wall-clock heartbeat hook; the acceptance budget says all of it together
may cost at most **5%** of the plain batch tick's wall time for a
100k-host simulated day.

Method: build two identical campaigns (same config, same seed), one
plain and one with ``record_series=True`` plus an armed
:class:`~repro.telemetry.progress.ProgressMeter`; warm both up for one
simulated day (weather cache, numpy buffers), then time a multi-day
steady window for each.  Each window is timed ``REPEATS`` times on a
fresh pair and the minimum is compared, so scheduler noise inflates
neither side.  The censuses must also be identical -- the overhead
number is only meaningful if recording did not perturb the simulation.

The figures land in ``BENCH_observe.json`` at the repo root.

Also runnable standalone, without pytest:
``PYTHONPATH=src python benchmarks/test_bench_observe.py``.
"""

import io
import json
import os
import time

from repro.core.config import ExperimentConfig
from repro.core.fleetscale import FleetScaleCampaign
from repro.telemetry.progress import ProgressMeter

SEED = 7
HOSTS = 100_000
WARMUP_DAYS = 1.0
WINDOW_DAYS = 2.0
#: Timed repetitions; the minimum per variant is compared.
REPEATS = 3
#: Acceptance ceiling on (recording - plain) / plain for the window.
OVERHEAD_BUDGET = 0.05
OUTPUT = os.path.join(os.path.dirname(__file__), "..", "BENCH_observe.json")


def _build(recording):
    fleet = FleetScaleCampaign(
        HOSTS, ExperimentConfig(seed=SEED), record_series=recording
    )
    if recording:
        meter = ProgressMeter(io.StringIO(), interval_s=2.0, source="bench")
        fleet.progress = meter
    return fleet


def _timed_window(recording):
    """Wall seconds for the steady window, one fresh campaign."""
    fleet = _build(recording)
    fleet.step_days(WARMUP_DAYS)
    wall_start = time.perf_counter()
    fleet.step_days(WINDOW_DAYS)
    wall = time.perf_counter() - wall_start
    return wall, fleet


def profile_observe_overhead():
    plain_walls, recording_walls = [], []
    plain_summary = recording_summary = None
    samples = stride = 0
    for _ in range(REPEATS):
        wall, fleet = _timed_window(recording=False)
        plain_walls.append(wall)
        plain_summary = fleet.summary()
        wall, fleet = _timed_window(recording=True)
        recording_walls.append(wall)
        recording_summary = fleet.summary()
        samples, stride = fleet.series.n_samples, fleet.series.stride

    assert plain_summary == recording_summary, (
        "recording changed the census -- overhead numbers are meaningless"
    )
    plain = min(plain_walls)
    recording = min(recording_walls)
    overhead = (recording - plain) / plain
    return {
        "seed": SEED,
        "hosts": HOSTS,
        "window_days": WINDOW_DAYS,
        "repeats": REPEATS,
        "plain_wall_s": round(plain, 4),
        "recording_wall_s": round(recording, 4),
        "plain_wall_s_per_sim_day": round(plain / WINDOW_DAYS, 5),
        "recording_wall_s_per_sim_day": round(recording / WINDOW_DAYS, 5),
        "overhead_frac": round(overhead, 5),
        "overhead_budget": OVERHEAD_BUDGET,
        "series_samples": samples,
        "series_stride": stride,
        "census_identical": True,
    }


def _emit(report):
    with open(OUTPUT, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _check(report):
    assert report["overhead_frac"] < OVERHEAD_BUDGET, (
        f"series recording costs {report['overhead_frac'] * 100:.1f}% of the "
        f"plain tick (budget {OVERHEAD_BUDGET * 100:.0f}%) for a "
        f"{HOSTS}-host window"
    )


def test_bench_observe_overhead(benchmark):
    from conftest import record

    report = benchmark.pedantic(profile_observe_overhead, rounds=1, iterations=1)
    _emit(report)
    record(
        benchmark,
        plain_wall_s_per_sim_day=report["plain_wall_s_per_sim_day"],
        recording_wall_s_per_sim_day=report["recording_wall_s_per_sim_day"],
        overhead_frac=report["overhead_frac"],
        overhead_budget=OVERHEAD_BUDGET,
    )
    _check(report)


if __name__ == "__main__":
    result = profile_observe_overhead()
    _emit(result)
    print(json.dumps(result, indent=2, sort_keys=True))
    _check(result)
    print(
        f"OK: {result['overhead_frac'] * 100:.2f}% <= "
        f"{OVERHEAD_BUDGET * 100:.0f}% overhead; wrote {os.path.abspath(OUTPUT)}"
    )
