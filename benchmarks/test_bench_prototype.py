"""E1 -- Section 3.1: the prototype weekend (Feb 12-15).

Paper: the generic PC between plastic boxes "survived the test, remaining
operational for the whole weekend"; the local station "recorded
temperatures as low as -10.2 degC for the weekend, with an average of
-9.2 degC"; lm-sensors "showed that the CPU had been operating in
temperatures as low as -4 degC".

The benchmark times a complete prototype-phase simulation (weather,
shelter thermal model, host, station) and records paper-vs-measured.
"""

import datetime as dt

from conftest import record

from repro import Experiment, ExperimentConfig


def run_prototype_phase():
    exp = Experiment(ExperimentConfig(seed=7))
    results = exp.run(until=dt.datetime(2010, 2, 16))
    return results.prototype


def test_bench_prototype_weekend(benchmark):
    proto = benchmark.pedantic(run_prototype_phase, rounds=3, iterations=1)
    assert proto.survived
    assert proto.cpu_min_c < 0.0
    assert -14.0 < proto.outside_mean_c < -5.0
    record(
        benchmark,
        paper_outside_min_c=-10.2,
        measured_outside_min_c=round(proto.outside_min_c, 1),
        paper_outside_mean_c=-9.2,
        measured_outside_mean_c=round(proto.outside_mean_c, 1),
        paper_cpu_min_c=-4.0,
        measured_cpu_min_c=round(proto.cpu_min_c, 1),
        paper_survived=True,
        measured_survived=proto.survived,
    )
