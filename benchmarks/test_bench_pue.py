"""E10 -- Section 5: the new cluster's PUE.

Paper: 75 kW peak IT load; three CRACs drawing 6.9 kW total; a 44.7 kW
chilled-water HVAC unit; a 3.8 kW roof liquid-cooling unit.  "If we could
just sum those figures up, the new cluster's power usage effectiveness
(PUE) rating would be a rather efficient 1.74."

The benchmark times the budget arithmetic plus the free-air counterfactual
the whole paper argues for.
"""

import pytest
from conftest import record

from repro.analysis.pue import paper_breakdown


def test_bench_pue_arithmetic(benchmark):
    breakdown = benchmark(paper_breakdown)
    conventional = breakdown.conventional
    free_air = breakdown.free_air

    assert conventional.pue == pytest.approx(1.74, abs=0.005)
    assert free_air.pue < 1.1

    record(
        benchmark,
        paper_it_load_kw=75.0,
        paper_cooling_kw="6.9 + 44.7 + 3.8 = 55.4",
        measured_cooling_kw=round(conventional.cooling_total_kw, 1),
        paper_pue=1.74,
        measured_pue=round(conventional.pue, 3),
        free_air_pue=round(free_air.pue, 3),
        cooling_energy_saved_pct=round(
            100 * conventional.cooling_energy_savings_vs(free_air)
        ),
        reference_claims="HP ~40 %, Intel ~67 % savings from outside-air cooling",
    )
