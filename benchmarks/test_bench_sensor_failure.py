"""E8 -- Section 4.2.1: the sensor-chip cold failure.

Paper sequence on the longest-running host after the -22 degC episode:
plausible readings below -4 degC, then erroneous -111 degC readings, then
the chip vanishing after a re-detection attempt, then full recovery via a
warm reboot a week later -- and no recurrence.

The benchmark times a Monte-Carlo reproduction of the failure sequence
(500 chips through a scripted cold night), and the census from the full
campaign is recorded alongside.
"""

import numpy as np
from conftest import record

from repro.hardware.sensors import SensorChip, SensorState


def cold_night_monte_carlo(n_chips=500, hours=14, die_temp_c=-8.0):
    """Fraction of chips latching during one deep-cold night, and the
    recovery verdict of every latched chip after redetect + warm reboot."""
    latched = 0
    recovered = 0
    for seed in range(n_chips):
        chip = SensorChip(np.random.default_rng(seed))
        for hour in range(hours):
            chip.exposure_step(die_temp_c, 3600.0, hour * 3600.0)
        if chip.ever_latched:
            latched += 1
            chip.read(die_temp_c, hours * 3600.0)
            chip.redetect()
            chip.warm_reboot()
            recovered += chip.state is SensorState.OK
    return latched, recovered


def test_bench_sensor_cold_latch(benchmark, full_results):
    latched, recovered = benchmark.pedantic(
        cold_night_monte_carlo, rounds=3, iterations=1
    )
    assert 0 < latched < 500
    assert recovered == latched  # warm reboot always recovers, as in the paper

    campaign_latched = [
        h for h in full_results.fleet.hosts.values() if h.sensor.ever_latched
    ]
    erroneous = full_results.monitoring.erroneous_readings()
    record(
        benchmark,
        paper_story="readings < -4 degC -> -111 degC -> chip lost on redetect -> warm reboot recovers",
        mc_latch_fraction_one_night=round(latched / 500, 3),
        mc_recovery_fraction=1.0,
        campaign_latched_hosts=[h.host_id for h in campaign_latched],
        campaign_erroneous_readings=len(erroneous),
        campaign_latch_dates=[
            full_results.clock.format(h.sensor.latch_time)[:10]
            for h in campaign_latched
        ],
    )
