"""E9 -- Section 4.2.1: the defective 8-port switches.

Paper: "Both of the switches encountered a failure after a week or so of
tent operation.  After some testing, the remaining switch that had never
been used for this test manifested an identical failure state" -- the
defect is inherent to the individuals, not caused by the cold.

The benchmark times a Monte-Carlo of defective-switch lifetimes; the
campaign's actual switch narrative is recorded alongside.
"""

import numpy as np
from conftest import record

from repro.hardware.faults import FaultKind
from repro.hardware.switch import NetworkSwitch


def lifetime_monte_carlo(n=400):
    """Median powered-on days until failure for defective units."""
    lifetimes = []
    for seed in range(n):
        sw = NetworkSwitch("sw", np.random.default_rng(seed), inherent_defect=True)
        day = 0
        while sw.operational and day < 120:
            sw.tick(86_400.0, float(day))
            day += 1
        lifetimes.append(day)
    return float(np.median(lifetimes))


def test_bench_switch_failures(benchmark, full_results):
    median_days = benchmark.pedantic(lifetime_monte_carlo, rounds=3, iterations=1)
    # "after a week or so": median time to failure in single-digit days.
    assert 3.0 <= median_days <= 14.0

    switch_events = full_results.fault_log.of_kind(FaultKind.SWITCH)
    tent_switch_lifetimes = [
        round(s.powered_hours / 24.0, 1) for s in full_results.fleet.tent_switches
    ]
    record(
        benchmark,
        paper_lifetime="a week or so of tent operation",
        mc_median_lifetime_days=median_days,
        campaign_tent_switch_lifetimes_days=tent_switch_lifetimes,
        campaign_switch_fault_events=len(switch_events),
        paper_spare_verdict="identical failure on the bench",
        measured_spare_failed_on_bench=full_results.policy.spare_bench_result is False,
        campaign_repairs=[
            (dead, new) for (_t, dead, new) in full_results.policy.switch_repairs
        ],
    )
