#!/usr/bin/env python
"""Condensation risk study (paper Section 5's central safety question).

"A central question concerns whether water can condense in the hardware,
potentially short circuiting the electrical components."  The paper
argues the powered cases stay above the dewpoint.  This example sweeps a
whole synthetic winter and reports, for several case-heating levels, how
often the case surface would dip below the ambient dewpoint.

Usage::

    python examples/condensation_study.py [--seed N]
"""

import argparse

import numpy as np

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.climate.psychro import condensation_margin, dewpoint
from repro.sim.clock import HOUR, SimClock
from repro.sim.rng import RngStreams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    clock = SimClock()
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(args.seed), clock)
    times = np.arange(clock.at(2010, 2, 12), clock.at(2010, 5, 12), HOUR)
    air = weather.temperature(times)
    rh = weather.relative_humidity(times)

    print(f"Swept {len(times)} hours of winter/spring air "
          f"({air.min():.1f} .. {air.max():.1f} degC, "
          f"RH up to {rh.max():.0f} %).")
    print()
    print(f"{'case rise over air':<22}{'hours below dewpoint':>22}{'min margin':>14}")
    for rise_c in (0.0, 1.0, 2.0, 4.0, 8.0):
        margin = condensation_margin(air + rise_c, air, rh)
        condensing_hours = int((margin <= 0.0).sum())
        print(f"{rise_c:>8.1f} degC{'':<10}{condensing_hours:>22}{margin.min():>12.1f} C")

    print()
    worst = int(np.argmin(condensation_margin(air, air, rh)))
    print("Worst instant for an unpowered box: "
          f"{clock.format(float(times[worst]))}, air {air[worst]:.1f} degC, "
          f"RH {rh[worst]:.0f} %, dewpoint {dewpoint(air[worst], rh[worst]):.1f} degC.")
    print()
    print("Conclusion (as in the paper): any realistic internal power draw")
    print("keeps case surfaces above the dewpoint; only a powered-off box in")
    print("near-saturated air flirts with condensation.")


if __name__ == "__main__":
    main()
