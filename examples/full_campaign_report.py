#!/usr/bin/env python
"""Run the complete campaign and print the paper-style report.

Reproduces every Section 4/5 number from a single deterministic run:
conditions, the failure census, the wrong-hash analysis with its
bzip2recover triage, and the PUE arithmetic.  Takes ~20 s.

Usage::

    python examples/full_campaign_report.py [--seed N]
"""

import argparse

from repro import Experiment, ExperimentConfig
from repro.core.reporting import full_report


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Running the full Feb 12 - May 12 campaign (seed={args.seed})...")
    results = Experiment(ExperimentConfig(seed=args.seed)).run()
    print()
    print(full_report(results))


if __name__ == "__main__":
    main()
