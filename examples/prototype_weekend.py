#!/usr/bin/env python
"""The plastic-box prototype weekend, hour by hour (paper Section 3.1).

Re-creates the Feb 12-15 test: a generic PC sandwiched between two hard
plastic boxes on the roof terrace, watched over one deeply cold weekend.
Prints an hourly log of outside air, box-interior air, and CPU
temperature, then the verdict the paper reached ("we deemed the test a
success and scheduled a more extended test").

Usage::

    python examples/prototype_weekend.py [--seed N]
"""

import argparse

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.hardware.faults import FaultLog
from repro.hardware.host import Host
from repro.hardware.vendors import VENDOR_A
from repro.sim.clock import HOUR, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import PlasticBoxShelter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    clock = SimClock()
    streams = RngStreams(args.seed)
    weather = WeatherGenerator(HELSINKI_2010, streams, clock)
    shelter = PlasticBoxShelter("plastic-boxes", weather)
    pc = Host(0, VENDOR_A, streams)
    fault_log = FaultLog()

    start = clock.at(2010, 2, 12, 16)
    end = clock.at(2010, 2, 15, 10)
    pc.install(shelter, start)

    print(f"{'time':<17}{'outside':>9}{'box':>8}{'CPU':>8}")
    cpu_min = float("inf")
    t = start
    step = 300.0
    while t <= end:
        shelter.set_it_load(pc.average_power_w)
        shelter.advance(t)
        pc.tick(step, t, fault_log)
        if not pc.running:
            print(f"{clock.format(t)}  THE PROTOTYPE DIED")
            return
        cpu = pc.cpu_temp_c()
        cpu_min = min(cpu_min, cpu)
        if (t - start) % (6 * HOUR) < step:  # print every 6 hours
            outside = float(weather.temperature(t))
            print(
                f"{clock.format(t):<17}"
                f"{outside:>8.1f}C{shelter.intake_temp_c:>7.1f}C{cpu:>7.1f}C"
            )
        t += step

    print()
    print(f"CPU operated as low as {cpu_min:.1f} degC "
          f"(paper: 'temperatures as low as -4 degC').")
    print("The prototype survived the whole weekend -- test deemed a success;")
    print("the extended tent campaign begins the following Friday.")


if __name__ == "__main__":
    main()
