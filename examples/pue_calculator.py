#!/usr/bin/env python
"""PUE calculator for the paper's Section 5 cluster, and your own.

Reproduces the department-cluster arithmetic (75 kW IT; 6.9 + 44.7 +
3.8 kW of cooling; PUE 1.74) and the free-air counterfactual, and lets
you price an arbitrary plant from the command line.

Usage::

    python examples/pue_calculator.py
    python examples/pue_calculator.py --it-load 120 --cooling crac=9.5 chiller=51 fans=2
"""

import argparse

from repro.analysis.pue import CoolingPlant, paper_breakdown


def parse_component(text: str):
    name, _, kw = text.partition("=")
    if not name or not kw:
        raise argparse.ArgumentTypeError(f"expected NAME=KW, got {text!r}")
    return name, float(kw)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--it-load", type=float, help="IT load in kW")
    parser.add_argument(
        "--cooling", nargs="*", type=parse_component, default=[],
        help="cooling components as NAME=KW pairs",
    )
    args = parser.parse_args()

    breakdown = paper_breakdown()
    print(breakdown.conventional.describe())
    print()
    print(breakdown.free_air.describe())
    savings = breakdown.conventional.cooling_energy_savings_vs(breakdown.free_air)
    print()
    print(f"Free air cuts cooling energy by {100 * savings:.0f} % "
          "(HP and Intel claimed 40-67 % total savings).")

    if args.it_load is not None:
        plant = CoolingPlant(
            name="your plant",
            it_load_kw=args.it_load,
            cooling_components_kw=tuple(args.cooling),
        )
        print()
        print(plant.describe())


if __name__ == "__main__":
    main()
