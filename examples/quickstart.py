#!/usr/bin/env python
"""Quickstart: run the zero-degrees experiment and print its story.

By default this runs the first three weeks (prototype weekend, first
installs, the -22 degC cold snap) in a couple of seconds; pass ``--full``
for the complete Feb 12 - May 12 campaign (~20 s), which includes the
paper-snapshot census of Mar 27.

Usage::

    python examples/quickstart.py [--full] [--seed N]
"""

import argparse
import datetime as dt

from repro import Experiment, ExperimentConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="run the whole campaign")
    parser.add_argument("--seed", type=int, default=7, help="master seed (default 7)")
    args = parser.parse_args()

    config = ExperimentConfig(seed=args.seed)
    experiment = Experiment(config)
    until = None if args.full else dt.datetime(2010, 3, 5)
    print(f"Running the experiment (seed={args.seed}, "
          f"{'full campaign' if args.full else 'first three weeks'})...")
    results = experiment.run(until=until)

    print()
    print(results.summary())
    print()

    outside = results.outside_temperature()
    print(f"The weather station logged {len(outside)} outside readings; "
          f"the coldest was {outside.min():.1f} degC.")
    if results.prototype is not None and results.prototype.survived:
        print("The plastic-box prototype survived its weekend, so the tent "
              "campaign went ahead -- exactly as it did in the paper.")


if __name__ == "__main__":
    main()
