#!/usr/bin/env python
"""What if nobody had cut the tent open?  (counterfactual study)

Section 3.2 narrates a running battle with the tent's heat retention:
reflective foil, removing the inner tent, cutting the bottom tarpaulin,
adding a desk fan.  This example runs the identical campaign twice --
once as published, once with the tent left factory-sealed -- and diffs
the outcomes with :func:`repro.analysis.comparison.compare_runs`.

Usage::

    python examples/sealed_tent_counterfactual.py [--seed N] [--until YYYY-MM-DD]
"""

import argparse
import datetime as dt

from repro import Experiment
from repro.analysis.comparison import compare_runs
from repro.core.scenarios import no_modifications, paper_campaign


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--until",
        type=lambda s: dt.datetime.strptime(s, "%Y-%m-%d"),
        default=dt.datetime(2010, 4, 20),
    )
    args = parser.parse_args()

    print(f"Running the paper's campaign (seed={args.seed})...")
    modded = Experiment(paper_campaign(seed=args.seed)).run(until=args.until)
    print("Running the sealed-tent counterfactual...")
    sealed = Experiment(no_modifications(seed=args.seed)).run(until=args.until)

    print()
    comparison = compare_runs(modded, sealed, "as published", "sealed tent")
    print(comparison.describe())
    print()

    delta = comparison.tent_temperature
    if delta is not None:
        print(
            f"Left sealed, the tent would have run {delta.mean_delta:.1f} degC "
            f"hotter on average and peaked at {delta.max_b:.1f} degC --"
        )
        print("well outside every vendor's intake specification. The paper's")
        print("improvised modifications are what kept this a cooling study")
        print("rather than an overheating one.")


if __name__ == "__main__":
    main()
