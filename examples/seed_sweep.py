#!/usr/bin/env python
"""Was 5.6 % lucky?  The census as a distribution over seeds.

The paper reports one winter; the simulator can report many.  This
example reruns the campaign's first month under several master seeds and
aggregates the failure census -- showing that the paper's 5.6 % sits
comfortably inside the distribution the fault models produce, rather
than being a fortunate draw.

Usage::

    python examples/seed_sweep.py [--seeds N] [--until YYYY-MM-DD] [--jobs N]
"""

import argparse
import datetime as dt

from repro.runner import sweep_seeds


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5, help="number of seeds to run")
    parser.add_argument(
        "--until",
        type=lambda s: dt.datetime.strptime(s, "%Y-%m-%d"),
        default=dt.datetime(2010, 3, 27),
        help="horizon per run (default: the paper's snapshot date)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes (default: serial)"
    )
    args = parser.parse_args()

    seeds = list(range(1, args.seeds + 1))
    print(f"Running the campaign to {args.until.date()} under seeds {seeds}...")
    summary = sweep_seeds(seeds=seeds, until=args.until, jobs=args.jobs)

    print()
    print(summary.describe())
    print()
    verdict = "inside" if summary.rate_within(5.6) else "OUTSIDE"
    print(f"The paper's 5.6 % lies {verdict} the pooled 95 % interval;")
    print(f"pooled wrong-hash rate: {summary.pooled_wrong_hash_rate:.2e} per run "
          "(paper: 1.8e-04).")


if __name__ == "__main__":
    main()
