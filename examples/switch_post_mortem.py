#!/usr/bin/env python
"""The switch post-mortem (paper Section 4.2.1, network infrastructure).

Narrates the campaign's network story from a finished run: which defective
switch died when, how the hosts were re-cabled, what the bench test of the
never-deployed spare showed, and why the conclusion is "the problem is
inherent in these individual switches and existed even before we began
our test" -- not the cold.

Usage::

    python examples/switch_post_mortem.py [--seed N] [--until YYYY-MM-DD]
"""

import argparse
import datetime as dt

from repro import Experiment, ExperimentConfig
from repro.hardware.faults import FaultKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--until",
        type=lambda s: dt.datetime.strptime(s, "%Y-%m-%d"),
        default=None,
    )
    args = parser.parse_args()

    print(f"Running the campaign (seed={args.seed})...")
    results = Experiment(ExperimentConfig(seed=args.seed)).run(until=args.until)
    clock = results.clock
    fleet = results.fleet
    print()

    print("The tent's network gear (all three individuals whined in service):")
    for switch in fleet.tent_switches + [fleet.spare_switch]:
        role = "spare, never deployed" if switch is fleet.spare_switch else "tent"
        state = "FAILED" if not switch.operational else "still alive"
        lifetime = f"{switch.powered_hours / 24:.1f} powered days"
        print(f"  {switch.name:<10} ({role:<21}) {state:<12} after {lifetime}")
    print()

    events = results.fault_log.of_kind(FaultKind.SWITCH)
    print("Failure log:")
    for event in events:
        print(f"  {clock.format(event.time)}  {event.detail}")
    print()

    if results.policy.switch_repairs:
        print("Operator repairs (re-cabling after each death):")
        for when, dead, new in results.policy.switch_repairs:
            print(f"  {clock.format(when)}  {dead} -> {new}")
        print()

    if results.policy.spare_bench_result is False:
        print("Bench test of the never-deployed spare: FAILED identically.")
        print("Conclusion (as in the paper): the defect is inherent in these")
        print("individuals and existed before the test -- the cold is innocent.")
    elif results.policy.spare_bench_result is True:
        print("Bench test of the spare: survived its soak at this seed; the")
        print("deployed units' deaths still match their pre-existing defect.")
    else:
        print("No switch failed during this (truncated) run; nothing to test.")


if __name__ == "__main__":
    main()
