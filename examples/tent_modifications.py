#!/usr/bin/env python
"""What each tent modification bought (paper Fig. 3's R, I, B, F marks).

The paper fought the tent's heat retention with a reflective foil cover
(R), removal of the inner tent (I), partial removal of the bottom
tarpaulin (B), a desk fan (F), and a half-open door.  This example
applies them cumulatively, in paper order, at the late-campaign load and
prints the steady-state inside-over-outside excess after each step --
plus a dynamic two-day simulation showing the tent actually cooling.

Usage::

    python examples/tent_modifications.py [--seed N]
"""

import argparse

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.sim.clock import DAY, SimClock
from repro.sim.rng import RngStreams
from repro.thermal.tent import Modification, Tent

LOAD_W = 930.0  # nine hosts
WIND_MS = 3.8

PAPER_ORDER = (
    Modification.REFLECTIVE_FOIL,
    Modification.INNER_TENT_REMOVED,
    Modification.BOTTOM_TARP_REMOVED,
    Modification.FAN_INSTALLED,
    Modification.DOOR_HALF_OPEN,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    clock = SimClock()
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(args.seed), clock)

    print("Cumulative steady-state excess over outside air "
          f"({LOAD_W:.0f} W IT load, {WIND_MS} m/s wind, noon sun):")
    tent = Tent("tent", weather)
    tent.set_it_load(LOAD_W)
    excess = tent.steady_state_excess_c(WIND_MS, irradiance_wm2=250.0)
    print(f"  {'sealed tent':<28} {excess:6.1f} degC")
    for mod in PAPER_ORDER:
        tent.apply_modification(mod, 0.0)
        new_excess = tent.steady_state_excess_c(WIND_MS, irradiance_wm2=250.0)
        print(
            f"  + {mod.name.replace('_', ' ').lower():<26} "
            f"{new_excess:6.1f} degC  (saved {excess - new_excess:4.1f})"
        )
        excess = new_excess

    print()
    print("Dynamic check: a sealed tent and a fully opened tent through the")
    print("same two late-March days:")
    sealed = Tent("sealed", weather)
    opened = Tent("opened", weather)
    for mod in PAPER_ORDER:
        opened.apply_modification(mod, 0.0)
    start = clock.at(2010, 3, 25)
    for tent_variant in (sealed, opened):
        tent_variant.set_it_load(LOAD_W)
        t = start
        while t <= start + 2 * DAY:
            tent_variant.advance(t)
            t += 300.0
    outside = float(weather.temperature(start + 2 * DAY))
    print(f"  outside air            {outside:6.1f} degC")
    print(f"  sealed tent interior   {sealed.intake_temp_c:6.1f} degC")
    print(f"  opened tent interior   {opened.intake_temp_c:6.1f} degC")


if __name__ == "__main__":
    main()
