#!/usr/bin/env python
"""Validate the synthetic atmosphere before trusting it.

The whole reproduction stands on the weather generator, so this example
runs the statistical QA battery over the campaign profile (and any other
site): recovered diurnal cycle, synoptic persistence, seasonal warming,
the dominant spectral period, facility degree-days, and a temperature
sparkline.

Usage::

    python examples/weather_validation.py [--seed N]
"""

import argparse

import numpy as np

from repro.analysis.asciiplot import sparkline
from repro.analysis.degreedays import profile_degree_days
from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import HELSINKI_2010
from repro.climate.sites import ALL_SITES
from repro.climate.validation import dominant_period_hours, validate_profile
from repro.sim.clock import HOUR, SimClock
from repro.sim.rng import RngStreams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print("=== Campaign profile: helsinki-winter-2010 ===")
    report = validate_profile(HELSINKI_2010, seed=args.seed)
    print(f"diurnal amplitude : declared {report.declared_diurnal_amplitude_c:.1f} degC "
          f"(clear sky), recovered {report.recovered_diurnal_amplitude_c:.1f} degC "
          f"(cloud-damped), peak at {report.recovered_peak_hour:.1f} h")
    print(f"synoptic scale    : declared {report.declared_synoptic_corr_hours:.0f} h, "
          f"recovered {report.recovered_corr_hours:.0f} h")
    print(f"seasonal warming  : {report.recovered_trend_c_per_day:.2f} degC/day "
          f"(winter -> spring)")

    clock = SimClock()
    weather = WeatherGenerator(HELSINKI_2010, RngStreams(args.seed), clock)
    times = np.arange(clock.at(2010, 2, 12), clock.at(2010, 5, 12), HOUR)
    solar = np.asarray(weather.solar_irradiance(times))
    print(f"dominant solar period: {dominant_period_hours(times, solar):.1f} h "
          "(expected: 24)")
    temps = np.asarray(weather.temperature(times))
    print(f"campaign temperatures ({temps.min():.0f}..{temps.max():.0f} degC):")
    print("  " + sparkline(temps, width=76))
    print()

    print("=== Degree-days across the comparison sites (base 18 degC) ===")
    for site in ALL_SITES:
        dd = profile_degree_days(site, seed=args.seed)
        print(f"  {site.name:<28} {dd.heating:6.0f} HDD {dd.cooling:6.0f} CDD "
              f"(cooling share {100 * dd.cooling_fraction:.0f} %)")
    print()
    print("Cold sites are pure heating climates: their chillers have nothing")
    print("to do, which is the paper's free-cooling argument in HVAC units.")


if __name__ == "__main__":
    main()
