#!/usr/bin/env python
"""The paper's future work: the campaign extended across the whole year.

Section 6: "Our future research will extend the initial results herein
with more data over longer periods of time and over varying
meteorological conditions."  This study runs the same fleet from the
February prototype to November under the full-year Helsinki profile --
through the spring thaw, the July heat wave, and back into autumn -- and
reports how the census evolves beyond the paper's March snapshot,
including a Kaplan-Meier survival curve over host lifetimes.

Takes about a minute.

Usage::

    python examples/year_round_study.py [--seed N]
"""

import argparse
import datetime as dt

from repro import Experiment, ExperimentConfig
from repro.analysis.reliability import (
    kaplan_meier,
    lifetimes_from_results,
    wilson_interval,
)
from repro.climate.sites import HELSINKI_FULL_YEAR
from repro.sim.clock import DAY


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    config = ExperimentConfig(
        seed=args.seed,
        climate=HELSINKI_FULL_YEAR,
        end_date=dt.datetime(2010, 11, 1),
    )
    print("Running February through October (this takes about a minute)...")
    results = Experiment(config).run()
    clock = results.clock

    print()
    print(results.summary())
    print()

    tent = results.inside_temperature_raw()
    july = tent.window(clock.at(2010, 7, 1), clock.at(2010, 8, 1))
    print(f"July inside the tent: mean {july.mean():.1f} degC, "
          f"max {july.max():.1f} degC -- summer, not winter, is the stress test.")
    print()

    lifetimes = lifetimes_from_results(results)
    failures = sum(1 for lt in lifetimes if lt.failed)
    lo, hi = wilson_interval(failures, len(lifetimes))
    print(f"Failures by November: {failures} of {len(lifetimes)} hosts "
          f"({100 * failures / len(lifetimes):.0f} %; "
          f"95 % CI {100 * lo:.0f}-{100 * hi:.0f} %).")
    print("Kaplan-Meier survival:")
    for point in kaplan_meier(lifetimes):
        days = point.time_s / DAY
        print(f"  day {days:6.1f}: survival {point.survival:.2f} "
              f"({point.at_risk} at risk)")
    print()
    print("The paper's March census (5.6 %) holds at its snapshot; longer")
    print("exposure mainly harvests the known-unreliable SFF series, still")
    print("with no cold-driven common-cause cluster.")


if __name__ == "__main__":
    main()
