"""Reproduction of *Running Servers around Zero Degrees* (GreenNetworking 2010).

The paper ran 19 off-the-shelf computers outdoors through a Finnish winter,
cooled by unconditioned outside air, and reported on temperatures, relative
humidities, and the faults encountered.  This package rebuilds the entire
study as a deterministic discrete-event simulation:

- :mod:`repro.sim` -- the discrete-event engine and seeded randomness,
- :mod:`repro.climate` -- a synthetic Finnish winter and psychrometrics,
- :mod:`repro.thermal` -- the tent / plastic-box / basement enclosures,
- :mod:`repro.hardware` -- hosts, sensors, disks, switches, fault models,
- :mod:`repro.workload` -- the tar+bzip2+md5sum synthetic load,
- :mod:`repro.monitoring` -- data loggers, power meter, rsync collector,
- :mod:`repro.analysis` -- time-series, failure and PUE analysis,
- :mod:`repro.core` -- the experiment orchestration and paper-style reports.

Quickstart::

    from repro import Experiment, ExperimentConfig

    exp = Experiment(ExperimentConfig(seed=7))
    results = exp.run()
    print(results.summary())
"""

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.results import ExperimentResults

__all__ = ["Experiment", "ExperimentConfig", "ExperimentResults"]

__version__ = "1.0.0"
