"""Post-processing: everything between raw telemetry and the paper's claims.

- :mod:`repro.analysis.series` -- a small time-series container with the
  resampling and daily aggregation Figs. 3-4 need,
- :mod:`repro.analysis.outliers` -- detection of the logger-carried-indoors
  stretches the paper removed from its graphs,
- :mod:`repro.analysis.failures` -- failure-rate census and the
  common-cause clustering test of research question 3,
- :mod:`repro.analysis.memory_errors` -- the Section 4.2.2 page-op
  arithmetic ("one in 570 million"),
- :mod:`repro.analysis.pue` -- the Section 5 PUE calculation (1.74),
- :mod:`repro.analysis.figures` -- the data series behind each figure.
"""

from repro.analysis.failures import (
    CommonCauseCluster,
    FailureCensus,
    INTEL_FAILURE_RATE_PERCENT,
    find_common_cause_clusters,
)
from repro.analysis.comparison import RunComparison, compare_runs
from repro.analysis.condensation import minimum_safe_rise_c, sweep_case_rises
from repro.analysis.degreedays import DegreeDays, degree_days, profile_degree_days
from repro.analysis.economics import SiteEconomics, economics_for
from repro.analysis.freecooling import SiteAssessment, assess_site, compare_sites
from repro.analysis.memory_errors import MemoryErrorEstimate, estimate_memory_error_ratio
from repro.analysis.outliers import detect_removal_outliers, remove_removal_outliers
from repro.analysis.pue import CoolingPlant, PAPER_CLUSTER_PLANT, PueBreakdown
from repro.analysis.reliability import (
    InterpolatedReading,
    Lifetime,
    ObservationCoverage,
    interpolate_readings,
    kaplan_meier,
    lifetimes_from_results,
    mtbf_hours,
    observation_coverage,
    rates_are_consistent,
    wilson_interval,
)
from repro.analysis.scorecard import (
    CLIMATES,
    ControllerScore,
    render_scorecard,
    run_scorecard,
)
from repro.analysis.seedsweep import SeedOutcome, SweepSummary
from repro.analysis.series import TimeSeries
from repro.analysis.timeline import CensusPoint, census_timeline

__all__ = [
    "CLIMATES",
    "ControllerScore",
    "render_scorecard",
    "run_scorecard",
    "TimeSeries",
    "detect_removal_outliers",
    "remove_removal_outliers",
    "FailureCensus",
    "CommonCauseCluster",
    "find_common_cause_clusters",
    "INTEL_FAILURE_RATE_PERCENT",
    "MemoryErrorEstimate",
    "estimate_memory_error_ratio",
    "CoolingPlant",
    "PueBreakdown",
    "PAPER_CLUSTER_PLANT",
    "SiteAssessment",
    "SiteEconomics",
    "assess_site",
    "compare_sites",
    "economics_for",
    "wilson_interval",
    "rates_are_consistent",
    "mtbf_hours",
    "Lifetime",
    "kaplan_meier",
    "lifetimes_from_results",
    "ObservationCoverage",
    "observation_coverage",
    "InterpolatedReading",
    "interpolate_readings",
    "RunComparison",
    "compare_runs",
    "sweep_case_rises",
    "minimum_safe_rise_c",
    "CensusPoint",
    "census_timeline",
    "DegreeDays",
    "degree_days",
    "profile_degree_days",
    "SeedOutcome",
    "SweepSummary",
    "sweep_seeds",
]


def __getattr__(name: str):
    # ``sweep_seeds`` execution lives in the runner layer; re-export it
    # lazily so importing repro.analysis never pulls in repro.core.
    if name == "sweep_seeds":
        from repro.runner.pool import sweep_seeds

        return sweep_seeds
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
