"""Terminal rendering of the paper's figures.

The repository is plotting-library-free, so the examples and the CLI
render Figs. 3 and 4 as Unicode line charts: a fixed character grid, one
glyph per series, an annotated y-axis, and event markers (the R/I/B/F
letters) along the time axis -- enough to *see* the tent cool after each
intervention without leaving the terminal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.series import TimeSeries

#: Eighths-block glyphs for sparklines, low to high.
_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line overview of a sequence, resampled to ``width`` glyphs."""
    vals = np.asarray(list(values), dtype=float)
    if vals.size == 0:
        return ""
    if width <= 0:
        raise ValueError("width must be positive")
    # Bucket means, then map to the eight block heights.
    idx = np.linspace(0, vals.size, width + 1).astype(int)
    buckets = [vals[a:b].mean() if b > a else vals[min(a, vals.size - 1)]
               for a, b in zip(idx, idx[1:])]
    lo, hi = float(min(buckets)), float(max(buckets))
    span = hi - lo
    chars = []
    for v in buckets:
        frac = 0.5 if span == 0 else (v - lo) / span
        chars.append(_SPARK_LEVELS[1 + int(round(frac * (len(_SPARK_LEVELS) - 2)))])
    return "".join(chars)


class ChartCanvas:
    """A character grid with data-space coordinates."""

    def __init__(
        self,
        width: int,
        height: int,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
    ) -> None:
        if width < 10 or height < 4:
            raise ValueError("canvas too small to be legible")
        x_lo, x_hi = x_range
        y_lo, y_hi = y_range
        if x_hi <= x_lo or y_hi <= y_lo:
            raise ValueError("ranges must have positive extent")
        self.width = width
        self.height = height
        self.x_range = (float(x_lo), float(x_hi))
        self.y_range = (float(y_lo), float(y_hi))
        self._grid: List[List[str]] = [[" "] * width for _ in range(height)]

    def _col(self, x: float) -> Optional[int]:
        x_lo, x_hi = self.x_range
        col = int((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
        return col if 0 <= col < self.width else None

    def _row(self, y: float) -> Optional[int]:
        y_lo, y_hi = self.y_range
        row = int((y_hi - y) / (y_hi - y_lo) * (self.height - 1))
        return row if 0 <= row < self.height else None

    def plot_series(self, series: TimeSeries, glyph: str) -> None:
        """Draw a series, one bucket-mean point per column."""
        if series.empty:
            return
        if len(glyph) != 1:
            raise ValueError("glyph must be a single character")
        x_lo, x_hi = self.x_range
        edges = np.linspace(x_lo, x_hi, self.width + 1)
        idx = np.searchsorted(series.times, edges)
        for col in range(self.width):
            a, b = idx[col], idx[col + 1]
            if b <= a:
                continue
            row = self._row(float(series.values[a:b].mean()))
            if row is not None:
                self._grid[row][col] = glyph

    def mark_event(self, x: float, label: str) -> None:
        """Drop a one-character label in the bottom row at ``x``."""
        col = self._col(x)
        if col is not None and label:
            self._grid[self.height - 1][col] = label[0]

    def render(self, y_label: str = "") -> str:
        """The chart with a numeric y-axis gutter."""
        y_lo, y_hi = self.y_range
        lines = []
        for i, row in enumerate(self._grid):
            y_val = y_hi - i * (y_hi - y_lo) / (self.height - 1)
            gutter = f"{y_val:>8.1f} |" if i % 4 == 0 else " " * 8 + " |"
            lines.append(gutter + "".join(row))
        lines.append(" " * 8 + " +" + "-" * self.width)
        if y_label:
            lines.insert(0, " " * 9 + y_label)
        return "\n".join(lines)


def render_fig2_gantt(timeline, clock, width: int = 70) -> str:
    """Fig. 2 as a Gantt strip: one row per tent host, bars from install.

    ``timeline`` is a :class:`repro.analysis.figures.Fig2Timeline`; rows
    removed from the tent (host #15) end their bar at the removal time,
    marked ``x``; replacements are annotated.
    """
    if width < 20:
        raise ValueError("width too small for a legible gantt")
    if not timeline.rows:
        return "(no installs)"
    t0 = timeline.test_start
    t1 = max(
        r.removed_time if r.removed_time is not None else r.install_time
        for r in timeline.rows
    )
    t1 = max(t1, t0 + 1.0)
    span = t1 - t0

    def col(t: float) -> int:
        return int((t - t0) / span * (width - 1))

    lines = [
        f"{'':>9}{clock.format(t0)[:10]}{'':>{max(1, width - 20)}}{clock.format(t1)[:10]}"
    ]
    for row in timeline.rows:
        bar = [" "] * width
        start = col(row.install_time)
        end = col(row.removed_time) if row.removed_time is not None else width - 1
        for i in range(start, max(start + 1, end + 1)):
            bar[i] = "="
        bar[start] = "|"
        if row.removed_time is not None:
            bar[min(end, width - 1)] = "x"
        note = ""
        if row.replacement_for is not None:
            note = f"  (replaces #{row.replacement_for:02d})"
        elif row.removed_time is not None:
            note = "  (taken indoors)"
        lines.append(f"host #{row.host_id:02d} {''.join(bar)}{note}")
    return "\n".join(lines)


def dual_series_chart(
    first: TimeSeries,
    second: TimeSeries,
    first_glyph: str = "o",
    second_glyph: str = ".",
    events: Optional[Dict[str, float]] = None,
    width: int = 90,
    height: int = 18,
    y_label: str = "",
) -> str:
    """Two series on one canvas -- the Fig. 3/Fig. 4 layout.

    ``events`` maps single-letter labels (the paper's R/I/B/F) to times,
    drawn along the bottom row.
    """
    if first.empty and second.empty:
        raise ValueError("nothing to plot")
    xs = [s for s in (first, second) if not s.empty]
    x_lo = min(float(s.times[0]) for s in xs)
    x_hi = max(float(s.times[-1]) for s in xs)
    y_lo = min(s.min() for s in xs)
    y_hi = max(s.max() for s in xs)
    pad = 0.05 * (y_hi - y_lo) or 1.0
    canvas = ChartCanvas(width, height, (x_lo, x_hi), (y_lo - pad, y_hi + pad))
    canvas.plot_series(first, first_glyph)
    canvas.plot_series(second, second_glyph)
    for label, when in (events or {}).items():
        canvas.mark_event(when, label)
    return canvas.render(y_label=y_label)
