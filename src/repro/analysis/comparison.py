"""Comparing two experiment runs.

Scenario studies (the A5 sealed-tent counterfactual, seed sweeps, harsher
winters) always end in the same question: *what changed?*
:func:`compare_runs` lines two finished runs up on their overlapping
window and reports the deltas that matter to the paper -- tent climate,
failure census, wrong-hash census -- as one typed object with a readable
table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a core <-> analysis import cycle
    from repro.core.results import ExperimentResults


@dataclass(frozen=True)
class SeriesDelta:
    """Mean/extreme difference between one quantity in two runs."""

    quantity: str
    mean_a: float
    mean_b: float
    max_a: float
    max_b: float

    @property
    def mean_delta(self) -> float:
        """``mean_b - mean_a``."""
        return self.mean_b - self.mean_a


@dataclass(frozen=True)
class RunComparison:
    """The aligned differences between two finished runs."""

    label_a: str
    label_b: str
    window: Tuple[float, float]
    tent_temperature: Optional[SeriesDelta]
    tent_humidity: Optional[SeriesDelta]
    failure_events: Tuple[int, int]
    failed_hosts: Tuple[int, int]
    wrong_hashes: Tuple[int, int]
    total_runs: Tuple[int, int]

    def describe(self) -> str:
        """Side-by-side table."""
        a, b = self.label_a, self.label_b
        lines = [f"{'quantity':<26}{a:>14}{b:>14}"]
        if self.tent_temperature is not None:
            t = self.tent_temperature
            lines.append(f"{'tent mean temp (degC)':<26}{t.mean_a:>14.1f}{t.mean_b:>14.1f}")
            lines.append(f"{'tent max temp (degC)':<26}{t.max_a:>14.1f}{t.max_b:>14.1f}")
        if self.tent_humidity is not None:
            h = self.tent_humidity
            lines.append(f"{'tent mean RH (%)':<26}{h.mean_a:>14.1f}{h.mean_b:>14.1f}")
        lines.append(
            f"{'failure events':<26}{self.failure_events[0]:>14}{self.failure_events[1]:>14}"
        )
        lines.append(
            f"{'hosts failed':<26}{self.failed_hosts[0]:>14}{self.failed_hosts[1]:>14}"
        )
        lines.append(
            f"{'wrong hashes':<26}{self.wrong_hashes[0]:>14}{self.wrong_hashes[1]:>14}"
        )
        lines.append(
            f"{'workload runs':<26}{self.total_runs[0]:>14}{self.total_runs[1]:>14}"
        )
        return "\n".join(lines)


def _series_delta(quantity, series_a, series_b, window) -> Optional[SeriesDelta]:
    start, end = window
    a = series_a.window(start, end)
    b = series_b.window(start, end)
    if a.empty or b.empty:
        return None
    return SeriesDelta(
        quantity=quantity,
        mean_a=a.mean(),
        mean_b=b.mean(),
        max_a=a.max(),
        max_b=b.max(),
    )


def compare_runs(
    results_a: "ExperimentResults",
    results_b: "ExperimentResults",
    label_a: str = "run A",
    label_b: str = "run B",
) -> RunComparison:
    """Align two runs on their shared window and diff the key censuses.

    The runs should share a clock epoch (all standard configurations do);
    the comparison window is the overlap of the two campaigns.
    """
    if results_a.clock != results_b.clock:
        raise ValueError("runs use different clock epochs; cannot align")
    window = (0.0, min(results_a.end_time, results_b.end_time))
    if window[1] <= window[0]:
        raise ValueError("runs do not overlap in time")

    census_a = results_a.overall_census()
    census_b = results_b.overall_census()
    return RunComparison(
        label_a=label_a,
        label_b=label_b,
        window=window,
        tent_temperature=_series_delta(
            "tent temperature",
            results_a.inside_temperature_raw(),
            results_b.inside_temperature_raw(),
            window,
        ),
        tent_humidity=_series_delta(
            "tent humidity",
            results_a.inside_humidity_raw(),
            results_b.inside_humidity_raw(),
            window,
        ),
        failure_events=(len(census_a.failure_events), len(census_b.failure_events)),
        failed_hosts=(census_a.hosts_failed, census_b.hosts_failed),
        wrong_hashes=(
            results_a.ledger.total_wrong_hashes,
            results_b.ledger.total_wrong_hashes,
        ),
        total_runs=(results_a.ledger.total_runs, results_b.ledger.total_runs),
    )
