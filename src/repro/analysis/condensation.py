"""The Section 5 condensation study as a reusable analysis.

"A central question concerns whether water can condense in the hardware,
potentially short circuiting the electrical components."  The paper's
answer is qualitative; this module makes it a sweep: for a set of
case-heating levels, evaluate the dewpoint margin across an ambient
series and report how often each case would condense.

Used by the A3 benchmark, the condensation example, and anyone sizing a
minimum idle load for free-air gear.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.analysis.series import TimeSeries
from repro.climate.psychro import condensation_margin


@dataclass(frozen=True)
class CondensationPoint:
    """Condensation exposure for one case-heating level."""

    case_rise_c: float
    samples: int
    condensing_fraction: float
    min_margin_c: float

    @property
    def safe(self) -> bool:
        """No sampled instant put the surface at/below the dewpoint."""
        return self.condensing_fraction == 0.0


def sweep_case_rises(
    ambient_temp: TimeSeries,
    ambient_rh: TimeSeries,
    case_rises_c: Sequence[float],
) -> List[CondensationPoint]:
    """Dewpoint-margin sweep over co-sampled ambient conditions.

    ``ambient_temp`` and ``ambient_rh`` must share timestamps (the Lascar
    logs both on one clock).
    """
    if len(ambient_temp) != len(ambient_rh) or not np.array_equal(
        ambient_temp.times, ambient_rh.times
    ):
        raise ValueError("temperature and RH series must share timestamps")
    if ambient_temp.empty:
        raise ValueError("cannot sweep an empty series")
    points: List[CondensationPoint] = []
    for rise in case_rises_c:
        if rise < 0:
            raise ValueError("case rise cannot be negative")
        margin = condensation_margin(
            ambient_temp.values + rise, ambient_temp.values, ambient_rh.values
        )
        margin = np.asarray(margin)
        points.append(
            CondensationPoint(
                case_rise_c=float(rise),
                samples=len(margin),
                condensing_fraction=float((margin <= 0.0).mean()),
                min_margin_c=float(margin.min()),
            )
        )
    return points


def minimum_safe_rise_c(
    ambient_temp: TimeSeries,
    ambient_rh: TimeSeries,
    resolution_c: float = 0.25,
    ceiling_c: float = 15.0,
) -> float:
    """Smallest case rise that never condenses over the series.

    The design number for free-air hardware: keep at least this much
    self-heating (idle load) and the dewpoint never catches the case.
    Raises if even ``ceiling_c`` is not enough (pathological input).
    """
    if resolution_c <= 0:
        raise ValueError("resolution must be positive")
    rises = np.arange(0.0, ceiling_c + resolution_c, resolution_c)
    for point in sweep_case_rises(ambient_temp, ambient_rh, rises):
        if point.safe:
            return point.case_rise_c
    raise ValueError(f"no safe case rise below {ceiling_c} degC")


def describe_sweep(points: Sequence[CondensationPoint]) -> str:
    """Plain-text sweep table."""
    lines = [f"{'case rise':<12}{'condensing':>12}{'min margin':>12}"]
    for point in points:
        lines.append(
            f"{point.case_rise_c:>7.1f} degC"
            f"{100 * point.condensing_fraction:>11.2f}%"
            f"{point.min_margin_c:>10.1f} C"
        )
    return "\n".join(lines)
