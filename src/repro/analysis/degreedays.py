"""Degree-day arithmetic: the facilities view of a climate.

HVAC engineers size plants in degree-days: the integral of how far the
outside air sits below (heating) or above (cooling) a base temperature.
For the paper's argument, the complementary quantity matters --
*cooling* degree-days near zero mean chillers are idle and outside air
does the work.  These helpers turn any temperature series or climate
profile into the standard numbers a facilities team would ask for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.series import TimeSeries
from repro.sim.clock import DAY, HOUR, SimClock


@dataclass(frozen=True)
class DegreeDays:
    """Heating and cooling degree-day totals over a span."""

    base_c: float
    span_days: float
    heating: float
    cooling: float

    @property
    def cooling_fraction(self) -> float:
        """Cooling share of total thermal demand (0 = pure heating climate)."""
        total = self.heating + self.cooling
        if total == 0:
            return 0.0
        return self.cooling / total

    def describe(self) -> str:
        """One-line facilities summary."""
        return (
            f"base {self.base_c:.0f} degC over {self.span_days:.0f} days: "
            f"{self.heating:.0f} heating degree-days, "
            f"{self.cooling:.0f} cooling degree-days"
        )


def degree_days(series: TimeSeries, base_c: float = 18.0) -> DegreeDays:
    """Integrate a temperature series into heating/cooling degree-days.

    Uses trapezoidal integration over the actual (possibly irregular)
    sample times, so instrument series can be fed in directly.
    """
    if series.empty:
        raise ValueError("cannot integrate an empty series")
    if len(series) < 2:
        raise ValueError("need at least two samples to integrate")
    times = series.times
    below = np.maximum(0.0, base_c - series.values)
    above = np.maximum(0.0, series.values - base_c)
    trapezoid = getattr(np, "trapezoid", None) or np.trapz  # numpy 2 rename
    heating = float(trapezoid(below, times)) / DAY
    cooling = float(trapezoid(above, times)) / DAY
    span = float(times[-1] - times[0]) / DAY
    return DegreeDays(base_c=base_c, span_days=span, heating=heating, cooling=cooling)


def profile_degree_days(
    profile, base_c: float = 18.0, seed: int = 0
) -> DegreeDays:
    """Degree-days of a full climate profile's synthetic year."""
    from repro.climate.generator import WeatherGenerator
    from repro.sim.rng import RngStreams

    clock = SimClock(profile.start)
    weather = WeatherGenerator(profile, RngStreams(seed), clock)
    times = np.arange(weather.start_time, weather.end_time, HOUR)
    temps = np.asarray(weather.temperature(times))
    return degree_days(TimeSeries(times, temps), base_c=base_c)
