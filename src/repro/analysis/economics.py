"""Cooling economics: turning free-cooling fractions into dollars.

The paper's pitch to operators is ultimately financial -- "energy
savings from 40 % to 67 %, according to HP and Intel" only matter
through the utility bill.  This module converts a
:class:`~repro.analysis.freecooling.SiteAssessment` into annual energy
and cost figures:

- the *baseline* facility runs the chiller plant year-round and no
  economizer fans (the same chillers-alone convention as
  :attr:`SiteAssessment.cooling_energy_savings`, documented there);
- the *economizer* facility draws the blended load: fans always on,
  chillers only during the hours outside air cannot carry the site;
- both are priced at a flat electricity tariff, and PUE is reported for
  each so the atlas can rank sites on the operator's own metric.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.freecooling import SiteAssessment
from repro.analysis.pue import PAPER_CLUSTER_PLANT, CoolingPlant
from repro.climate.synthesis import DEFAULT_PRICE_USD_PER_KWH


@dataclass(frozen=True)
class SiteEconomics:
    """Annual cooling energy and cost for one assessed site.

    Energies are cooling-plant only (IT load is identical either way, so
    it cancels out of the savings); PUE figures include it, since PUE is
    a whole-facility metric.
    """

    site: str
    electricity_price_usd_per_kwh: float
    baseline_kwh_per_year: float
    economizer_kwh_per_year: float
    pue_baseline: float
    pue_economizer: float

    def __post_init__(self) -> None:
        if self.electricity_price_usd_per_kwh <= 0:
            raise ValueError("electricity price must be positive")
        if self.baseline_kwh_per_year < 0 or self.economizer_kwh_per_year < 0:
            raise ValueError("annual energies must be >= 0")

    @property
    def savings_kwh_per_year(self) -> float:
        """Cooling energy displaced per year; negative when the retrofit
        only added fan draw (a site with no free hours)."""
        return self.baseline_kwh_per_year - self.economizer_kwh_per_year

    @property
    def savings_usd_per_year(self) -> float:
        """The number the operator signs off on."""
        return self.savings_kwh_per_year * self.electricity_price_usd_per_kwh

    @property
    def savings_fraction(self) -> float:
        """Fractional cooling-energy savings; identical to
        :attr:`SiteAssessment.cooling_energy_savings` by construction."""
        if self.baseline_kwh_per_year == 0:
            return 0.0
        return self.savings_kwh_per_year / self.baseline_kwh_per_year


def economics_for(
    assessment: SiteAssessment,
    plant: CoolingPlant = PAPER_CLUSTER_PLANT,
    electricity_price_usd_per_kwh: float = DEFAULT_PRICE_USD_PER_KWH,
) -> SiteEconomics:
    """Price an assessment at a flat tariff.

    ``plant`` supplies the IT load that anchors the PUE figures; its
    chiller draw must be the one the assessment was scored against,
    otherwise the energy and PUE columns would describe two different
    facilities.
    """
    if abs(plant.cooling_total_kw - assessment.chiller_cooling_kw) > 1e-9:
        raise ValueError(
            f"plant {plant.name!r} draws {plant.cooling_total_kw:.3f} kW but "
            f"the assessment was scored against "
            f"{assessment.chiller_cooling_kw:.3f} kW of chillers; price the "
            "assessment with the plant it was assessed under"
        )
    hours = assessment.hours_total
    baseline_kwh = assessment.chiller_cooling_kw * hours
    economizer_kwh = assessment.blended_cooling_kw * hours
    it = plant.it_load_kw
    return SiteEconomics(
        site=assessment.site,
        electricity_price_usd_per_kwh=electricity_price_usd_per_kwh,
        baseline_kwh_per_year=baseline_kwh,
        economizer_kwh_per_year=economizer_kwh,
        pue_baseline=(it + assessment.chiller_cooling_kw) / it,
        pue_economizer=(it + assessment.blended_cooling_kw) / it,
    )
