"""Exporting a finished run to flat files.

The original study's data lived as flat files rsynced off the hosts; a
downstream user of this reproduction usually wants the same: CSV series
for the instruments, a TSV fault log, and a JSON metadata header.  All
writers are plain-text, dependency-free, and round-trippable (the readers
live here too and the tests exercise both directions).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.analysis.series import TimeSeries
from repro.hardware.faults import FaultEvent, FaultKind, FaultLog

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Time series <-> CSV
# ----------------------------------------------------------------------
def series_to_csv(series: TimeSeries, value_name: str = "value") -> str:
    """Render a series as ``time_s,<value_name>`` CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(["time_s", value_name])
    for time, value in series:
        writer.writerow([f"{time:.1f}", f"{value:.4f}"])
    return buffer.getvalue()


def series_from_csv(text: str) -> Tuple[TimeSeries, str]:
    """Parse CSV text back into ``(series, value_name)``."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if not header or len(header) != 2 or header[0] != "time_s":
        raise ValueError("expected a 'time_s,<name>' header")
    times: List[float] = []
    values: List[float] = []
    for row in reader:
        if not row:
            continue
        if len(row) != 2:
            raise ValueError(f"malformed CSV row: {row!r}")
        times.append(float(row[0]))
        values.append(float(row[1]))
    return TimeSeries(np.array(times), np.array(values)), header[1]


def write_series_csv(series: TimeSeries, path: PathLike, value_name: str = "value") -> Path:
    """Write a series to ``path``; returns the path."""
    path = Path(path)
    path.write_text(series_to_csv(series, value_name), encoding="ascii")
    return path


def read_series_csv(path: PathLike) -> Tuple[TimeSeries, str]:
    """Read a series written by :func:`write_series_csv`."""
    return series_from_csv(Path(path).read_text(encoding="ascii"))


# ----------------------------------------------------------------------
# Fault log <-> TSV
# ----------------------------------------------------------------------
def fault_log_to_tsv(log: FaultLog) -> str:
    """Render the fault census as tab-separated text."""
    lines = ["time_s\tkind\thost_id\tdetail"]
    for event in log:
        host = "" if event.host_id is None else str(event.host_id)
        lines.append(f"{event.time:.1f}\t{event.kind.name}\t{host}\t{event.detail}")
    return "\n".join(lines) + "\n"


def fault_log_from_tsv(text: str) -> FaultLog:
    """Parse TSV text back into a :class:`FaultLog`."""
    lines = text.splitlines()
    if not lines or lines[0] != "time_s\tkind\thost_id\tdetail":
        raise ValueError("missing fault-log header")
    log = FaultLog()
    for line in lines[1:]:
        if not line:
            continue
        fields = line.split("\t")
        if len(fields) != 4:
            raise ValueError(f"malformed fault row: {line!r}")
        time_s, kind_name, host_s, detail = fields
        try:
            kind = FaultKind[kind_name]
        except KeyError:
            raise ValueError(f"unknown fault kind {kind_name!r}") from None
        log.record(
            FaultEvent(
                time=float(time_s),
                kind=kind,
                host_id=int(host_s) if host_s else None,
                detail=detail,
            )
        )
    return log


# ----------------------------------------------------------------------
# Whole-run dump
# ----------------------------------------------------------------------
def export_run(results, directory: PathLike) -> Dict[str, Path]:
    """Dump a finished run into ``directory``.

    Writes the four instrument series, the fault log, and a ``meta.json``
    header; returns a name -> path map.  The directory is created if
    missing; existing files are overwritten (exports are derived data).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    series_files = {
        "outside_temperature": (results.outside_temperature(), "temp_c"),
        "outside_humidity": (results.outside_humidity(), "rh_percent"),
        "inside_temperature": (results.inside_temperature_raw(), "temp_c"),
        "inside_humidity": (results.inside_humidity_raw(), "rh_percent"),
    }
    for name, (series, value_name) in series_files.items():
        written[name] = write_series_csv(series, directory / f"{name}.csv", value_name)

    faults_path = directory / "faults.tsv"
    faults_path.write_text(fault_log_to_tsv(results.fault_log), encoding="utf-8")
    written["faults"] = faults_path

    meta = {
        "paper": "Running Servers around Zero Degrees (GreenNetworking 2010)",
        "seed": results.config.seed,
        "campaign_start": results.clock.format(0.0),
        "campaign_end": results.clock.format(results.end_time),
        "total_runs": results.ledger.total_runs,
        "wrong_hashes": results.ledger.total_wrong_hashes,
        "fault_events": len(results.fault_log),
        "snapshot_failure_rate_percent": (
            None
            if results.snapshot is None
            else round(results.snapshot.failure_rate_percent, 2)
        ),
    }
    meta_path = directory / "meta.json"
    meta_path.write_text(json.dumps(meta, indent=2) + "\n", encoding="ascii")
    written["meta"] = meta_path
    return written
