"""Failure-rate census and common-cause analysis.

Two of the paper's research questions live here:

- *the equipment failure rate*: "Of the eighteen hosts installed initially,
  one has encountered two transient system failures ... A failure rate of
  5.6 % may seem harsh initially, but Intel has reported a comparable rate
  of 4.46 % during their experiment";
- *which components fail first*: "If the extreme temperature and humidity
  shifts indeed cause certain components to regularly fail, we should be
  able to detect this as a common-cause failure on multiple hosts nearly
  simultaneously."  The clustering test below is that detector.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hardware.faults import FaultEvent, FaultKind
from repro.sim.clock import HOUR

#: Intel's air-economizer proof of concept reported this failure rate [1].
INTEL_FAILURE_RATE_PERCENT = 4.46


@dataclass(frozen=True)
class FailureCensus:
    """Host-level failure statistics for one group (tent or basement).

    ``hosts_total`` counts initially installed hosts (the paper divides by
    18, not 19: the replacement is excluded); ``hosts_failed`` counts hosts
    that suffered at least one system failure.
    """

    group: str
    hosts_total: int
    hosts_failed: int
    failure_events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.hosts_total < 0 or self.hosts_failed < 0:
            raise ValueError("counts cannot be negative")
        if self.hosts_failed > self.hosts_total:
            raise ValueError("more failed hosts than hosts")

    @property
    def failure_rate_percent(self) -> float:
        """Failed hosts as a percentage of installed hosts."""
        if self.hosts_total == 0:
            return 0.0
        return 100.0 * self.hosts_failed / self.hosts_total

    def comparable_to_intel(self, tolerance_percent: float = 3.0) -> bool:
        """The paper's framing: is the rate comparable to Intel's 4.46 %?"""
        return abs(self.failure_rate_percent - INTEL_FAILURE_RATE_PERCENT) <= tolerance_percent

    def describe(self) -> str:
        """Paper-style one-liner."""
        return (
            f"{self.group}: {self.hosts_failed}/{self.hosts_total} hosts failed "
            f"({self.failure_rate_percent:.1f} %; Intel reported "
            f"{INTEL_FAILURE_RATE_PERCENT} %)"
        )


def census_from_events(
    group: str,
    host_ids: Sequence[int],
    events: Iterable[FaultEvent],
    kinds: Tuple[FaultKind, ...] = (
        FaultKind.TRANSIENT_SYSTEM,
        FaultKind.DISK,
        FaultKind.WATER_INGRESS,
    ),
) -> FailureCensus:
    """Build a census for ``host_ids`` from a fault-event stream.

    Only system-down fault kinds count as host failures; wrong hashes and
    sensor glitches are tracked separately, as in the paper.
    """
    relevant = tuple(
        e for e in events if e.host_id in set(host_ids) and e.kind in kinds
    )
    failed_hosts = {e.host_id for e in relevant}
    return FailureCensus(
        group=group,
        hosts_total=len(host_ids),
        hosts_failed=len(failed_hosts),
        failure_events=relevant,
    )


@dataclass(frozen=True)
class CommonCauseCluster:
    """A group of same-kind failures on distinct hosts within a window."""

    kind: FaultKind
    events: Tuple[FaultEvent, ...]

    @property
    def host_ids(self) -> Tuple[int, ...]:
        """Distinct hosts in the cluster, sorted."""
        return tuple(sorted({e.host_id for e in self.events if e.host_id is not None}))

    @property
    def span_hours(self) -> float:
        """Time from first to last event in the cluster."""
        times = [e.time for e in self.events]
        return (max(times) - min(times)) / HOUR


#: Fault kinds that indicate a *component* failing, the subject of the
#: paper's common-cause question.  Wrong hashes are excluded: a handful of
#: independent bit flips across weeks is not component X dying fleet-wide.
COMPONENT_FAILURE_KINDS = (
    FaultKind.TRANSIENT_SYSTEM,
    FaultKind.DISK,
    FaultKind.SENSOR_CHIP,
)


def find_common_cause_clusters(
    events: Iterable[FaultEvent],
    window_hours: float = 48.0,
    min_hosts: int = 2,
    kinds: Tuple[FaultKind, ...] = COMPONENT_FAILURE_KINDS,
) -> List[CommonCauseCluster]:
    """Detect same-kind failures striking several hosts nearly simultaneously.

    Events of one kind are swept in time order; a cluster accumulates while
    consecutive events are within ``window_hours`` of the previous one, and
    is reported if it touches at least ``min_hosts`` distinct hosts.

    The paper expected that a true environmental common cause (humidity
    killing component X) would fire this detector; it never did.
    """
    if window_hours <= 0:
        raise ValueError("window must be positive")
    if min_hosts < 2:
        raise ValueError("a common cause needs at least 2 hosts")
    by_kind: Dict[FaultKind, List[FaultEvent]] = {}
    for event in events:
        if event.host_id is None or event.kind not in kinds:
            continue
        by_kind.setdefault(event.kind, []).append(event)

    clusters: List[CommonCauseCluster] = []
    window_s = window_hours * HOUR
    for kind, kind_events in by_kind.items():
        kind_events.sort(key=lambda e: e.time)
        current: List[FaultEvent] = []
        for event in kind_events:
            if current and event.time - current[-1].time > window_s:
                _flush_cluster(kind, current, min_hosts, clusters)
                current = []
            current.append(event)
        _flush_cluster(kind, current, min_hosts, clusters)
    clusters.sort(key=lambda c: c.events[0].time)
    return clusters


def _flush_cluster(
    kind: FaultKind,
    events: List[FaultEvent],
    min_hosts: int,
    out: List[CommonCauseCluster],
) -> None:
    hosts = {e.host_id for e in events}
    if len(hosts) >= min_hosts:
        out.append(CommonCauseCluster(kind=kind, events=tuple(events)))


def failures_by_host(events: Iterable[FaultEvent]) -> Dict[int, int]:
    """Count system-failure events per host (the #15-was-a-lemon view)."""
    counts: Dict[int, int] = {}
    for event in events:
        if event.host_id is None:
            continue
        if event.kind in (
            FaultKind.TRANSIENT_SYSTEM,
            FaultKind.DISK,
            FaultKind.MEMTEST,
            FaultKind.WATER_INGRESS,
        ):
            counts[event.host_id] = counts.get(event.host_id, 0) + 1
    return counts
