"""The data series behind each of the paper's figures.

- Fig. 1 is a schematic of the tent (nothing to compute);
- Fig. 2 is the install timeline of the tent hosts;
- Fig. 3 is temperature inside and outside the tent, with the R/I/B/F
  modification events marked;
- Fig. 4 is relative humidity inside and outside (inside series starting
  at the Lascar logger's late arrival, outliers removed).

Each builder consumes an :class:`~repro.core.results.ExperimentResults`
and returns plain dataclasses of :class:`~repro.analysis.series.TimeSeries`
so benchmarks, tests, and plotting examples all share one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.outliers import remove_removal_outliers, remove_with_companion
from repro.analysis.series import TimeSeries
from repro.core.results import ExperimentResults


#: Fig. 1 is "Schematic for tent shielding the computer hardware from
#: rain and snow" -- a drawing, not data.  The reproduction renders its
#: own schematic of the modelled tent so every figure number resolves.
_FIG1 = r"""
        Fig. 1 -- tent schematic (as modelled)

                   ~ solar gain (cut by foil cover R)
                 \ | /
              .-~~~~~~~~-.      outer fabric (UA_base; door D half-open)
            /   .------.   \
           /   / inner  \   \   inner tent fabric (removed at I)
          |   |  [HOST]   |  |
  wind ->  |  |  [HOST]   |  |   9 hosts, ~0.9 kW IT load
  (raises |  |  [HOST]+fan|  |   tabletop fan installed at F
   UA)     \   \ ______ /   /
            \ .-~------~-. /
         =====            =====   bottom tarpaulin (partially removed at B)
         ^ elevated terrace floor: cool air circulates up through the gap
"""


def fig1_schematic() -> str:
    """The Fig. 1 tent drawing, annotated with the model's parameters."""
    return _FIG1.strip("\n")


@dataclass(frozen=True)
class Fig2Row:
    """One bar of the install timeline."""

    host_id: int
    vendor_id: str
    install_time: float
    removed_time: Optional[float]  # e.g. #15 leaving the tent
    replacement_for: Optional[int]  # e.g. #19 replacing #15


@dataclass(frozen=True)
class Fig2Timeline:
    """Fig. 2: dates of when (tent) servers were installed."""

    rows: Tuple[Fig2Row, ...]
    prototype_start: float
    test_start: float

    def host_ids(self) -> List[int]:
        """Hosts in install order (the figure's y-axis labels)."""
        return [r.host_id for r in self.rows]


def fig2_timeline(results: ExperimentResults) -> Fig2Timeline:
    """Reconstruct the install timeline from the run's actual events."""
    clock = results.clock
    replacements = {new: old for (_t, old, new) in results.policy.replacements}
    removed_at: Dict[int, float] = {
        old: t for (t, old, _new) in results.policy.replacements
    }
    rows: List[Fig2Row] = []
    tent_ids = set(results.tent_host_ids()) | {
        new for (_t, _old, new) in results.policy.replacements
    }
    for host_id in sorted(tent_ids):
        host = results.fleet.host(host_id)
        if host.installed_at is None:
            continue
        rows.append(
            Fig2Row(
                host_id=host_id,
                vendor_id=host.spec.vendor_id,
                install_time=host.installed_at,
                removed_time=removed_at.get(host_id),
                replacement_for=replacements.get(host_id),
            )
        )
    rows.sort(key=lambda r: (r.install_time, r.host_id))
    return Fig2Timeline(
        rows=tuple(rows),
        prototype_start=clock.to_seconds(results.config.prototype_start),
        test_start=clock.to_seconds(results.config.test_start),
    )


@dataclass(frozen=True)
class Fig3Data:
    """Fig. 3: temperatures outside and inside the tent, plus event marks."""

    outside: TimeSeries
    inside: TimeSeries  # outliers removed, starts at Lascar arrival
    events: Dict[str, float]  # letter (R/I/B/F/D) -> time

    def inside_excess(self) -> TimeSeries:
        """Inside minus outside on the inside series' timestamps."""
        return self.inside.aligned_difference(self.outside)


def fig3_temperatures(results: ExperimentResults) -> Fig3Data:
    """Build the Fig. 3 series from a finished run."""
    outside = results.outside_temperature()
    inside_raw = results.inside_temperature_raw()
    inside = (
        remove_removal_outliers(inside_raw) if not inside_raw.empty else inside_raw
    )
    return Fig3Data(
        outside=outside,
        inside=inside,
        events=results.tent.modification_times(),
    )


@dataclass(frozen=True)
class Fig4Data:
    """Fig. 4: relative humidities inside and outside the tent."""

    outside: TimeSeries
    inside: TimeSeries  # outlier-cleaned, co-dropped with temperature
    lascar_arrival: float

    def stability_ratio(self, detrend_window_s: float = 86_400.0) -> float:
        """Outside-over-inside std of *fast* RH fluctuation (>1: tent smooths).

        The paper's Fig. 4 claim -- "the tent has been able to retain more
        stable relative humidities than outside air" -- is about visible
        short-term twitchiness, so both series are detrended with a rolling
        mean (default 24 h) before comparing standard deviations, and the
        comparison uses the overlapping span only (the outside record
        starts weeks before the logger arrived).
        """
        if self.inside.empty or self.outside.empty:
            raise ValueError("stability ratio needs both series")
        start = self.inside.times[0]
        end = self.inside.times[-1] + 1e-9
        outside_overlap = self.outside.window(start, end)
        inside_fast = self.inside.values - self.inside.rolling_mean(detrend_window_s).values
        outside_fast = (
            outside_overlap.values - outside_overlap.rolling_mean(detrend_window_s).values
        )
        return float(outside_fast.std() / inside_fast.std())


def fig4_humidities(results: ExperimentResults) -> Fig4Data:
    """Build the Fig. 4 series from a finished run.

    The Lascar logs temperature and RH on shared timestamps; RH samples
    taken during download trips are dropped together with the temperature
    samples that expose them (the paper removed the same outliers).
    """
    outside = results.outside_humidity()
    inside_t = results.inside_temperature_raw()
    inside_rh = results.inside_humidity_raw()
    if not inside_t.empty:
        _, inside_rh = remove_with_companion(inside_t, inside_rh)
    return Fig4Data(
        outside=outside,
        inside=inside_rh,
        lascar_arrival=results.lascar.arrival_time,
    )


@dataclass(frozen=True)
class DailyEnvelope:
    """Daily min/mean/max triple used by plotting examples."""

    days: np.ndarray
    minimum: np.ndarray
    mean: np.ndarray
    maximum: np.ndarray


def daily_envelope(series: TimeSeries, clock) -> DailyEnvelope:
    """Daily aggregation of a series (compact form of the figure lines)."""
    lo = series.daily_aggregate(clock, np.min)
    mid = series.daily_aggregate(clock, np.mean)
    hi = series.daily_aggregate(clock, np.max)
    return DailyEnvelope(days=lo.times, minimum=lo.values, mean=mid.values, maximum=hi.values)
