"""Free-cooling feasibility: the paper's geographic-extension argument.

Section 1: "Using outside air to cool the data center can yield energy
savings from 40 % to 67 %, according to HP and Intel respectively", and
"If we can bring the server equipment to tolerate North European
conditions, we have shown that Intel's results from New Mexico and HP's
from North East England can be extended to most parts of the globe."

:func:`assess_site` sweeps a year of synthetic weather for one site and
computes how many hours unconditioned outside air can serve as the sole
cooling medium, plus the blended cooling-energy savings against a
conventional chiller plant.  :func:`compare_sites` ranks sites, making
the intro's claim quantitative: the colder the climate, the closer the
savings get to 100 % -- and the paper's own experiment shows the
equipment survives exactly those climates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.analysis.pue import PAPER_CLUSTER_PLANT, CoolingPlant
from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import ClimateProfile
from repro.sim.clock import HOUR, SimClock
from repro.sim.rng import RngStreams

#: ASHRAE-style recommended intake ceiling of the paper's era.
DEFAULT_INTAKE_LIMIT_C = 27.0
#: Air picks up a few degrees between the louver and the server inlet.
DEFAULT_APPROACH_C = 2.0
#: Fan power needed to move the free-cooling air, as in the PUE module.
DEFAULT_FAN_KW = 3.0


@dataclass(frozen=True)
class SiteAssessment:
    """Free-cooling verdict for one site and one intake policy."""

    site: str
    intake_limit_c: float
    approach_c: float
    hours_total: int
    hours_free: int
    outside_min_c: float
    outside_max_c: float
    chiller_cooling_kw: float
    fan_kw: float

    def __post_init__(self) -> None:
        if self.hours_total <= 0:
            raise ValueError(
                "an assessment needs at least one scored hour; degenerate "
                "spans are rejected upstream by assess_site"
            )
        if self.hours_free > self.hours_total:
            raise ValueError("free hours cannot exceed total hours")

    @property
    def free_fraction(self) -> float:
        """Fraction of the year unconditioned outside air suffices."""
        return self.hours_free / self.hours_total

    @property
    def blended_cooling_kw(self) -> float:
        """Mean cooling-plant draw with an economizer: fans during free
        hours, the full chiller plant otherwise (fans keep spinning)."""
        chiller_fraction = 1.0 - self.free_fraction
        return self.fan_kw + chiller_fraction * self.chiller_cooling_kw

    @property
    def cooling_energy_savings(self) -> float:
        """Fraction of cooling energy saved versus chillers year-round.

        Baseline convention: the denominator is the chiller plant draw
        *alone* (``chiller_cooling_kw``), because the conventional
        facility being displaced runs chillers and no economizer fans.
        The economizer's fans appear only in the numerator's blended
        draw, so a site with no free hours shows *negative* savings --
        the retrofit added fan draw without displacing any chiller
        energy -- rather than a flattering exact zero.  (An earlier
        version included ``fan_kw`` in the baseline, understating every
        site's savings; see the regression pins in
        ``tests/analysis/test_freecooling.py``.)
        """
        if self.chiller_cooling_kw == 0:
            return 0.0
        return 1.0 - self.blended_cooling_kw / self.chiller_cooling_kw

    @property
    def hours_above_limit(self) -> int:
        """Hours the approach-adjusted intake exceeds the ceiling.

        The atlas uses this as its failure-risk proxy: every such hour
        the economizer must either fall back to chillers or push air
        past the rated intake temperature.
        """
        return self.hours_total - self.hours_free

    def describe(self) -> str:
        """One-line verdict for reports."""
        return (
            f"{self.site}: free cooling {100 * self.free_fraction:.0f} % of hours "
            f"(outside {self.outside_min_c:.0f}..{self.outside_max_c:.0f} degC), "
            f"cooling energy saved {100 * self.cooling_energy_savings:.0f} %"
        )


def assess_site(
    profile: ClimateProfile,
    intake_limit_c: float = DEFAULT_INTAKE_LIMIT_C,
    approach_c: float = DEFAULT_APPROACH_C,
    plant: CoolingPlant = PAPER_CLUSTER_PLANT,
    fan_kw: float = DEFAULT_FAN_KW,
    seed: int = 0,
) -> SiteAssessment:
    """Sweep the profile's full span hourly and score free-cooling hours.

    An hour counts as *free* when outside air plus the approach delta
    stays at or below the intake ceiling -- the paper's whole point being
    that no further conditioning (temperature or humidity) is needed.
    """
    if intake_limit_c <= -40.0:
        raise ValueError("intake limit implausibly low")
    if approach_c < 0:
        raise ValueError("approach delta cannot be negative")
    if profile.end <= profile.start:
        raise ValueError(
            f"profile {profile.name!r} spans no time "
            f"({profile.start:%Y-%m-%d} .. {profile.end:%Y-%m-%d}); "
            "an assessment needs at least one scored hour"
        )
    clock = SimClock(profile.start)
    weather = WeatherGenerator(profile, RngStreams(seed), clock)
    # Cover the full span *inclusively*: ``np.arange(start, end, HOUR)``
    # silently dropped the final grid hour (the half-open endpoint), so a
    # 365-day profile scored 8760 of its 8761 grid points.
    hours = int((weather.end_time - weather.start_time) / HOUR) + 1
    times = weather.start_time + HOUR * np.arange(hours)
    temps = np.asarray(weather.temperature(times))
    free = temps + approach_c <= intake_limit_c
    return SiteAssessment(
        site=profile.name,
        intake_limit_c=intake_limit_c,
        approach_c=approach_c,
        hours_total=len(times),
        hours_free=int(free.sum()),
        outside_min_c=float(temps.min()),
        outside_max_c=float(temps.max()),
        chiller_cooling_kw=plant.cooling_total_kw,
        fan_kw=fan_kw,
    )


def compare_sites(
    profiles: Sequence[ClimateProfile],
    intake_limit_c: float = DEFAULT_INTAKE_LIMIT_C,
    approach_c: float = DEFAULT_APPROACH_C,
    plant: CoolingPlant = PAPER_CLUSTER_PLANT,
    fan_kw: float = DEFAULT_FAN_KW,
    seed: int = 0,
) -> "list[SiteAssessment]":
    """Assess every site, best first, with a deterministic total order.

    The ranking key is ``(-free_fraction, -cooling_energy_savings,
    name)``: free fraction decides, savings breaks plant-parameter ties,
    and the site name makes exact ties (two 100 %-free polar sites)
    independent of input ordering -- the atlas's ranked table must be
    byte-identical however its sweep happened to complete.
    """
    assessments = [
        assess_site(
            profile,
            intake_limit_c=intake_limit_c,
            approach_c=approach_c,
            plant=plant,
            fan_kw=fan_kw,
            seed=seed,
        )
        for profile in profiles
    ]
    assessments.sort(
        key=lambda a: (-a.free_fraction, -a.cooling_energy_savings, a.site)
    )
    return assessments


def intake_limit_sensitivity(
    profile: ClimateProfile,
    limits_c: Sequence[float],
    approach_c: float = DEFAULT_APPROACH_C,
    seed: int = 0,
) -> "list[tuple[float, float]]":
    """``(limit, free_fraction)`` per candidate ceiling -- the knob a
    Greenfield designer actually turns (hotter-rated gear buys hours)."""
    out = []
    for limit in limits_c:
        assessment = assess_site(
            profile, intake_limit_c=limit, approach_c=approach_c, seed=seed
        )
        out.append((float(limit), assessment.free_fraction))
    return out
