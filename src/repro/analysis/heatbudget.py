"""Empirical heat-budget analysis: recovering the tent's physics from data.

The paper names four factors for the tent's internal temperature --
outside air, sun and wind, equipment power, and flap configuration -- but
never quantifies the envelope.  Given the reproduction's telemetry (the
Lascar's inside series, the station's outside series, the Technoline's
power readings), the effective envelope conductance in each modification
era can be *estimated* the way the authors could have::

    UA_era  =  median( P_it / (T_in - T_out) )       [W/K]

over the era's co-sampled instants with a meaningful gap.  For synthetic
data this is also a strong identifiability check: the estimates must rise
after each conductance-raising intervention and roughly recover the model
parameters that generated the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.outliers import remove_removal_outliers
from repro.analysis.series import TimeSeries

#: Gaps smaller than this are dominated by sensor noise; skip them.
_MIN_GAP_C = 2.0


@dataclass(frozen=True)
class EraEstimate:
    """Envelope estimate for one stretch between interventions."""

    label: str
    start: float
    end: float
    samples: int
    ua_w_per_k: Optional[float]
    mean_gap_c: Optional[float]
    mean_power_w: Optional[float]

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("era must have positive duration")


def _eras(results) -> List[Tuple[str, float, float]]:
    """Era boundaries: Lascar arrival, then each modification, then end."""
    events = sorted(results.tent.modification_times().items(), key=lambda kv: kv[1])
    start = results.lascar.arrival_time
    eras: List[Tuple[str, float, float]] = []
    label = "pre-mods"
    for letter, when in events:
        if when > start:
            eras.append((label, start, when))
            start = when
        label = f"after-{letter}"
    eras.append((label, start, results.end_time))
    return eras


def estimate_ua_by_era(results, min_gap_c: float = _MIN_GAP_C) -> List[EraEstimate]:
    """Per-era envelope conductance estimates from the run's own telemetry.

    Uses the outlier-cleaned inside series, the station's outside series
    interpolated onto it, and the power meter's displayed draw.
    """
    inside = remove_removal_outliers(results.inside_temperature_raw())
    if inside.empty:
        return []
    outside = results.outside_temperature()
    power_times = np.array([r.time for r in results.powermeter.readings])
    power_watts = np.array([r.watts for r in results.powermeter.readings])

    gap = inside.aligned_difference(outside)
    power_at = np.interp(gap.times, power_times, power_watts)

    estimates: List[EraEstimate] = []
    for label, start, end in _eras(results):
        mask = (gap.times >= start) & (gap.times < end)
        gaps = gap.values[mask]
        power = power_at[mask]
        usable = gaps >= min_gap_c
        if usable.sum() < 10:
            estimates.append(
                EraEstimate(label, start, end, int(usable.sum()), None, None, None)
            )
            continue
        ua_samples = power[usable] / gaps[usable]
        estimates.append(
            EraEstimate(
                label=label,
                start=start,
                end=end,
                samples=int(usable.sum()),
                ua_w_per_k=float(np.median(ua_samples)),
                mean_gap_c=float(gaps[usable].mean()),
                mean_power_w=float(power[usable].mean()),
            )
        )
    return estimates


def conductance_increased_after(
    estimates: List[EraEstimate], letter: str
) -> Optional[bool]:
    """Did the era after modification ``letter`` show a higher UA?

    Returns ``None`` when either side lacks a usable estimate.
    """
    target = f"after-{letter}"
    previous: Optional[EraEstimate] = None
    for estimate in estimates:
        if estimate.label == target:
            if (
                previous is None
                or previous.ua_w_per_k is None
                or estimate.ua_w_per_k is None
            ):
                return None
            return estimate.ua_w_per_k > previous.ua_w_per_k
        previous = estimate
    return None


def summarize(estimates: List[EraEstimate], clock) -> str:
    """Readable per-era table."""
    lines = [f"{'era':<12}{'window':<26}{'n':>6}{'UA (W/K)':>10}{'gap':>8}{'power':>9}"]
    for est in estimates:
        window = f"{clock.format(est.start)[:10]} .. {clock.format(est.end)[:10]}"
        ua = "-" if est.ua_w_per_k is None else f"{est.ua_w_per_k:.0f}"
        gap = "-" if est.mean_gap_c is None else f"{est.mean_gap_c:.1f}C"
        power = "-" if est.mean_power_w is None else f"{est.mean_power_w:.0f}W"
        lines.append(f"{est.label:<12}{window:<26}{est.samples:>6}{ua:>10}{gap:>8}{power:>9}")
    return "\n".join(lines)
