"""The Section 4.2.2 memory-error arithmetic.

The paper: "By calculating the size of the source directory to be
compressed, the average block size of the compressed tarball, and the
amount of cycles we have estimated the amount of memory pages read and
written to lie in the ballpark of 3.2 billion.  If the estimate is
correct, and the six faulty archives are caused by a single memory page
fault each, the failure ratio is around one in 570 million."

:func:`estimate_memory_error_ratio` performs that estimate over a
reproduction run: page ops from the tree's per-cycle census times the run
count, divided by the number of faulty archives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.workload.archiver import WorkloadLedger
from repro.workload.kernel_tree import KernelSourceTree

#: The paper's headline ratio: one fault per ~570 million page operations.
PAPER_RATIO_ONE_IN = 570e6
#: The paper's page-op ballpark across its 27,627 runs.
PAPER_TOTAL_PAGE_OPS = 3.2e9
#: The paper's run census at the time of writing.
PAPER_TOTAL_RUNS = 27_627
#: The paper's wrong-hash census: 5 mismatches (2 tent hosts with one each,
#: 1 basement host with three).
PAPER_WRONG_HASHES = 5


@dataclass(frozen=True)
class MemoryErrorEstimate:
    """Result of the page-op failure-ratio estimate."""

    total_runs: int
    total_page_ops: int
    faulty_archives: int

    def __post_init__(self) -> None:
        if self.total_runs < 0 or self.total_page_ops < 0 or self.faulty_archives < 0:
            raise ValueError("censuses cannot be negative")

    @property
    def ratio_one_in(self) -> Optional[float]:
        """Page ops per fault ("one in N"); ``None`` with zero faults."""
        if self.faulty_archives == 0:
            return None
        return self.total_page_ops / self.faulty_archives

    @property
    def fault_probability_per_page_op(self) -> Optional[float]:
        """The inverse view; ``None`` with zero faults or zero ops."""
        if self.faulty_archives == 0 or self.total_page_ops == 0:
            return None
        return self.faulty_archives / self.total_page_ops

    def within_factor_of_paper(self, factor: float = 3.0) -> bool:
        """Whether the ratio lands within ``factor``x of the paper's 570 M."""
        ratio = self.ratio_one_in
        if ratio is None:
            return False
        return PAPER_RATIO_ONE_IN / factor <= ratio <= PAPER_RATIO_ONE_IN * factor

    def describe(self) -> str:
        """Paper-style sentence."""
        ratio = self.ratio_one_in
        if ratio is None:
            return (
                f"{self.total_runs} runs, {self.total_page_ops / 1e9:.1f} B page ops, "
                f"no faulty archives"
            )
        return (
            f"{self.total_runs} runs, {self.total_page_ops / 1e9:.1f} B page ops, "
            f"{self.faulty_archives} faulty archives -> failure ratio around "
            f"one in {ratio / 1e6:.0f} million"
        )


def estimate_memory_error_ratio(
    ledger: WorkloadLedger, tree: Optional[KernelSourceTree] = None
) -> MemoryErrorEstimate:
    """Run the paper's estimate over a reproduction's workload ledger."""
    tree = tree if tree is not None else KernelSourceTree()
    return MemoryErrorEstimate(
        total_runs=ledger.total_runs,
        total_page_ops=tree.estimated_page_ops(ledger.total_runs),
        faulty_archives=ledger.total_wrong_hashes,
    )


def paper_estimate() -> MemoryErrorEstimate:
    """The estimate exactly as the paper states it.

    Note the paper's own wrinkle: it counts five problematic archives in
    the census but divides by "the six faulty archives" in the ratio
    sentence; 3.2 B / 6 is approximately 533 M, rounded in the paper to
    "around one in 570 million".  We keep the six, as the text does.
    """
    return MemoryErrorEstimate(
        total_runs=PAPER_TOTAL_RUNS,
        total_page_ops=int(PAPER_TOTAL_PAGE_OPS),
        faulty_archives=6,
    )
