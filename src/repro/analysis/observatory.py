"""The ``repro observe`` dashboard: fleet medians, drill-down, anomalies.

The paper's Figures 3 and 4 are the tent's vital signs over a winter;
this module renders the same view for a fleet of pods from a
:class:`~repro.telemetry.timeseries.SeriesRecorder`:

- an **overview**: one fleet-median sparkline per recorded signal, with
  min/median/max across the latest frame;
- an **anomaly table**: pods whose latest value sits a robust z-score
  (:func:`repro.analysis.outliers.fleet_zscores`, MAD vs the fleet
  median) away from their siblings -- the batch-mode analogue of the
  paper's host #15 story;
- a **drill-down**: one pod's timeline charted against the fleet median
  (the Fig. 3 dual-series layout via
  :func:`repro.analysis.asciiplot.dual_series_chart`);
- a **phase profile**: where the vectorized tick's wall time goes,
  from the ``fleetscale.*`` spans.

Everything here is pure rendering over recorded data: no simulation,
no randomness, plain strings out.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.analysis.asciiplot import dual_series_chart, sparkline
from repro.analysis.outliers import DEFAULT_Z_THRESHOLD, fleet_zscores
from repro.sim.clock import SimClock
from repro.telemetry.hub import Telemetry
from repro.telemetry.timeseries import SeriesRecorder, final_values, fleet_median

#: (signal, unit, description) rows of the overview, in display order.
DASHBOARD_SIGNALS: Tuple[Tuple[str, str, str], ...] = (
    ("tent_air_c", "degC", "tent air (fleet median)"),
    ("basement_c", "degC", "basement CRAC"),
    ("outside_temp_c", "degC", "outside air"),
    ("outside_rh_pct", "%RH", "outside humidity"),
    ("hosts_running", "hosts", "running per pod (median)"),
    ("hosts_shed", "hosts", "shed per pod (load-shed)"),
    ("failures_transient", "cum", "transient failures per pod"),
    ("failures_storage", "cum", "storage failures per pod"),
    ("sensor_latches", "cum", "sensor latches per pod"),
    ("wrong_hashes", "cum", "wrong hashes per pod"),
    ("energy_kwh", "kWh", "energy per pod"),
    ("workload_cycles", "cycles", "archive cycles per pod"),
)


def pod_anomalies(
    recorder: SeriesRecorder,
    signal: str,
    z_threshold: float = DEFAULT_Z_THRESHOLD,
) -> List[Tuple[int, float, float]]:
    """``(pod, z, latest_value)`` rows for pods past the threshold.

    Scored on each pod's latest committed value with the MAD-robust
    z-score against the fleet median, sorted by |z| descending.  1-row
    signals have no fleet to deviate from and return no rows.
    """
    if recorder.rows(signal) < 2 or recorder.n_samples == 0:
        return []
    latest = final_values(recorder, signal)
    scores = fleet_zscores(latest)
    flagged = np.flatnonzero(np.abs(scores) >= z_threshold)
    rows = [(int(pod), float(scores[pod]), float(latest[pod])) for pod in flagged]
    rows.sort(key=lambda row: (-abs(row[1]), row[0]))
    return rows


def render_observatory(
    recorder: SeriesRecorder,
    clock: Optional[SimClock] = None,
    width: int = 60,
    z_threshold: float = DEFAULT_Z_THRESHOLD,
    top: int = 5,
) -> str:
    """The fleet overview: sparklines, spread, and the anomaly table."""
    lines: List[str] = []
    n = recorder.n_samples
    if n == 0:
        return "fleet observatory: no frames recorded yet"
    times = recorder.times()
    span = ""
    if clock is not None:
        first = clock.to_datetime(float(times[0]))
        last = clock.to_datetime(float(times[-1]))
        span = f"  {first:%Y-%m-%d %H:%M} .. {last:%Y-%m-%d %H:%M}"
    lines.append(
        f"fleet observatory: {n} samples, stride {recorder.stride} "
        f"frame(s)/sample{span}"
    )
    known = [row for row in DASHBOARD_SIGNALS if _known(recorder, row[0])]
    label_width = max((len(desc) for _signal, _unit, desc in known), default=0)
    for signal, unit, desc in DASHBOARD_SIGNALS:
        if not _known(recorder, signal):
            continue
        values = recorder.values(signal)
        median_tl = np.median(values, axis=0)
        latest = values[:, -1]
        spread = (
            f"now {np.median(latest):.1f} "
            f"[{latest.min():.1f}..{latest.max():.1f}] {unit}"
        )
        lines.append(
            f"  {desc:<{label_width}}  {sparkline(median_tl, width)}  {spread}"
        )

    anomalies: List[Tuple[str, int, float, float]] = []
    for signal, _unit, _desc in DASHBOARD_SIGNALS:
        if not _known(recorder, signal):
            continue
        for pod, z, value in pod_anomalies(recorder, signal, z_threshold):
            anomalies.append((signal, pod, z, value))
    anomalies.sort(key=lambda row: (-abs(row[2]), row[0], row[1]))
    lines.append("")
    if anomalies:
        lines.append(
            f"pod anomalies (|z| >= {z_threshold:g} vs fleet median, top {top}):"
        )
        for signal, pod, z, value in anomalies[:top]:
            lines.append(
                f"  pod {pod:>5}  {signal:<20}  z={z:+6.1f}  value {value:.2f}"
            )
        if len(anomalies) > top:
            lines.append(f"  ... and {len(anomalies) - top} more")
    else:
        lines.append(
            f"pod anomalies: none (no pod strays |z| >= {z_threshold:g} "
            "from the fleet median)"
        )
    return "\n".join(lines)


def render_pod_drilldown(
    recorder: SeriesRecorder,
    signal: str,
    pod: int,
    width: int = 72,
    height: int = 14,
) -> str:
    """One pod (``o``) against the fleet median (``.``), Fig. 3 style."""
    pod_tl = recorder.series(signal, row=pod)
    median_tl = fleet_median(recorder, signal)
    header = f"pod {pod} vs fleet median -- {signal} (o = pod, . = median)"
    chart = dual_series_chart(
        pod_tl, median_tl, "o", ".", width=width, height=height, y_label=signal
    )
    return header + "\n" + chart


def _plant_event_types():
    """Display order for chaos-plane incidents (lazy import keeps this
    module's import cost down for the pure-rendering users)."""
    from repro.sim import events as ev

    return (
        ev.PlantFaultInjected,
        ev.PlantFaultRepaired,
        ev.ThermalTrip,
        ev.ThermalTripCleared,
        ev.LoadShed,
        ev.LoadRestored,
        ev.EmergencyFlapOpened,
        ev.EmergencyFlapClosed,
    )


def _describe_incident(event) -> str:
    from repro.sim import events as ev

    if isinstance(event, ev.PlantFaultInjected):
        return (
            f"fault injected: {event.kind} (domain {event.domain}, "
            f"severity {event.severity:.2f}, repair {event.repair_s / 3600.0:.1f} h)"
        )
    if isinstance(event, ev.PlantFaultRepaired):
        return f"fault repaired: {event.kind} (domain {event.domain})"
    if isinstance(event, ev.ThermalTrip):
        return (
            f"THERMAL TRIP pod {event.pod} stage {event.stage} "
            f"(intake {event.intake_c:.1f} degC)"
        )
    if isinstance(event, ev.ThermalTripCleared):
        return f"trip cleared pod {event.pod} (intake {event.intake_c:.1f} degC)"
    if isinstance(event, ev.LoadShed):
        return (
            f"load shed pod {event.pod}: {event.hosts} host(s) "
            f"[{event.reason}, stage {event.stage}]"
        )
    if isinstance(event, ev.LoadRestored):
        return f"load restored pod {event.pod}: {event.hosts} host(s) [{event.reason}]"
    if isinstance(event, ev.EmergencyFlapOpened):
        return f"emergency flap OPEN pod {event.pod}"
    if isinstance(event, ev.EmergencyFlapClosed):
        return f"emergency flap closed pod {event.pod}"
    return type(event).__name__


def _incident_stream(recorder) -> List:
    events: List = []
    for event_type in _plant_event_types():
        events.extend(recorder.of_type(event_type))
    events.sort(key=lambda e: e.time)
    return events


def _stamp(clock: Optional[SimClock], time_s: float) -> str:
    if clock is None:
        return f"t={time_s / 86_400.0:8.3f}d"
    return f"{clock.to_datetime(time_s):%Y-%m-%d %H:%M}"


def render_plant_incidents(
    recorder,
    clock: Optional[SimClock] = None,
    top: int = 5,
) -> str:
    """The chaos-plane incident log: tallies plus the latest events.

    ``recorder`` is the campaign's plant
    :class:`~repro.sim.events.EventRecorder`; with no incidents the
    block says so instead of vanishing, so a chaos run that injected
    nothing is visibly different from one that was never armed.
    """
    events = _incident_stream(recorder)
    if not events:
        return "plant incidents: none (chaos plane armed, nothing fired)"
    shown = events[-max(top, 1):]
    lines = [f"plant incidents ({len(events)} event(s), last {len(shown)}):"]
    for event in shown:
        lines.append(f"  {_stamp(clock, event.time)}  {_describe_incident(event)}")
    counts = recorder.counts()
    tally = ", ".join(
        f"{name} x{counts[name]}"
        for name in sorted(counts)
        if any(name == t.__name__ for t in _plant_event_types())
    )
    if tally:
        lines.append(f"  tally: {tally}")
    return "\n".join(lines)


def render_pod_incidents(
    recorder,
    pod: int,
    clock: Optional[SimClock] = None,
    limit: int = 10,
) -> str:
    """The drill-down companion: one pod's trips, sheds, and flaps."""
    events = [
        e for e in _incident_stream(recorder) if getattr(e, "pod", None) == pod
    ]
    if not events:
        return f"pod {pod} incidents: none"
    shown = events[-max(limit, 1):]
    lines = [f"pod {pod} incidents ({len(events)} event(s), last {len(shown)}):"]
    for event in shown:
        lines.append(f"  {_stamp(clock, event.time)}  {_describe_incident(event)}")
    return "\n".join(lines)


def render_phase_profile(telemetry: Telemetry, frames: int) -> str:
    """Where the vectorized tick spends its wall time, per phase."""
    labels = [
        label
        for label in telemetry.spans.labels()
        if label.startswith("fleetscale.")
    ]
    if not labels:
        return "phase profile: no fleetscale.* spans recorded"
    total = sum(telemetry.spans.stats(label).total_s for label in labels)
    lines = [
        f"phase profile ({frames} frames, {total * 1e3:.1f} ms total frame time):"
    ]
    width = max(len(label) for label in labels)
    for label in sorted(labels, key=lambda l: -telemetry.spans.stats(l).total_s):
        stats = telemetry.spans.stats(label)
        share = stats.total_s / total if total > 0 else 0.0
        bar = "#" * int(round(share * 30))
        lines.append(
            f"  {label:<{width}}  {stats.total_s * 1e3:>8.1f} ms "
            f"{share * 100:>5.1f}%  {bar}"
        )
    return "\n".join(lines)


def _known(recorder: SeriesRecorder, signal: str) -> bool:
    return signal in recorder.signals


__all__ = [
    "DASHBOARD_SIGNALS",
    "pod_anomalies",
    "render_observatory",
    "render_phase_profile",
    "render_plant_incidents",
    "render_pod_drilldown",
    "render_pod_incidents",
]
