"""Removal of the logger-carried-indoors outliers.

Section 3.3: "we have been forced to remove a number of outliers in the
measurements caused by removing the data logger and carrying it indoors.
These outliers have been removed from the graphs."

The detector exploits the episode's signature: the tent sits near (often
well below) outside temperature, so a download trip shows up as an abrupt
jump *into the office comfort band* followed, half an hour later, by an
abrupt drop back.  A sample is flagged when both

- its value lies inside the indoor band, and
- it belongs to a contiguous indoor-band stretch entered via a jump of at
  least ``jump_c`` degrees per sample step.

The jump condition keeps legitimately mild tent afternoons (a slow drift
into 18-20 degC territory in May) from being discarded.

The fleet observatory adds a second detector family:
:func:`fleet_zscores` / :func:`flag_fleet_anomalies` score each pod
against the *fleet median* with a MAD-scaled robust z-score, so the
``repro observe`` dashboard can flag the one pod whose tent runs hot or
whose failure tally outpaces its siblings without a handful of bad pods
dragging the baseline with them.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.analysis.series import TimeSeries

#: Office comfort band the logger sees during a download trip.
DEFAULT_INDOOR_BAND_C = (18.0, 25.0)

#: Consistency factor turning a MAD into a normal-comparable sigma.
_MAD_SIGMA = 1.4826

#: Default robust-z threshold for a pod-level anomaly flag.
DEFAULT_Z_THRESHOLD = 3.5


def fleet_zscores(values: np.ndarray) -> np.ndarray:
    """Robust z-score of each element against the population median.

    The scale is the median absolute deviation times 1.4826 (the normal
    consistency factor); when the MAD degenerates to zero (more than
    half the fleet shares one value) the standard deviation stands in,
    and a fully uniform population scores all zeros rather than
    dividing by nothing.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1:
        raise ValueError("fleet values must be 1-D (one entry per pod)")
    if values.size == 0:
        return np.zeros(0)
    median = np.median(values)
    deviations = values - median
    scale = _MAD_SIGMA * np.median(np.abs(deviations))
    if scale == 0.0:
        scale = float(values.std())
    if scale == 0.0:
        return np.zeros(values.size)
    return deviations / scale


def flag_fleet_anomalies(
    values: np.ndarray, z_threshold: float = DEFAULT_Z_THRESHOLD
) -> np.ndarray:
    """Boolean mask of elements whose robust |z| meets the threshold."""
    if z_threshold <= 0:
        raise ValueError("z threshold must be positive")
    return np.abs(fleet_zscores(values)) >= z_threshold


def detect_removal_outliers(
    temps_c: np.ndarray,
    jump_c: float = 4.0,
    indoor_band_c: Tuple[float, float] = DEFAULT_INDOOR_BAND_C,
) -> np.ndarray:
    """Boolean mask of samples judged to be indoors-download outliers.

    Parameters
    ----------
    temps_c:
        The logged temperature sequence (regular or irregular cadence).
    jump_c:
        Minimum one-step change that counts as "carried through a door".
    indoor_band_c:
        Temperatures a sample must lie in to be suspect at all.
    """
    temps = np.asarray(temps_c, dtype=float)
    if temps.ndim != 1:
        raise ValueError("temperature sequence must be 1-D")
    if jump_c <= 0:
        raise ValueError("jump threshold must be positive")
    low, high = indoor_band_c
    if high <= low:
        raise ValueError("indoor band must have positive width")

    n = len(temps)
    if n == 0:
        return np.zeros(0, dtype=bool)

    in_band = (temps >= low) & (temps <= high)
    mask = np.zeros(n, dtype=bool)

    i = 0
    while i < n:
        if not in_band[i]:
            i += 1
            continue
        # Found the start of an in-band stretch; find its extent.
        j = i
        while j + 1 < n and in_band[j + 1]:
            j += 1
        entered_by_jump = i > 0 and (temps[i] - temps[i - 1]) >= jump_c
        exited_by_jump = j + 1 < n and (temps[j] - temps[j + 1]) >= jump_c
        # A download trip shows the jump on at least one side (a stretch at
        # the very start/end of the record can only show one).
        boundary_stretch = i == 0 or j == n - 1
        if entered_by_jump or exited_by_jump or (boundary_stretch and in_band[i]):
            # Boundary stretches are only discarded when short -- a long
            # warm tail in May is real weather, not a download trip.
            if entered_by_jump or exited_by_jump or (j - i + 1) <= 5:
                mask[i : j + 1] = True
        i = j + 1
    return mask


def remove_removal_outliers(
    series: TimeSeries,
    jump_c: float = 4.0,
    indoor_band_c: Tuple[float, float] = DEFAULT_INDOOR_BAND_C,
) -> TimeSeries:
    """A copy of ``series`` with the detected outlier samples dropped."""
    mask = detect_removal_outliers(series.values, jump_c=jump_c, indoor_band_c=indoor_band_c)
    return series.where(~mask)


def remove_with_companion(
    primary: TimeSeries,
    companion: TimeSeries,
    jump_c: float = 4.0,
    indoor_band_c: Tuple[float, float] = DEFAULT_INDOOR_BAND_C,
) -> Tuple[TimeSeries, TimeSeries]:
    """Drop outliers from a temperature series and its co-sampled companion.

    The Lascar logs temperature and RH on the same timestamps; when a
    temperature sample is discarded as an indoors outlier, the RH sample
    taken at the same instant must go with it.
    """
    if len(primary) != len(companion) or not np.array_equal(primary.times, companion.times):
        raise ValueError("primary and companion must share identical timestamps")
    mask = detect_removal_outliers(primary.values, jump_c=jump_c, indoor_band_c=indoor_band_c)
    keep = ~mask
    return primary.where(keep), companion.where(keep)
