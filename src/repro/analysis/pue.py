"""Power usage effectiveness: the Section 5 cluster arithmetic.

The paper sizes the department's new cluster: a 75 kW peak IT load cooled
by three CRAC units (6.9 kW total), a water-chilling HVAC unit (44.7 kW)
and a roof-top liquid cooling unit (3.8 kW).  "If we could just sum those
figures up, the new cluster's power usage effectiveness (PUE) rating would
be a rather efficient 1.74.  Unfortunately, such is not the case, as our
existing CRACs take care of some of the thermal load.  This means that for
PUE, the situation is worse, and more energy is wasted."

:class:`CoolingPlant` reproduces the sum, the PUE, and the what-if numbers
the whole paper motivates: replace the plant with free-air fans and watch
the cooling overhead collapse.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class CoolingPlant:
    """A named inventory of cooling-power components (kW)."""

    name: str
    it_load_kw: float
    cooling_components_kw: Tuple[Tuple[str, float], ...]

    def __post_init__(self) -> None:
        if self.it_load_kw <= 0:
            raise ValueError("IT load must be positive")
        for label, kw in self.cooling_components_kw:
            if kw < 0:
                raise ValueError(f"cooling component {label!r} has negative power")

    @property
    def cooling_total_kw(self) -> float:
        """Sum of all cooling-plant draws."""
        return sum(kw for _, kw in self.cooling_components_kw)

    @property
    def facility_total_kw(self) -> float:
        """IT plus cooling (the paper's optimistic sum: no lighting, UPS...)."""
        return self.it_load_kw + self.cooling_total_kw

    @property
    def pue(self) -> float:
        """Power usage effectiveness: facility power over IT power."""
        return self.facility_total_kw / self.it_load_kw

    @property
    def cooling_overhead_fraction(self) -> float:
        """Cooling power as a fraction of facility power."""
        return self.cooling_total_kw / self.facility_total_kw

    def replace_cooling(self, name: str, components_kw: Dict[str, float]) -> "CoolingPlant":
        """The same IT load under a different cooling plant."""
        return CoolingPlant(
            name=name,
            it_load_kw=self.it_load_kw,
            cooling_components_kw=tuple(sorted(components_kw.items())),
        )

    def cooling_energy_savings_vs(self, other: "CoolingPlant") -> float:
        """Fraction of *cooling* energy saved by switching to ``other``.

        Intel's air-economizer estimate of ~67 % and HP's ~40 % savings
        are statements of this kind (the exact baseline varies by report).
        """
        if self.cooling_total_kw == 0:
            return 0.0
        return 1.0 - other.cooling_total_kw / self.cooling_total_kw

    def describe(self) -> str:
        """Multi-line budget table as plain text."""
        lines = [f"{self.name}: IT load {self.it_load_kw:.1f} kW"]
        for label, kw in self.cooling_components_kw:
            lines.append(f"  {label:<38s} {kw:6.1f} kW")
        lines.append(f"  {'cooling total':<38s} {self.cooling_total_kw:6.1f} kW")
        lines.append(f"  PUE = {self.facility_total_kw:.1f} / {self.it_load_kw:.1f} = {self.pue:.2f}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PueBreakdown:
    """Paper-vs-alternative comparison used by the E10 benchmark."""

    conventional: CoolingPlant
    free_air: CoolingPlant

    @property
    def pue_delta(self) -> float:
        """PUE improvement from going free-air."""
        return self.conventional.pue - self.free_air.pue

    def summary_rows(self) -> "list[tuple[str, float, float, float]]":
        """Rows of (name, cooling kW, facility kW, PUE) for the bench table."""
        return [
            (
                plant.name,
                plant.cooling_total_kw,
                plant.facility_total_kw,
                plant.pue,
            )
            for plant in (self.conventional, self.free_air)
        ]


#: The department's new cluster exactly as Section 5 itemises it.
PAPER_CLUSTER_PLANT = CoolingPlant(
    name="CS department cluster (retrofitted CRACs)",
    it_load_kw=75.0,
    cooling_components_kw=(
        ("3x computer-room air conditioning (CRAC)", 6.9),
        ("HVAC chilled-water unit", 44.7),
        ("roof liquid cooling unit", 3.8),
    ),
)

#: A free-air alternative: the tent writ large.  Fans sized at ~4 % of the
#: IT load, the ballpark of air-economizer retrofits.
FREE_AIR_PLANT = PAPER_CLUSTER_PLANT.replace_cooling(
    "free-air economizer (paper's proposal)",
    {"intake/exhaust fans": 3.0},
)


def paper_breakdown() -> PueBreakdown:
    """The conventional-vs-free-air comparison for the E10 benchmark."""
    return PueBreakdown(conventional=PAPER_CLUSTER_PLANT, free_air=FREE_AIR_PLANT)
