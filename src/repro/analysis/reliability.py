"""Reliability statistics beyond the paper's raw percentages.

The paper compares a single point estimate (5.6 %) against Intel's
(4.46 %) and argues they are "comparable".  With 18 hosts that intuition
deserves intervals: this module provides the Wilson confidence interval
for a binomial proportion, a two-proportion comparison, MTBF estimation,
and a Kaplan-Meier survival curve over host lifetimes -- the machinery a
longer-running follow-up (the paper's stated future work) needs.

The degraded-mode monitoring plane adds a second concern: the census is
*observed* through 20-minute collection rounds that can themselves fail
(SSH timeouts, dead switches), so reliability numbers deserve a
statement of how much of the campaign was actually watched.
:func:`observation_coverage` summarises per-host coverage from the
collection rounds, and :func:`interpolate_readings` fills observation
gaps in a host's temperature series by linear interpolation -- flagged,
never silently -- so downstream plots survive missing rounds.

Only :mod:`math`-level numerics are used; no scipy dependency.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Standard normal quantiles for the confidence levels reports use.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def _z_for(confidence: float) -> float:
    try:
        return _Z[confidence]
    except KeyError:
        raise ValueError(
            f"confidence must be one of {sorted(_Z)}, got {confidence}"
        ) from None


def wilson_interval(
    failures: int, total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Robust at the small counts the paper has (1 failure in 18 hosts);
    the naive Wald interval would collapse or go negative there.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= failures <= total:
        raise ValueError("failures must be within [0, total]")
    z = _z_for(confidence)
    p = failures / total
    denom = 1.0 + z * z / total
    centre = (p + z * z / (2 * total)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / total + z * z / (4 * total * total))
        / denom
    )
    return max(0.0, centre - half), min(1.0, centre + half)


def rates_are_consistent(
    failures_a: int,
    total_a: int,
    failures_b: int,
    total_b: int,
    confidence: float = 0.95,
) -> bool:
    """Two-proportion z-test: can the two failure rates be the same?

    Returns True when the difference is *not* significant at the given
    confidence -- the statistical rendering of the paper's "a comparable
    rate".  Uses the pooled-variance z statistic.
    """
    if total_a <= 0 or total_b <= 0:
        raise ValueError("totals must be positive")
    p_a = failures_a / total_a
    p_b = failures_b / total_b
    pooled = (failures_a + failures_b) / (total_a + total_b)
    variance = pooled * (1 - pooled) * (1 / total_a + 1 / total_b)
    if variance == 0.0:
        return p_a == p_b
    z = abs(p_a - p_b) / math.sqrt(variance)
    return z <= _z_for(confidence)


def mtbf_hours(total_uptime_s: float, failures: int) -> Optional[float]:
    """Mean time between failures; ``None`` when nothing failed yet."""
    if total_uptime_s < 0:
        raise ValueError("uptime cannot be negative")
    if failures < 0:
        raise ValueError("failure count cannot be negative")
    if failures == 0:
        return None
    return total_uptime_s / 3600.0 / failures


@dataclass(frozen=True)
class Lifetime:
    """One host's observation window for survival analysis.

    ``duration_s`` runs from install to first failure (``failed=True``)
    or to the end of observation (censored, ``failed=False``).
    """

    host_id: int
    duration_s: float
    failed: bool

    def __post_init__(self) -> None:
        if self.duration_s < 0:
            raise ValueError("duration cannot be negative")


@dataclass(frozen=True)
class SurvivalPoint:
    """One step of the Kaplan-Meier curve."""

    time_s: float
    survival: float
    at_risk: int


def kaplan_meier(lifetimes: Sequence[Lifetime]) -> List[SurvivalPoint]:
    """Kaplan-Meier estimator over host lifetimes.

    Returns the survival steps at each distinct failure time; censored
    observations reduce the at-risk set without a step, the standard
    treatment of hosts that were still running when the campaign ended.
    """
    if not lifetimes:
        return []
    ordered = sorted(lifetimes, key=lambda lt: (lt.duration_s, not lt.failed))
    n_risk = len(ordered)
    survival = 1.0
    points: List[SurvivalPoint] = []
    i = 0
    while i < len(ordered):
        t = ordered[i].duration_s
        deaths = 0
        censored = 0
        while i < len(ordered) and ordered[i].duration_s == t:
            if ordered[i].failed:
                deaths += 1
            else:
                censored += 1
            i += 1
        if deaths and n_risk > 0:
            survival *= 1.0 - deaths / n_risk
            points.append(SurvivalPoint(time_s=t, survival=survival, at_risk=n_risk))
        n_risk -= deaths + censored
    return points


# ----------------------------------------------------------------------
# Observation coverage (gap tolerance)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ObservationCoverage:
    """How well the monitoring plane actually watched one host.

    ``rounds_expected`` counts the collection rounds in which the host
    was registered (it shows up in *some* list of the round);
    ``rounds_observed`` the subset that pulled its telemetry;
    ``longest_gap_rounds`` the worst consecutive stretch of missed
    rounds.
    """

    host_id: int
    rounds_expected: int
    rounds_observed: int
    longest_gap_rounds: int

    @property
    def coverage(self) -> float:
        """Observed fraction in [0, 1] (1.0 for a never-expected host)."""
        if self.rounds_expected == 0:
            return 1.0
        return self.rounds_observed / self.rounds_expected


def observation_coverage(rounds: Sequence) -> List[ObservationCoverage]:
    """Per-host observation coverage from the collection rounds.

    ``rounds`` is ``results.monitoring.rounds`` (or any sequence of
    :class:`~repro.monitoring.collector.CollectionRound`).  A host is
    *expected* in every round that mentions it at all -- collected,
    unreachable, down, or merely degraded -- and *observed* when its
    telemetry was pulled.  Returns one entry per host, ordered by id.
    """
    expected: dict = {}
    observed: dict = {}
    gap: dict = {}
    worst_gap: dict = {}
    for round_ in rounds:
        missed = (
            tuple(round_.unreachable_host_ids)
            + tuple(round_.down_host_ids)
            + tuple(getattr(round_, "degraded_host_ids", ()))
        )
        for host_id in round_.collected_host_ids:
            expected[host_id] = expected.get(host_id, 0) + 1
            observed[host_id] = observed.get(host_id, 0) + 1
            gap[host_id] = 0
        for host_id in missed:
            expected[host_id] = expected.get(host_id, 0) + 1
            gap[host_id] = gap.get(host_id, 0) + 1
            if gap[host_id] > worst_gap.get(host_id, 0):
                worst_gap[host_id] = gap[host_id]
    return [
        ObservationCoverage(
            host_id=host_id,
            rounds_expected=expected[host_id],
            rounds_observed=observed.get(host_id, 0),
            longest_gap_rounds=worst_gap.get(host_id, 0),
        )
        for host_id in sorted(expected)
    ]


@dataclass(frozen=True)
class InterpolatedReading:
    """One point of a gap-filled temperature series.

    ``observed`` is ``False`` for points synthesised between two real
    readings -- plots can render them differently, and statistics can
    drop them.
    """

    time: float
    cpu_temp_c: float
    observed: bool


def interpolate_readings(
    records: Sequence,
    period_s: float = 1200.0,
    max_gap_rounds: Optional[int] = None,
) -> List[InterpolatedReading]:
    """Linear interpolation over missing rounds of one host's series.

    ``records`` are one host's time-sorted
    :class:`~repro.monitoring.records.SensorRecord` pulls.  Readings
    with a temperature become anchors; a gap between two anchors wider
    than one collection period is filled at ``period_s`` cadence with
    linearly interpolated, ``observed=False`` points.  Mute readings
    (``cpu_temp_c is None``) anchor nothing and are dropped.  Gaps
    longer than ``max_gap_rounds`` missed rounds are left open -- a host
    that vanished for a week should show a hole, not a confident line.
    """
    if period_s <= 0:
        raise ValueError("period must be positive")
    if max_gap_rounds is not None and max_gap_rounds < 0:
        raise ValueError("max gap cannot be negative")
    anchors = [r for r in records if r.cpu_temp_c is not None]
    out: List[InterpolatedReading] = []
    for i, anchor in enumerate(anchors):
        if i > 0:
            prev = anchors[i - 1]
            span = anchor.time - prev.time
            missing = int(round(span / period_s)) - 1
            if missing > 0 and (max_gap_rounds is None or missing <= max_gap_rounds):
                for k in range(1, missing + 1):
                    t = prev.time + k * span / (missing + 1)
                    frac = (t - prev.time) / span
                    out.append(
                        InterpolatedReading(
                            time=t,
                            cpu_temp_c=prev.cpu_temp_c
                            + frac * (anchor.cpu_temp_c - prev.cpu_temp_c),
                            observed=False,
                        )
                    )
        out.append(
            InterpolatedReading(
                time=anchor.time, cpu_temp_c=anchor.cpu_temp_c, observed=True
            )
        )
    return out


def lifetimes_from_results(results) -> List[Lifetime]:
    """Build survival observations from a finished experiment run.

    Each initially-installed host contributes one observation: install to
    first system failure, or censored at the run's end.
    """
    from repro.hardware.faults import FaultKind  # local import: avoid cycle

    first_failure = {}
    for event in results.fault_log.events:
        if event.host_id is None:
            continue
        if event.kind not in (FaultKind.TRANSIENT_SYSTEM, FaultKind.DISK):
            continue
        first_failure.setdefault(event.host_id, event.time)

    lifetimes: List[Lifetime] = []
    for host_id in results.tent_host_ids() + results.basement_host_ids():
        host = results.fleet.host(host_id)
        if host.installed_at is None:
            continue
        failed_at = first_failure.get(host_id)
        if failed_at is not None:
            lifetimes.append(
                Lifetime(host_id, failed_at - host.installed_at, failed=True)
            )
        else:
            lifetimes.append(
                Lifetime(host_id, results.end_time - host.installed_at, failed=False)
            )
    return lifetimes
