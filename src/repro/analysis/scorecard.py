"""Controller scorecard: energy vs. failure census vs. SLA, per climate.

The closed-loop control plane makes "which operator policy is best?" an
empirical question.  This module answers it the way the paper scores the
real campaign: run each controller through the same seeded campaign, per
climate, and tabulate

- **energy** -- metered tent-group kWh (the free-cooling bill),
- **failures** -- the fault-log census (did aggressive cooling cost
  hardware?),
- **SLA** -- delivered host-hours as a percentage of the ideal
  all-up-all-the-time figure (shed or dead hosts both lose SLA).

Everything is deterministic per seed: the scorecard for a given
(controllers, climates, seed, horizon) tuple is reproducible to the
byte, which is what lets the CI smoke job pin one.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ExperimentConfig
from repro.core.scenarios import harsher_winter, paper_campaign

#: Climates the scorecard sweeps: name -> ``factory(seed)`` returning an
#: :class:`~repro.core.config.ExperimentConfig`.
CLIMATES = {
    "helsinki": paper_campaign,
    "harsher-winter": harsher_winter,
}


@dataclasses.dataclass(frozen=True)
class ControllerScore:
    """One (controller, climate) cell of the scorecard."""

    controller: str
    climate: str
    seed: int
    energy_kwh: float
    failures: int
    hosts_lost: int
    sla_percent: float
    control_actions: int


def _score_one(
    controller: str,
    climate: str,
    config: ExperimentConfig,
    until: Optional[_dt.datetime],
) -> ControllerScore:
    from repro.core.builder import CampaignBuilder

    campaign = CampaignBuilder(config).with_controller(controller).build()
    results = campaign.run(until=until)

    end = results.end_time
    hosts = list(campaign.fleet.hosts.values())
    # Ideal service = every installed host up from its install date to
    # the horizon; delivered = accrued uptime.  Shed, failed, and
    # late-repaired hosts all lose SLA; staged spares cost nothing.
    ideal_host_hours = sum(
        max(0.0, (end - campaign.clock.to_seconds(plan.install_date)) / 3600.0)
        for plan in config.host_plans
        if plan.install_date is not None
    )
    delivered = sum(host.uptime_s for host in hosts) / 3600.0
    # Clamp: uptime accrues in whole ticks, so a fault-free run can land
    # a fraction of a tick over the ideal window.
    sla = (
        min(100.0, 100.0 * delivered / ideal_host_hours)
        if ideal_host_hours > 0
        else 100.0
    )
    from repro.hardware.host import HostState

    lost = sum(
        1
        for host in hosts
        if host.state in (HostState.FAILED, HostState.RETIRED)
    )
    return ControllerScore(
        controller=controller,
        climate=climate,
        seed=config.seed,
        energy_kwh=results.powermeter.energy_kwh,
        failures=len(results.fault_log.events),
        hosts_lost=lost,
        sla_percent=sla,
        control_actions=campaign.control.actuators.actions_applied,
    )


def run_scorecard(
    controllers: Sequence[str] = ("paper-operator", "thermostat", "model-free"),
    climates: Sequence[str] = ("helsinki", "harsher-winter"),
    seed: int = 7,
    until: Optional[_dt.datetime] = None,
) -> List[ControllerScore]:
    """Score every controller x climate cell; deterministic per seed."""
    scores: List[ControllerScore] = []
    for climate in climates:
        if climate not in CLIMATES:
            known = ", ".join(sorted(CLIMATES))
            raise ValueError(f"unknown climate {climate!r} (known: {known})")
        config = CLIMATES[climate](seed=seed)
        for controller in controllers:
            scores.append(_score_one(controller, climate, config, until))
    return scores


def render_scorecard(scores: Sequence[ControllerScore]) -> str:
    """ASCII table of the scorecard, grouped by climate."""
    lines: List[str] = []
    header = (
        f"{'climate':<16} {'controller':<16} {'energy kWh':>11} "
        f"{'failures':>9} {'lost':>5} {'SLA %':>8} {'actions':>8}"
    )
    rule = "-" * len(header)
    lines.append(header)
    lines.append(rule)
    for score in scores:
        lines.append(
            f"{score.climate:<16} {score.controller:<16} "
            f"{score.energy_kwh:>11.3f} {score.failures:>9d} "
            f"{score.hosts_lost:>5d} {score.sla_percent:>8.3f} "
            f"{score.control_actions:>8d}"
        )
    return "\n".join(lines)
