"""Monte-Carlo over master seeds: the census as a distribution.

The paper reports one draw of reality; the simulation can report the
*distribution*.  This module holds the passive aggregates -- a
:class:`SeedOutcome` per run and the :class:`SweepSummary` with its
Wilson interval over the pooled host population -- for questions like
"was 5.6 % lucky?" (answer: it is near the middle of the distribution)
without touching the calibrated default run.

Execution lives in :mod:`repro.runner.pool`: ``sweep_seeds`` and
``sweep_records`` (re-exported here lazily for backwards compatibility)
run the campaigns, serially or process-parallel, with retries/timeouts
and graceful degradation when a worker misbehaves -- a sweep that loses
a seed reports it in ``SweepResult.failures`` and still aggregates the
survivors here.  Keeping this module free of ``repro.core`` imports is
deliberate -- the old function-local ``from repro import Experiment``
papered over an import cycle the layering now rules out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.analysis.reliability import wilson_interval


@dataclass(frozen=True)
class SeedOutcome:
    """The headline census of one seeded run."""

    seed: int
    hosts_installed: int
    hosts_failed: int
    wrong_hashes: int
    total_runs: int
    sensor_latches: int

    @property
    def failure_rate_percent(self) -> float:
        """Failed-host rate for this seed."""
        if self.hosts_installed == 0:
            return 0.0
        return 100.0 * self.hosts_failed / self.hosts_installed

    @property
    def wrong_hash_rate(self) -> float:
        """Wrong hashes per run for this seed."""
        if self.total_runs == 0:
            return 0.0
        return self.wrong_hashes / self.total_runs


@dataclass(frozen=True)
class SweepSummary:
    """Aggregate over all swept seeds."""

    outcomes: Tuple[SeedOutcome, ...]

    def __post_init__(self) -> None:
        if not self.outcomes:
            raise ValueError("a sweep needs at least one outcome")

    @property
    def mean_failure_rate_percent(self) -> float:
        """Mean of the per-seed failure rates."""
        rates = [o.failure_rate_percent for o in self.outcomes]
        return sum(rates) / len(rates)

    def pooled_failure_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Wilson interval over the pooled host population (as fractions)."""
        failed = sum(o.hosts_failed for o in self.outcomes)
        total = sum(o.hosts_installed for o in self.outcomes)
        return wilson_interval(failed, total, confidence)

    @property
    def pooled_wrong_hash_rate(self) -> float:
        """Wrong hashes per run over every swept run."""
        wrong = sum(o.wrong_hashes for o in self.outcomes)
        runs = sum(o.total_runs for o in self.outcomes)
        return wrong / runs if runs else 0.0

    def rate_within(self, percent: float) -> bool:
        """Whether ``percent`` lies inside the pooled 95 % interval."""
        lo, hi = self.pooled_failure_interval()
        return lo <= percent / 100.0 <= hi

    def describe(self) -> str:
        """Per-seed table plus the pooled interval."""
        lines = [f"{'seed':>6}{'failed':>9}{'rate':>8}{'wrong':>7}{'runs':>9}"]
        for o in self.outcomes:
            lines.append(
                f"{o.seed:>6}{o.hosts_failed:>6}/{o.hosts_installed:<2}"
                f"{o.failure_rate_percent:>7.1f}%{o.wrong_hashes:>7}{o.total_runs:>9}"
            )
        lo, hi = self.pooled_failure_interval()
        lines.append(
            f"pooled failure rate 95 % CI: {100 * lo:.1f}-{100 * hi:.1f} % "
            f"(paper: 5.6 %, Intel: 4.46 %)"
        )
        return "\n".join(lines)


def outcome_from_results(seed: int, results) -> SeedOutcome:
    """Extract the headline census of one finished run."""
    census = results.overall_census()
    latches = sum(
        1 for h in results.fleet.hosts.values() if h.sensor.ever_latched
    )
    return SeedOutcome(
        seed=seed,
        hosts_installed=census.hosts_total,
        hosts_failed=census.hosts_failed,
        wrong_hashes=results.ledger.total_wrong_hashes,
        total_runs=results.ledger.total_runs,
        sensor_latches=latches,
    )


def __getattr__(name: str):
    # Lazy compat re-exports: execution moved to the runner layer, but
    # ``from repro.analysis.seedsweep import sweep_seeds`` keeps working.
    if name == "sweep_seeds":
        from repro.runner.pool import sweep_seeds

        return sweep_seeds
    if name == "sweep_records":
        from repro.runner.pool import sweep_records

        return sweep_records
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
