"""A small time-series container for instrument data.

Figures 3 and 4 are built from irregularly sampled instrument series (the
Lascar logger pauses during download trips, collection rounds skip failed
switches).  :class:`TimeSeries` wraps parallel ``times``/``values`` arrays
with the handful of operations the figures and statistics need: window
slicing, masking, resampling to a regular grid, and daily aggregation.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.sim.clock import DAY, SimClock


class TimeSeries:
    """Immutable pair of (times, values), times strictly increasing.

    Parameters
    ----------
    times / values:
        Parallel arrays.  Times must be strictly increasing; values may be
        any float quantity (degC, %RH, W).
    """

    def __init__(self, times: np.ndarray, values: np.ndarray) -> None:
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or values.ndim != 1:
            raise ValueError("times and values must be 1-D")
        if len(times) != len(values):
            raise ValueError(f"length mismatch: {len(times)} times, {len(values)} values")
        if len(times) > 1 and not np.all(np.diff(times) > 0):
            raise ValueError("times must be strictly increasing")
        self.times = times
        self.values = values

    # ------------------------------------------------------------------
    # Basics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:
        if len(self) == 0:
            return "TimeSeries(empty)"
        return (
            f"TimeSeries(n={len(self)}, "
            f"t=[{self.times[0]:.0f}..{self.times[-1]:.0f}]s, "
            f"v=[{self.values.min():.2f}..{self.values.max():.2f}])"
        )

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return zip(self.times, self.values)

    @property
    def empty(self) -> bool:
        """True when the series holds no samples."""
        return len(self) == 0

    def min(self) -> float:
        """Minimum value; raises on empty series."""
        self._require_data()
        return float(self.values.min())

    def max(self) -> float:
        """Maximum value; raises on empty series."""
        self._require_data()
        return float(self.values.max())

    def mean(self) -> float:
        """Arithmetic mean; raises on empty series."""
        self._require_data()
        return float(self.values.mean())

    def std(self) -> float:
        """Standard deviation; raises on empty series."""
        self._require_data()
        return float(self.values.std())

    def _require_data(self) -> None:
        if self.empty:
            raise ValueError("operation undefined on an empty TimeSeries")

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t < end``."""
        if end < start:
            raise ValueError("window end before start")
        mask = (self.times >= start) & (self.times < end)
        return TimeSeries(self.times[mask], self.values[mask])

    def where(self, mask: np.ndarray) -> "TimeSeries":
        """Samples selected by a boolean mask."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.times.shape:
            raise ValueError("mask shape mismatch")
        return TimeSeries(self.times[mask], self.values[mask])

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def resample(self, grid: np.ndarray) -> "TimeSeries":
        """Linear interpolation onto ``grid`` (must lie within the span)."""
        self._require_data()
        grid = np.asarray(grid, dtype=float)
        if grid.size and (grid[0] < self.times[0] - 1e-9 or grid[-1] > self.times[-1] + 1e-9):
            raise ValueError("resample grid extends beyond the series span")
        return TimeSeries(grid, np.interp(grid, self.times, self.values))

    def rolling_mean(self, window_s: float) -> "TimeSeries":
        """Centred moving average over a time window (irregular-safe)."""
        self._require_data()
        if window_s <= 0:
            raise ValueError("window must be positive")
        half = window_s / 2.0
        out = np.empty_like(self.values)
        left = np.searchsorted(self.times, self.times - half, side="left")
        right = np.searchsorted(self.times, self.times + half, side="right")
        csum = np.concatenate(([0.0], np.cumsum(self.values)))
        counts = right - left
        out = (csum[right] - csum[left]) / counts
        return TimeSeries(self.times.copy(), out)

    def daily_aggregate(
        self, clock: SimClock, reducer: Callable[[np.ndarray], float]
    ) -> "TimeSeries":
        """One value per calendar day, via ``reducer`` (e.g. ``np.min``).

        The returned times are each day's midnight.
        """
        self._require_data()
        day_starts: List[float] = []
        day_values: List[float] = []
        first_midnight = clock.midnight_before(float(self.times[0]))
        day = first_midnight
        while day <= self.times[-1]:
            mask = (self.times >= day) & (self.times < day + DAY)
            if np.any(mask):
                day_starts.append(day)
                day_values.append(float(reducer(self.values[mask])))
            day += DAY
        return TimeSeries(np.array(day_starts), np.array(day_values))

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    def aligned_difference(self, other: "TimeSeries") -> "TimeSeries":
        """``self - other`` on self's times (other interpolated).

        Used for the inside-minus-outside temperature excess of Fig. 3.
        Only the overlapping span is kept.
        """
        self._require_data()
        other._require_data()
        start = max(self.times[0], other.times[0])
        end = min(self.times[-1], other.times[-1])
        if start > end:
            raise ValueError("series do not overlap in time")
        clipped = self.window(start, end + 1e-9)
        other_vals = np.interp(clipped.times, other.times, other.values)
        return TimeSeries(clipped.times, clipped.values - other_vals)

    @staticmethod
    def from_pairs(pairs: "list[tuple[float, float]]") -> "TimeSeries":
        """Build from ``[(t, v), ...]`` (sorted by time by the caller)."""
        if not pairs:
            return TimeSeries(np.zeros(0), np.zeros(0))
        times, values = zip(*pairs)
        return TimeSeries(np.array(times, dtype=float), np.array(values, dtype=float))
