"""Survival census: what the fleet lived through under plant faults.

The chaos plane (:mod:`repro.plant`) counts every injected fault,
protective trip, shed host, and in-incident loss.  This module gives
those counters one canonical shape -- :class:`SurvivalCensus` -- shared
by the fleet-scale campaign, the 19-host paper campaign's controller,
and the atlas risk column, plus a renderer for the CLI.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional


@dataclass(frozen=True)
class SurvivalCensus:
    """Counters of harm done and harm averted during one run."""

    faults_injected: int = 0
    faults_repaired: int = 0
    trips: int = 0
    trip_clears: int = 0
    hosts_shed: int = 0
    hosts_restored: int = 0
    host_hours_shed: float = 0.0
    excursion_minutes: float = 0.0
    hosts_lost: int = 0

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any]) -> "SurvivalCensus":
        """Build from any census-shaped mapping (extra keys ignored)."""
        fields = {
            "faults_injected": int(data.get("faults_injected", 0)),
            "faults_repaired": int(data.get("faults_repaired", 0)),
            "trips": int(data.get("trips", 0)),
            "trip_clears": int(data.get("trip_clears", 0)),
            "hosts_shed": int(data.get("hosts_shed", 0)),
            "hosts_restored": int(data.get("hosts_restored", 0)),
            "host_hours_shed": float(data.get("host_hours_shed", 0.0)),
            "excursion_minutes": float(data.get("excursion_minutes", 0.0)),
            "hosts_lost": int(data.get("hosts_lost", 0)),
        }
        return cls(**fields)

    @classmethod
    def from_campaign(cls, campaign: Any) -> "SurvivalCensus":
        """From a :class:`~repro.core.fleetscale.FleetScaleCampaign`
        (via ``plant_census()``) or a paper :class:`Campaign` (via its
        plant controller's census dict)."""
        census = getattr(campaign, "plant_census", None)
        data = census() if callable(census) else None
        if data is None:
            controller = getattr(campaign, "plant", None)
            data = getattr(controller, "census", None)
        return cls.from_mapping(data or {})

    def to_json_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["host_hours_shed"] = round(self.host_hours_shed, 3)
        data["excursion_minutes"] = round(self.excursion_minutes, 3)
        return data

    @property
    def sla_impact_host_hours(self) -> float:
        """Host-hours of lost service: shed time plus repair windows of
        in-incident losses (the loss itself is counted by its shed
        column only when the host was deliberately powered down --
        failures carry their own repair outage, tallied by the hazard
        model, so this is the deliberate-downtime share)."""
        return self.host_hours_shed

    def survived(self) -> bool:
        """Did the protective layer hold -- every shed host restored and
        every trip cleared by end of run?"""
        return self.hosts_restored >= self.hosts_shed and self.trip_clears >= self.trips


def render_survival(census: SurvivalCensus, indent: str = "") -> str:
    """A compact multi-line text block for the CLI."""
    lines: List[str] = [
        f"{indent}faults injected   {census.faults_injected}"
        f"  (repaired {census.faults_repaired})",
        f"{indent}thermal trips     {census.trips}"
        f"  (cleared {census.trip_clears})",
        f"{indent}hosts shed        {census.hosts_shed}"
        f"  (restored {census.hosts_restored})",
        f"{indent}host-hours shed   {census.host_hours_shed:.1f}",
        f"{indent}excursion minutes {census.excursion_minutes:.0f}",
        f"{indent}hosts lost        {census.hosts_lost}",
    ]
    return "\n".join(lines)


def survival_from_json(data: Optional[Mapping[str, Any]]) -> Optional[SurvivalCensus]:
    """Decode an optional census dict (None passes through)."""
    if data is None:
        return None
    return SurvivalCensus.from_mapping(data)
