"""Census evolution over the campaign.

The paper freezes its numbers at one writing date; a longer campaign (or
a reviewer) wants the *trajectory*: how the failure rate, the wrong-hash
census, and the run count grow week by week.  :func:`census_timeline`
replays the fault log and workload record at a fixed cadence and returns
one :class:`~repro.core.results.SnapshotCensus`-like point per period.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.failures import census_from_events
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # avoid a core <-> analysis import cycle
    from repro.core.results import ExperimentResults
from repro.sim.clock import DAY


@dataclass(frozen=True)
class CensusPoint:
    """The cumulative census as of one instant.

    ``observed_fraction`` is the cumulative share of expected host
    observations the monitoring rounds actually pulled by this time --
    1.0 for a perfectly-watched campaign, lower when SSH timeouts, dead
    switches, or degraded rounds left gaps.
    """

    time: float
    hosts_installed: int
    hosts_failed: int
    failure_events: int
    wrong_hashes: int
    runs: int
    observed_fraction: float = 1.0

    @property
    def failure_rate_percent(self) -> float:
        """Cumulative failed-host rate over installed hosts."""
        if self.hosts_installed == 0:
            return 0.0
        return 100.0 * self.hosts_failed / self.hosts_installed


def census_timeline(
    results: "ExperimentResults", period_days: float = 7.0
) -> List[CensusPoint]:
    """Cumulative censuses at a fixed cadence across the campaign.

    Installed-host counts grow as the staged installs land; failures and
    wrong hashes accumulate from the fault log and workload results.
    """
    if period_days <= 0:
        raise ValueError("period must be positive")
    clock = results.clock
    start = clock.to_seconds(results.config.test_start)
    install_times = {
        plan.host_id: clock.to_seconds(plan.install_date)
        for plan in results.config.host_plans
        if plan.install_date is not None
    }
    wrong_times = sorted(r.time for r in results.ledger.wrong_hash_results)
    round_ticks = sorted(
        (
            r.time,
            len(r.collected_host_ids),
            len(r.collected_host_ids)
            + len(r.unreachable_host_ids)
            + len(r.down_host_ids)
            + len(getattr(r, "degraded_host_ids", ())),
        )
        for r in results.monitoring.rounds
    )
    points: List[CensusPoint] = []
    ticks = []
    t = start + period_days * DAY
    while t <= results.end_time + 1e-9:
        ticks.append(t)
        t += period_days * DAY
    # Always close with the campaign end so the last point matches the
    # final ledger/census exactly.
    if not ticks or ticks[-1] < results.end_time - 1e-9:
        ticks.append(results.end_time)
    for t in ticks:
        installed = [hid for hid, when in install_times.items() if when <= t]
        events = [e for e in results.fault_log.events if e.time <= t]
        census = census_from_events("cumulative", installed, events)
        wrong = sum(1 for w in wrong_times if w <= t)
        runs = _runs_until(results, t)
        observed = sum(obs for when, obs, _ in round_ticks if when <= t)
        expected = sum(exp for when, _, exp in round_ticks if when <= t)
        points.append(
            CensusPoint(
                time=t,
                hosts_installed=len(installed),
                hosts_failed=census.hosts_failed,
                failure_events=len(census.failure_events),
                wrong_hashes=wrong,
                runs=runs,
                observed_fraction=observed / expected if expected else 1.0,
            )
        )
    return points


def _runs_until(results: "ExperimentResults", t: float) -> int:
    """Approximate cumulative run count at ``t`` from install times.

    Hosts complete ~one cycle per 10 minutes while running; downtime is
    second-order for a trajectory plot, so the estimate uses install-to-t
    exposure capped at each host's recorded total.
    """
    clock = results.clock
    total = 0
    for plan in results.config.host_plans:
        if plan.install_date is None:
            continue
        installed_at = clock.to_seconds(plan.install_date)
        if t <= installed_at:
            continue
        estimate = int((t - installed_at) / 600.0)
        recorded = results.ledger.runs_per_host.get(plan.host_id, 0)
        total += min(estimate, recorded)
    return total


def describe_timeline(points: Sequence[CensusPoint], clock) -> str:
    """Weekly table of the censuses."""
    lines = [
        f"{'date':<12}{'hosts':>7}{'failed':>8}{'rate':>8}{'wrong':>7}{'runs':>9}"
        f"{'observed':>10}"
    ]
    for point in points:
        lines.append(
            f"{clock.format(point.time)[:10]:<12}{point.hosts_installed:>7}"
            f"{point.hosts_failed:>8}{point.failure_rate_percent:>7.1f}%"
            f"{point.wrong_hashes:>7}{point.runs:>9}"
            f"{100.0 * point.observed_fraction:>9.1f}%"
        )
    return "\n".join(lines)
