"""The free-cooling atlas: multi-site economics at sweep scale.

The paper's closing claim is geographic -- free cooling "can be
extended to most parts of the globe."  The atlas makes that claim an
artifact: sample hundreds of synthetic sites
(:mod:`repro.climate.synthesis`), score each one's free-cooling
feasibility and economics (:mod:`repro.analysis.freecooling`,
:mod:`repro.analysis.economics`) on the runner's fault-tolerant task
plane (:func:`repro.runner.pool.run_tasks`), and rank them into one
deterministic feasibility table.

- :mod:`repro.atlas.records` -- the picklable per-site result,
- :mod:`repro.atlas.sweep` -- specs, the pool worker, and the driver,
- :mod:`repro.atlas.table` -- the ranked fixed-width table.

Everything is a pure function of ``(n sites, master seed, scoring
policy)``: the same invocation produces a byte-identical table whether
it ran serially, on eight workers, or was killed halfway and resumed
from the cache.
"""

from repro.atlas.records import ATLAS_SCHEMA, SiteRecord, site_record_from_json_dict
from repro.atlas.sweep import (
    RISK_STRESS_DAYS,
    RISK_STRESS_HOSTS,
    RISK_STRESS_PLAN,
    RISK_STRESS_POLICY,
    SITE_RECORD_CODEC,
    AtlasSpec,
    execute_site_attempt,
    risk_specs,
    run_atlas,
    specs_for_sites,
)
from repro.atlas.table import rank_records, render_atlas_table

__all__ = [
    "ATLAS_SCHEMA",
    "AtlasSpec",
    "RISK_STRESS_DAYS",
    "RISK_STRESS_HOSTS",
    "RISK_STRESS_PLAN",
    "RISK_STRESS_POLICY",
    "SITE_RECORD_CODEC",
    "SiteRecord",
    "execute_site_attempt",
    "rank_records",
    "render_atlas_table",
    "risk_specs",
    "run_atlas",
    "site_record_from_json_dict",
    "specs_for_sites",
]
