"""Portable per-site results of an atlas sweep.

A :class:`SiteRecord` is the atlas analogue of
:class:`~repro.runner.records.RunRecord`: plain picklable values that
cross process boundaries and live in the runner's on-disk cache.  Each
one distils a site's assessment and economics into the columns the
ranked feasibility table prints -- free-cooling fraction, PUE with and
without the economizer, annual energy and dollar savings, and the
failure-risk proxy (intake hours above the ceiling).

``elapsed_s`` is wall-clock bookkeeping, excluded from equality, so a
cached record compares equal to the fresh computation it memoises --
the property the atlas's kill-and-resume byte-identity test rests on.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

#: Bump when the record layout changes; stale cache entries are evicted.
ATLAS_SCHEMA = 2


@dataclass(frozen=True)
class SiteRecord:
    """The portable summary of one scored atlas site."""

    schema: int
    site: str
    spec_digest: str
    seed: int
    latitude_deg: float
    intake_limit_c: float
    hours_total: int
    hours_free: int
    outside_min_c: float
    outside_max_c: float
    pue_baseline: float
    pue_economizer: float
    electricity_price_usd_per_kwh: float
    savings_kwh_per_year: float
    savings_usd_per_year: float
    savings_fraction: float
    #: Survival census of the --risk stress campaign (a plain
    #: ``SurvivalCensus.to_json_dict()`` mapping), ``None`` when the
    #: site was scored without a stress run.
    survival: Optional[Dict[str, Any]] = None
    elapsed_s: float = field(compare=False, default=0.0)

    def __post_init__(self) -> None:
        if self.hours_total <= 0:
            raise ValueError("a site record needs at least one scored hour")
        if not 0 <= self.hours_free <= self.hours_total:
            raise ValueError("free hours must lie within [0, hours_total]")

    @property
    def free_fraction(self) -> float:
        """Fraction of the year outside air alone carries the site."""
        return self.hours_free / self.hours_total

    @property
    def hours_above_limit(self) -> int:
        """The failure-risk proxy: hours the intake ceiling is exceeded."""
        return self.hours_total - self.hours_free

    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form for the runner cache."""
        return dataclasses.asdict(self)


def site_record_from_json_dict(data: Dict[str, Any]) -> SiteRecord:
    """Rebuild a record from :meth:`SiteRecord.to_json_dict` output.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed data,
    which is exactly what quarantines a poisoned cache entry.
    """
    return SiteRecord(**data)
