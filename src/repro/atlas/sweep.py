"""The atlas sweep: hundreds of sites through the runner's task plane.

Scoring one site is cheap (a year of hourly weather plus arithmetic);
scoring hundreds deserves the same treatment as the seed sweep -- worker
pools, retries, incremental caching, progress events.  An
:class:`AtlasSpec` is the unit of work, :func:`execute_site_attempt` is
the picklable worker, and :func:`run_atlas` drives them through
:func:`repro.runner.pool.run_tasks` with a :class:`SiteRecord` codec.

Resumability here is *cache-based*: every scored site is written to the
cache the moment it lands, so a killed sweep rerun with the same cache
directory serves the finished sites as hits and only computes the rest
-- and because each record is a pure function of its spec, the final
ranked table is byte-identical to an uninterrupted run's.  (Campaign
checkpoints would be overkill for seconds-long tasks; the checkpoint
fields a resumable sweep threads into :class:`WorkItem` are simply
ignored by the worker.)
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.economics import economics_for
from repro.analysis.freecooling import (
    DEFAULT_APPROACH_C,
    DEFAULT_INTAKE_LIMIT_C,
    assess_site,
)
from repro.atlas.records import (
    ATLAS_SCHEMA,
    SiteRecord,
    site_record_from_json_dict,
)
from repro.climate.profiles import ClimateProfile
from repro.climate.synthesis import sample_sites
from repro.runner.policy import RetryPolicy
from repro.runner.pool import SweepResult, TaskCodec, WorkItem, run_tasks
from repro.runner.records import _canonicalise
from repro.sim.rng import RngStreams

#: The stock stress recipe behind ``repro atlas --risk``: a short
#: fleet campaign under a fixed plant-fault plan, identical for every
#: site so the survival column compares like with like.  The census is
#: a pure function of the spec (site weather seed + these constants),
#: which is what keeps serial and ``--jobs N`` sweeps byte-identical.
RISK_STRESS_HOSTS = 76
RISK_STRESS_DAYS = 8.0
RISK_STRESS_PLAN = (
    "crac:outage@day1,repair=12h; "
    "intake:blockage@day2,repair=18h,severity=1.0; "
    "feed:drop@day4,repair=6h,feed=0"
)
RISK_STRESS_POLICY = "trip=32,clear=27,shed=0.5+1.0,hold=1h,cooldown=6h"


@dataclass(frozen=True)
class AtlasSpec:
    """One unit of atlas work: a site profile plus its scoring policy.

    Carries the full :class:`ClimateProfile` (not just synthesis knobs),
    so synthetic, stock, and CSV-imported sites all ride the same spec.
    ``seed`` drives the site's weather draw; :func:`specs_for_sites`
    derives it per site from the master seed, so no two sites share an
    anomaly sequence.
    """

    profile: ClimateProfile
    electricity_price_usd_per_kwh: float
    intake_limit_c: float = DEFAULT_INTAKE_LIMIT_C
    approach_c: float = DEFAULT_APPROACH_C
    seed: int = 0
    #: Simulated days of the --risk stress campaign; 0 skips the stress
    #: run and leaves :attr:`SiteRecord.survival` as ``None``.
    risk_days: float = 0.0

    def __post_init__(self) -> None:
        if self.electricity_price_usd_per_kwh <= 0:
            raise ValueError("electricity price must be positive")

    @property
    def label(self) -> str:
        """Progress/report name (the scheduler's duck-typed surface)."""
        return self.profile.name

    def spec_digest(self) -> str:
        """Stable sha256 over every field that decides the record."""
        canonical = json.dumps(
            _canonicalise(self), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def cache_key(self) -> str:
        """Filename-safe memoisation key for the runner cache."""
        safe_name = "".join(
            ch if ch.isalnum() or ch == "-" else "-" for ch in self.profile.name
        )[:40]
        return f"atlas-{safe_name}-{self.spec_digest()[:16]}"


#: Cache codec for :class:`SiteRecord` entries.  Validation pins the
#: schema and the spec digest, so an entry scored under different knobs
#: (or an older layout) is evicted rather than served.
SITE_RECORD_CODEC = TaskCodec(
    encode=lambda record: record.to_json_dict(),
    decode=site_record_from_json_dict,
    validate=lambda spec, record: (
        record.schema == ATLAS_SCHEMA
        and record.spec_digest == spec.spec_digest()
    ),
)


def execute_site_attempt(item: WorkItem) -> SiteRecord:
    """Score one site (the picklable pool worker).

    Honours the scheduler's backoff contract; the checkpoint fields are
    ignored -- see the module docstring for why cache-based resume is
    the right granularity here.
    """
    if item.backoff_s > 0:
        time.sleep(item.backoff_s)
    spec: AtlasSpec = item.spec
    started = time.perf_counter()
    assessment = assess_site(
        spec.profile,
        intake_limit_c=spec.intake_limit_c,
        approach_c=spec.approach_c,
        seed=spec.seed,
    )
    economics = economics_for(
        assessment,
        electricity_price_usd_per_kwh=spec.electricity_price_usd_per_kwh,
    )
    survival = _stress_site(spec) if spec.risk_days > 0 else None
    return SiteRecord(
        schema=ATLAS_SCHEMA,
        site=assessment.site,
        spec_digest=spec.spec_digest(),
        seed=spec.seed,
        latitude_deg=spec.profile.latitude_deg,
        intake_limit_c=spec.intake_limit_c,
        hours_total=assessment.hours_total,
        hours_free=assessment.hours_free,
        outside_min_c=assessment.outside_min_c,
        outside_max_c=assessment.outside_max_c,
        pue_baseline=economics.pue_baseline,
        pue_economizer=economics.pue_economizer,
        electricity_price_usd_per_kwh=spec.electricity_price_usd_per_kwh,
        savings_kwh_per_year=economics.savings_kwh_per_year,
        savings_usd_per_year=economics.savings_usd_per_year,
        savings_fraction=economics.savings_fraction,
        survival=survival,
        elapsed_s=time.perf_counter() - started,
    )


def _stress_site(spec: AtlasSpec) -> Dict[str, object]:
    """The --risk stress run: the stock chaos recipe on site weather.

    Imports lazily so plain atlas sweeps never pay for the fleet
    machinery in their workers.
    """
    from repro.analysis.survival import SurvivalCensus
    from repro.core.config import ExperimentConfig
    from repro.core.fleetscale import FleetScaleCampaign
    from repro.plant.faults import PlantFaultPlan
    from repro.plant.trip import ThermalTripPolicy

    campaign = FleetScaleCampaign(
        RISK_STRESS_HOSTS,
        ExperimentConfig(seed=spec.seed, climate=spec.profile),
        plant_faults=PlantFaultPlan.parse(RISK_STRESS_PLAN),
        trip_policy=ThermalTripPolicy.parse(RISK_STRESS_POLICY),
    )
    campaign.run(spec.risk_days)
    return SurvivalCensus.from_campaign(campaign).to_json_dict()


def specs_for_sites(
    n: int,
    seed: int,
    intake_limit_c: float = DEFAULT_INTAKE_LIMIT_C,
    approach_c: float = DEFAULT_APPROACH_C,
    year: int = 2010,
) -> List[AtlasSpec]:
    """Specs for the first ``n`` synthetic sites of the seed's atlas.

    Each site's weather seed is forked from the master seed by site
    name (:meth:`~repro.sim.rng.RngStreams.fork_seed`), so the whole
    sweep is a pure function of ``(n, seed)`` and two sites never share
    an anomaly sequence.
    """
    streams = RngStreams(seed)
    return [
        AtlasSpec(
            profile=site.to_profile(),
            electricity_price_usd_per_kwh=site.electricity_price_usd_per_kwh,
            intake_limit_c=intake_limit_c,
            approach_c=approach_c,
            seed=streams.fork_seed(site.name),
        )
        for site in sample_sites(n, seed, year=year)
    ]


def risk_specs(
    specs: Sequence[AtlasSpec],
    sites: Sequence[str],
    days: float = RISK_STRESS_DAYS,
) -> List[AtlasSpec]:
    """Stress variants of the named sites' specs (input order kept).

    Each variant re-arms the base spec with ``risk_days``; its digest
    (and so its cache key) differs from the plain spec's, so scored
    stress records never collide with plain ones in the cache.
    """
    import dataclasses

    chosen = set(sites)
    return [
        dataclasses.replace(spec, risk_days=days)
        for spec in specs
        if spec.profile.name in chosen
    ]


def run_atlas(
    specs: Sequence[AtlasSpec],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    strict: bool = True,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> SweepResult:
    """Score every spec on the runner's task plane.

    With ``cache_dir`` set the sweep is resumable by construction:
    rerunning after a kill serves finished sites from the cache and
    computes only the remainder.  ``strict=False`` lets a poisoned site
    land in :attr:`SweepResult.failures` while the rest of the atlas
    completes.
    """
    return run_tasks(
        specs,
        execute_site_attempt,
        codec=SITE_RECORD_CODEC,
        jobs=jobs,
        cache_dir=cache_dir,
        policy=policy,
        strict=strict,
        progress=progress,
    )
