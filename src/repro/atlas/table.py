"""The ranked feasibility table -- the atlas's deliverable.

One fixed-width text table, best site first, with the columns an
operator shortlists on: free-cooling fraction, economizer PUE, annual
energy and dollar savings, and the failure-risk proxy (intake hours
above the ceiling).  The renderer consumes only the deterministic
fields of :class:`~repro.atlas.records.SiteRecord` (never
``elapsed_s``), so the same specs always render the same bytes -- the
CI smoke job diffs an interrupted-and-resumed sweep's table against an
uninterrupted one's.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.atlas.records import SiteRecord

_HEADER = (
    f"{'rank':>4}  {'site':<24} {'lat':>6} {'free%':>6} {'PUE':>5} "
    f"{'kWh/yr saved':>13} {'USD/yr saved':>13} {'hrs>limit':>9}"
)

#: Extra columns when any record carries a --risk survival census:
#: protective trips fired, host-hours of deliberate shed, and whether
#: the protective layer held (every shed host restored, every trip
#: cleared).
_RISK_HEADER = f" {'trips':>5} {'shed h-h':>8} {'survived':>8}"


def rank_records(records: Sequence[SiteRecord]) -> List[SiteRecord]:
    """Best site first, with a deterministic total order.

    Same convention as
    :func:`repro.analysis.freecooling.compare_sites`: free fraction
    decides, dollar savings breaks fraction ties (tariffs differ), and
    the site name settles exact ties independent of input order.
    """
    return sorted(
        records,
        key=lambda r: (-r.free_fraction, -r.savings_usd_per_year, r.site),
    )


def render_atlas_table(
    records: Sequence[SiteRecord], top: Optional[int] = None
) -> str:
    """The ranked feasibility table as fixed-width text.

    ``top`` truncates to the best N sites (the full ranking still
    decides who makes the cut); the truncation is noted in a trailing
    line so a clipped table never masquerades as the whole atlas.
    """
    if not records:
        raise ValueError("no site records to rank")
    ranked = rank_records(records)
    shown = ranked if top is None else ranked[:top]
    with_risk = any(r.survival is not None for r in ranked)
    header = _HEADER + _RISK_HEADER if with_risk else _HEADER
    lines = [header, "-" * len(header)]
    for rank, record in enumerate(shown, start=1):
        line = (
            f"{rank:>4}  {record.site:<24.24} {record.latitude_deg:>+6.1f} "
            f"{100.0 * record.free_fraction:>6.2f} "
            f"{record.pue_economizer:>5.3f} "
            f"{record.savings_kwh_per_year:>13,.0f} "
            f"{record.savings_usd_per_year:>13,.0f} "
            f"{record.hours_above_limit:>9}"
        )
        if with_risk:
            line += _render_risk_cells(record.survival)
        lines.append(line)
    if len(shown) < len(ranked):
        lines.append(f"... {len(ranked) - len(shown)} more site(s) not shown")
    return "\n".join(lines)


def _render_risk_cells(survival) -> str:
    """The three --risk cells; dashes for sites never stressed."""
    if survival is None:
        return f" {'-':>5} {'-':>8} {'-':>8}"
    from repro.analysis.survival import SurvivalCensus

    census = SurvivalCensus.from_mapping(survival)
    verdict = "yes" if census.survived() else "NO"
    return (
        f" {census.trips:>5} {census.host_hours_shed:>8.1f} {verdict:>8}"
    )
