"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``
    Run the experiment (optionally truncated) and print the summary or
    the full paper-style report.  ``--checkpoint-every D
    --checkpoint-dir DIR`` flushes a crash-safe campaign checkpoint
    every D simulated days; ``--resume FILE`` restores one and continues
    it -- the finished results are byte-identical to an uninterrupted
    run.
``figures``
    Run the campaign and render Figs. 3 and 4 as terminal charts, plus
    the Fig. 2 install timeline as text.
``pue``
    Print the Section 5 PUE arithmetic (no simulation needed).
``sites``
    The geographic-extension analysis: free-cooling feasibility for
    Helsinki, NE England, New Mexico, and Singapore.
``atlas``
    The claim at scale: sample N synthetic sites from one seed, score
    each one's free-cooling feasibility and economics on the runner's
    task plane, and print the ranked feasibility table::

        python -m repro atlas --sites 200 --seed 7 --jobs 4 --resumable

    The table is deterministic per ``(sites, seed)``: the same
    invocation is byte-identical at any job count, and with
    ``--resumable`` (or ``--cache-dir``) a killed sweep rerun with the
    same cache serves finished sites from disk and computes only the
    rest -- the final table matches an uninterrupted run exactly.
``export``
    Run the campaign and dump the instrument series, fault log, and
    metadata as CSV/TSV/JSON into a directory.
``sweep``
    Run the campaign under several master seeds -- optionally in
    parallel worker processes (``--jobs N``) and memoised on disk
    (``--cache-dir``; set ``--no-cache`` to disable) -- and print the
    aggregated census, e.g.::

        python -m repro sweep --seeds 7,11,13,17 --jobs 4 --until 2010-03-01

    ``--telemetry`` additionally collects metrics in every worker and
    prints the merged hot-label tallies.  Fault tolerance:
    ``--retries N`` re-runs a crashed or timed-out seed up to N extra
    times (deterministic exponential backoff), ``--timeout S`` bounds
    each attempt's wall clock (needs ``--jobs >= 2``), and
    ``--keep-going`` finishes the surviving seeds when one exhausts its
    retries, printing a failure table instead of aborting.
    ``--resumable`` checkpoints every attempt under the cache directory
    so a retried (crashed/preempted) seed resumes from its last flush
    instead of simulated t=0.
``telemetry``
    Run the campaign with the telemetry plane on and print the hot-label
    / slowest-span report (where simulated events and wall time go).
    ``--json`` prints the machine-readable twin; ``--hosts N`` profiles
    the vectorized fleet tick's phases instead of the paper campaign.
    ``run`` also accepts ``--telemetry-out FILE`` (metrics + spans as
    JSON) and ``--run-log FILE`` (one JSON line per campaign event).
``observe``
    The fleet observatory: run the vectorized cohort with per-pod series
    recording on and render the ASCII dashboard -- fleet-median
    sparklines per signal, a robust-z pod anomaly table, an optional
    per-pod drill-down chart, and the per-phase wall-time profile::

        python -m repro observe --hosts 1900 --until 2010-03-01 --pod 13

Live progress: ``run`` and ``observe`` accept ``--progress`` (JSONL
heartbeats on stderr) or ``--progress-out FILE``; ``sweep`` accepts
``--progress-out FILE`` for per-seed lifecycle events with an ETA.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import sys
from typing import List, Optional

from repro import Experiment, ExperimentConfig


def _parse_date(text: str) -> _dt.datetime:
    try:
        return _dt.datetime.strptime(text, "%Y-%m-%d")
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected YYYY-MM-DD, got {text!r}"
        ) from None


def _parse_jobs(text: str) -> int:
    try:
        jobs = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError("need at least one worker process")
    return jobs


def _parse_seeds(text: str) -> List[int]:
    try:
        seeds = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a comma-separated list of integers, got {text!r}"
        ) from None
    if not seeds:
        raise argparse.ArgumentTypeError("need at least one seed")
    return seeds


def _parse_retries(text: str) -> int:
    try:
        retries = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if retries < 0:
        raise argparse.ArgumentTypeError("retries cannot be negative")
    return retries


def _parse_timeout(text: str) -> float:
    try:
        timeout = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number of seconds, got {text!r}"
        ) from None
    if timeout <= 0:
        raise argparse.ArgumentTypeError("timeout must be positive")
    return timeout


def _parse_sites(text: str) -> int:
    try:
        sites = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if sites < 1:
        raise argparse.ArgumentTypeError("need at least one site")
    return sites


def _parse_confirm_rounds(text: str) -> int:
    try:
        rounds = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from None
    if rounds < 1:
        raise argparse.ArgumentTypeError("need at least one confirmation round")
    return rounds


def _parse_link_faults(text: str):
    from repro.monitoring.transport import LinkFaultPlan

    try:
        return LinkFaultPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_plant_faults(text: str):
    from repro.plant.faults import PlantFaultPlan

    try:
        return PlantFaultPlan.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_trip_policy(text: str):
    from repro.plant.trip import ThermalTripPolicy

    try:
        return ThermalTripPolicy.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _default_cache_dir() -> str:
    import os

    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "runs")


def _default_atlas_cache_dir() -> str:
    import os

    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return os.path.join(env, "atlas")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro", "atlas")


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument schema (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Running Servers around Zero Degrees'.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run the experiment and print results")
    run.add_argument("--seed", type=int, default=7, help="master seed")
    run.add_argument(
        "--until", type=_parse_date, default=None,
        help="truncate the campaign at this date (YYYY-MM-DD)",
    )
    run.add_argument(
        "--hosts", type=int, default=None, metavar="N",
        help="run the vectorized fleet-scale cohort with N hosts (pods of "
        "19 replicating the paper's vendor mix) instead of the per-event "
        "paper campaign; approximate batch mode, incompatible with "
        "checkpoint/monitoring flags",
    )
    run.add_argument(
        "--fleet-backend", choices=("columnar", "object"), default="columnar",
        help="host-state storage for the paper campaign: 'columnar' (numpy "
        "columns, the default) or 'object' (legacy per-host attributes); "
        "both produce byte-identical records",
    )
    run.add_argument(
        "--controller", default=None, metavar="NAME",
        help="closed-loop controller for the campaign: 'paper-operator' "
        "(the default; the historical R/I/B/F/D schedule), 'thermostat' "
        "(hysteresis flap/fan with min-dwell), or 'model-free' "
        "(Fliess-style intelligent-P fan duty); see 'repro control list'",
    )
    run.add_argument(
        "--report", action="store_true",
        help="print the full paper-style report instead of the summary",
    )
    run.add_argument(
        "--telemetry-out", default=None, metavar="FILE",
        help="collect metrics/spans during the run and write them as JSON",
    )
    run.add_argument(
        "--run-log", default=None, metavar="FILE",
        help="write one JSON line per campaign event (JSONL)",
    )
    run.add_argument(
        "--link-faults", type=_parse_link_faults, default=None, metavar="SPEC",
        help="inject transport faults into the monitoring rounds; SPEC is "
        "comma-separated clauses: 'storm:P[:seed=S][:action=A]...' for a "
        "seeded per-(host,round) storm, or 'HOST:ROUND:ACTION[:key=val]...' "
        "for an explicit fault (actions: ssh-timeout, partial, slow)",
    )
    run.add_argument(
        "--plant-faults", type=_parse_plant_faults, default=None, metavar="SPEC",
        help="inject cooling/power plant faults; SPEC is ';'-separated "
        "clauses: 'COMPONENT:EVENT@WHEN[,key=value...]' for a scheduled "
        "fault (components: fan, crac, intake, heater, feed; WHEN is "
        "'dayN' or a duration like 36h) or 'storm:COMPONENT:RATE[,...]' "
        "for a seeded per-day storm; works for both the paper campaign "
        "and the --hosts fleet cohort",
    )
    run.add_argument(
        "--trip-policy", type=_parse_trip_policy, default=None, metavar="SPEC",
        help="protective thermal-trip policy; SPEC is comma-separated "
        "key=value pairs (trip=, clear=, shed=F1+F2+.., hold=, cooldown=, "
        "flap=on|off); an empty SPEC arms the stock policy",
    )
    run.add_argument(
        "--confirm-rounds", type=_parse_confirm_rounds, default=1, metavar="N",
        help="consecutive failed rounds before a host outage is confirmed "
        "and the operator is involved (default: 1, the historical behaviour)",
    )
    run.add_argument(
        "--monitor-retries", type=_parse_retries, default=0, metavar="N",
        help="extra SSH attempts per host within a round (default: 0)",
    )
    run.add_argument(
        "--checkpoint-every", type=_parse_timeout, default=None, metavar="DAYS",
        help="flush a resumable campaign checkpoint every DAYS simulated days",
    )
    run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="directory for checkpoint files (needs --checkpoint-every)",
    )
    run.add_argument(
        "--resume", default=None, metavar="FILE",
        help="restore a checkpoint file and continue it to the horizon; "
        "the campaign's config and degraded-mode options ride in the file, "
        "so builder flags like --seed and --link-faults are ignored",
    )
    run.add_argument(
        "--progress", action="store_true",
        help="emit JSONL heartbeats (sim date, sim-days/s, ETA) on stderr "
        "while the run advances",
    )
    run.add_argument(
        "--progress-out", default=None, metavar="FILE",
        help="write the heartbeat JSONL to FILE instead of stderr",
    )

    figures = sub.add_parser("figures", help="render Figs. 1-4 in the terminal")
    figures.add_argument("--seed", type=int, default=7)
    figures.add_argument("--width", type=int, default=90)
    figures.add_argument(
        "--until", type=_parse_date, default=None,
        help="truncate the campaign at this date (YYYY-MM-DD)",
    )

    sub.add_parser("pue", help="the Section 5 PUE arithmetic")

    sites = sub.add_parser("sites", help="free-cooling feasibility by site")
    sites.add_argument(
        "--intake-limit", type=float, default=27.0,
        help="allowed server intake temperature ceiling (degC)",
    )
    sites.add_argument("--seed", type=int, default=0)

    atlas = sub.add_parser(
        "atlas",
        help="multi-site free-cooling economics: rank N synthetic sites",
    )
    atlas.add_argument(
        "--sites", type=_parse_sites, default=100, metavar="N",
        help="synthetic sites to sample and score (default: 100)",
    )
    atlas.add_argument(
        "--seed", type=int, default=7,
        help="master seed; site i of a seed's atlas is the same at any N",
    )
    atlas.add_argument(
        "--jobs", type=_parse_jobs, default=1,
        help="worker processes (1 = serial in this process)",
    )
    atlas.add_argument(
        "--intake-limit", type=float, default=27.0,
        help="allowed server intake temperature ceiling (degC)",
    )
    atlas.add_argument(
        "--top", type=int, default=None, metavar="N",
        help="print only the best N sites (ranking still covers all)",
    )
    atlas.add_argument(
        "--cache-dir", default=None,
        help="site-record cache directory (default with --resumable: "
        "$REPRO_CACHE_DIR/atlas or ~/.cache/repro/atlas)",
    )
    atlas.add_argument(
        "--resumable", action="store_true",
        help="cache every scored site as it lands, so a killed sweep "
        "rerun with the same cache resumes where it stopped and prints "
        "a byte-identical table",
    )
    atlas.add_argument(
        "--retries", type=_parse_retries, default=0, metavar="N",
        help="re-score a crashed site up to N extra times",
    )
    atlas.add_argument(
        "--keep-going", action="store_true",
        help="finish the surviving sites when one exhausts its retries "
        "and report the failure instead of aborting (exit code 1)",
    )
    atlas.add_argument(
        "--progress-out", default=None, metavar="FILE",
        help="write one JSONL line per site lifecycle event "
        "(cached/completed/retried/failed, with running totals and ETA)",
    )
    atlas.add_argument(
        "--risk", action="store_true",
        help="after ranking, stress the best sites (see --risk-sites) with "
        "a short fleet campaign under the stock plant-fault plan and add "
        "a survival-census column to the table",
    )
    atlas.add_argument(
        "--risk-sites", type=int, default=10, metavar="K",
        help="how many top-ranked sites get the --risk stress run "
        "(default: 10)",
    )

    export = sub.add_parser("export", help="dump a run to flat files")
    export.add_argument("directory", help="output directory")
    export.add_argument("--seed", type=int, default=7)
    export.add_argument(
        "--until", type=_parse_date, default=None,
        help="truncate the campaign at this date (YYYY-MM-DD)",
    )

    sweep = sub.add_parser(
        "sweep", help="run several seeds (optionally parallel) and aggregate"
    )
    sweep.add_argument(
        "--seeds", type=_parse_seeds, default=[7, 11, 13, 17],
        help="comma-separated master seeds (default: 7,11,13,17)",
    )
    sweep.add_argument(
        "--jobs", type=_parse_jobs, default=1,
        help="worker processes (1 = serial in this process)",
    )
    sweep.add_argument(
        "--until", type=_parse_date, default=None,
        help="truncate every campaign at this date (YYYY-MM-DD)",
    )
    sweep.add_argument(
        "--scenario", choices=sorted(_scenario_names()), default="paper",
        help="named scenario to sweep (default: paper)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="run-record cache directory (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/runs)",
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk record cache"
    )
    sweep.add_argument(
        "--telemetry", action="store_true",
        help="collect metrics in every worker and print the merged tallies",
    )
    sweep.add_argument(
        "--retries", type=_parse_retries, default=0, metavar="N",
        help="re-run a crashed or timed-out seed up to N extra times "
        "(deterministic exponential backoff between attempts)",
    )
    sweep.add_argument(
        "--timeout", type=_parse_timeout, default=None, metavar="SECONDS",
        help="wall-clock budget per attempt; enforced with --jobs >= 2",
    )
    sweep.add_argument(
        "--keep-going", action="store_true",
        help="when a seed exhausts its retries, finish the surviving seeds "
        "and report the failure instead of aborting (exit code 1)",
    )
    sweep.add_argument(
        "--resumable", action="store_true",
        help="flush campaign checkpoints under the cache directory so a "
        "retried attempt resumes from the dead attempt's last flush "
        "instead of simulated t=0 (needs the cache; pair with --retries)",
    )
    sweep.add_argument(
        "--checkpoint-every", type=_parse_timeout, default=None, metavar="DAYS",
        help="checkpoint cadence for --resumable in simulated days "
        "(default: 14)",
    )
    sweep.add_argument(
        "--progress-out", default=None, metavar="FILE",
        help="write one JSONL line per seed lifecycle event "
        "(cached/completed/retried/failed, with running totals and ETA)",
    )

    telemetry = sub.add_parser(
        "telemetry", help="run with telemetry on and print the hot-label report"
    )
    telemetry.add_argument("--seed", type=int, default=7, help="master seed")
    telemetry.add_argument(
        "--until", type=_parse_date, default=None,
        help="truncate the campaign at this date (YYYY-MM-DD)",
    )
    telemetry.add_argument(
        "--top", type=int, default=10,
        help="rows per report section (default: 10)",
    )
    telemetry.add_argument(
        "--prometheus", action="store_true",
        help="print the Prometheus text exposition instead of the report",
    )
    telemetry.add_argument(
        "--json", action="store_true",
        help="print the machine-readable report (repro.telemetry.report"
        ".report_json) instead of the text report",
    )
    telemetry.add_argument(
        "--hosts", type=int, default=None, metavar="N",
        help="profile the vectorized fleet-scale cohort with N hosts "
        "(per-phase frame spans) instead of the per-event paper campaign",
    )

    observe = sub.add_parser(
        "observe",
        help="fleet observatory: per-pod series dashboard with anomaly flags",
    )
    observe.add_argument(
        "--hosts", type=int, default=1900, metavar="N",
        help="fleet size in hosts, grouped into pods of 19 (default: 1900)",
    )
    observe.add_argument("--seed", type=int, default=7, help="master seed")
    observe.add_argument(
        "--until", type=_parse_date, default=None,
        help="truncate the campaign at this date (YYYY-MM-DD)",
    )
    observe.add_argument(
        "--pod", type=int, default=None, metavar="P",
        help="also chart pod P against the fleet median (see --signal)",
    )
    observe.add_argument(
        "--signal", default="tent_air_c",
        help="signal for the --pod drill-down chart (default: tent_air_c)",
    )
    observe.add_argument(
        "--capacity", type=int, default=512, metavar="N",
        help="ring-buffer slots per series; the recorder halves resolution "
        "instead of growing past this (default: 512)",
    )
    observe.add_argument(
        "--width", type=int, default=60, help="chart width in columns"
    )
    observe.add_argument(
        "--top", type=int, default=5,
        help="rows in the pod anomaly table (default: 5)",
    )
    observe.add_argument(
        "--z-threshold", type=float, default=None, metavar="Z",
        help="robust |z| for a pod anomaly flag (default: 3.5)",
    )
    observe.add_argument(
        "--plant-faults", type=_parse_plant_faults, default=None, metavar="SPEC",
        help="inject cooling/power plant faults into the observed fleet "
        "(same grammar as 'run --plant-faults'); the dashboard gains a "
        "shed-hosts row and an incident log",
    )
    observe.add_argument(
        "--trip-policy", type=_parse_trip_policy, default=None, metavar="SPEC",
        help="protective thermal-trip policy for the observed fleet "
        "(same grammar as 'run --trip-policy')",
    )
    observe.add_argument(
        "--progress", action="store_true",
        help="emit JSONL heartbeats on stderr while the run advances",
    )
    observe.add_argument(
        "--progress-out", default=None, metavar="FILE",
        help="write the heartbeat JSONL to FILE instead of stderr",
    )

    scenarios = sub.add_parser(
        "scenarios", help="list the canned scenarios and controllers"
    )
    scenarios.add_argument(
        "--list", action="store_true",
        help="print the registries (the default action)",
    )

    control = sub.add_parser(
        "control", help="closed-loop controllers: list them or compare them"
    )
    control_action = control.add_subparsers(dest="control_command", required=True)
    control_action.add_parser("list", help="print the controller registry")
    compare = control_action.add_parser(
        "compare",
        help="score controllers on energy / failure census / SLA per climate",
    )
    compare.add_argument(
        "--controllers", default="paper-operator,thermostat,model-free",
        metavar="A,B,..", help="comma-separated controller names",
    )
    compare.add_argument(
        "--climates", default="helsinki,harsher-winter",
        metavar="A,B,..", help="comma-separated climate names",
    )
    compare.add_argument("--seed", type=int, default=7, help="master seed")
    compare.add_argument(
        "--until", type=_parse_date, default=None,
        help="truncate each campaign at this date (YYYY-MM-DD)",
    )
    return parser


def _scenario_names() -> List[str]:
    from repro.core.scenarios import SCENARIOS

    return list(SCENARIOS)


def _checkpoint_kwargs(args: argparse.Namespace) -> dict:
    from repro.sim.clock import DAY

    if args.checkpoint_every is None:
        if args.checkpoint_dir:
            raise SystemExit("error: --checkpoint-dir needs --checkpoint-every")
        return {}
    return {
        "checkpoint_every": args.checkpoint_every * DAY,
        "checkpoint_dir": args.checkpoint_dir,
    }


def _make_progress(args: argparse.Namespace, **kwargs):
    """A :class:`ProgressMeter` per the --progress/--progress-out flags."""
    if not (getattr(args, "progress", False) or args.progress_out):
        return None
    from repro.telemetry.progress import ProgressMeter

    if args.progress_out:
        return ProgressMeter.open(args.progress_out, **kwargs)
    return ProgressMeter(sys.stderr, **kwargs)


def _cmd_run_resume(args: argparse.Namespace) -> int:
    from repro.core.builder import Campaign
    from repro.state.protocol import StateError

    if args.progress or args.progress_out:
        print(
            "error: --progress/--progress-out cannot hook a resumed "
            "campaign; re-run without them",
            file=sys.stderr,
        )
        return 2

    try:
        campaign, results = Campaign.resume(
            args.resume, until=args.until, **_checkpoint_kwargs(args)
        )
    except StateError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.report:
        from repro.core.reporting import full_report

        print(full_report(results))
    else:
        print(results.summary())
    if campaign.plant is not None:
        from repro.analysis.survival import SurvivalCensus, render_survival

        print("survival census:")
        print(render_survival(SurvivalCensus.from_campaign(campaign), indent="  "))
    print(f"resumed from {args.resume}")
    for path in campaign.checkpoints_written:
        print(f"checkpoint -> {path}")
    return 0


def _fleet_sample(campaign, telemetry):
    """Heartbeat extras for a fleet run: failure count + hottest phase."""

    def sample():
        summary = campaign.summary()
        extra = {
            "failures": summary["transient_failures"]
            + summary["storage_failures"],
            "hosts_running": summary["running"],
        }
        if telemetry is not None:
            labels = [
                label
                for label in telemetry.spans.labels()
                if label.startswith("fleetscale.")
            ]
            if labels:
                extra["hottest_span"] = max(
                    labels, key=lambda l: telemetry.spans.stats(l).total_s
                )
        return extra

    return sample


def _cmd_run_fleetscale(args: argparse.Namespace) -> int:
    import time

    from repro.core.fleetscale import FleetScaleCampaign

    incompatible = [
        name
        for name, value in (
            ("--resume", args.resume),
            ("--link-faults", args.link_faults),
            ("--checkpoint-every", args.checkpoint_every),
            ("--checkpoint-dir", args.checkpoint_dir),
            ("--run-log", args.run_log),
            ("--report", args.report or None),
            ("--controller", args.controller),
        )
        if value
    ]
    if incompatible:
        print(
            f"error: --hosts is a batch cohort mode; {', '.join(incompatible)} "
            "only apply to the per-event paper campaign",
            file=sys.stderr,
        )
        return 2
    config = ExperimentConfig(seed=args.seed)
    until = args.until if args.until is not None else config.end_date
    days = (until - config.test_start).total_seconds() / 86_400.0
    if days <= 0:
        print("error: --until precedes the campaign start", file=sys.stderr)
        return 2
    telemetry = None
    if args.telemetry_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
    campaign = FleetScaleCampaign(
        args.hosts,
        config,
        telemetry=telemetry,
        plant_faults=args.plant_faults,
        trip_policy=args.trip_policy,
    )
    progress = _make_progress(
        args,
        source="fleet",
        clock=campaign.clock,
        sim_end_s=campaign.clock.to_seconds(until),
        sample=_fleet_sample(campaign, telemetry),
    )
    campaign.progress = progress
    wall_start = time.perf_counter()
    try:
        campaign.run(days)
    finally:
        if progress is not None:
            progress.finish(campaign.sim.now)
            progress.close()
    wall_s = time.perf_counter() - wall_start
    print(campaign.format_summary())
    if campaign.plant is not None:
        from repro.analysis.survival import SurvivalCensus, render_survival

        census = SurvivalCensus.from_campaign(campaign)
        print("survival census:")
        print(render_survival(census, indent="  "))
    simulated_days = campaign.summary()["simulated_s"] / 86_400.0
    print(
        f"wall: {wall_s:.2f}s for {simulated_days:.1f} sim-days "
        f"({wall_s / max(simulated_days, 1e-9):.4f} s/sim-day)"
    )
    if telemetry is not None:
        import json

        with open(args.telemetry_out, "w", encoding="utf-8") as fh:
            json.dump(telemetry.to_json_dict(), fh, indent=2, sort_keys=True)
        print(f"telemetry -> {args.telemetry_out}")
    if args.progress_out and progress is not None:
        print(f"progress  -> {args.progress_out} ({progress.lines_emitted} heartbeats)")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core.builder import CampaignBuilder

    if args.hosts is not None:
        return _cmd_run_fleetscale(args)
    if args.resume:
        return _cmd_run_resume(args)
    builder = CampaignBuilder(ExperimentConfig(seed=args.seed))
    builder.with_fleet_backend(args.fleet_backend)
    if args.controller is not None:
        try:
            builder.with_controller(args.controller)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    degraded = args.link_faults is not None or args.confirm_rounds > 1 or args.monitor_retries
    if args.link_faults is not None:
        builder.with_link_faults(args.link_faults)
    if args.plant_faults is not None:
        builder.with_plant_faults(args.plant_faults)
    if args.trip_policy is not None:
        builder.with_trip_policy(args.trip_policy)
    if degraded:
        from repro.monitoring.health import HealthPolicy
        from repro.runner.policy import RetryPolicy

        builder.with_health_policy(
            HealthPolicy(
                confirm_rounds=args.confirm_rounds,
                retry=RetryPolicy(max_attempts=args.monitor_retries + 1),
            )
        )
    telemetry = None
    if args.telemetry_out:
        from repro.telemetry import Telemetry

        telemetry = Telemetry()
        builder.with_telemetry(telemetry)
    run_log = None
    if args.run_log:
        from repro.telemetry import JsonlRunLog

        run_log = JsonlRunLog.open(args.run_log)
        builder.with_subscriber(run_log.subscribe)
    campaign = builder.build()
    end_date = args.until if args.until is not None else campaign.config.end_date

    def sample():
        extra = {"failures": len(campaign.fault_log.events)}
        if telemetry is not None:
            labels = telemetry.spans.labels()
            if labels:
                extra["hottest_span"] = max(
                    labels, key=lambda l: telemetry.spans.stats(l).total_s
                )
        return extra

    progress = _make_progress(
        args,
        source="run",
        clock=campaign.clock,
        sim_end_s=campaign.clock.to_seconds(end_date),
        sample=sample,
    )
    if progress is not None:
        campaign.sim.on_event = progress.on_event
    try:
        results = campaign.run(until=args.until, **_checkpoint_kwargs(args))
    finally:
        if run_log is not None:
            run_log.close()
        if progress is not None:
            progress.finish(campaign.sim.now)
            progress.close()
    if args.report:
        from repro.core.reporting import full_report

        print(full_report(results))
    else:
        print(results.summary())
    if degraded:
        mon = results.monitoring
        print(
            "degraded-mode: "
            f"{mon.retries_total} retries, "
            f"{mon.ssh_timeouts_total} ssh timeouts, "
            f"{mon.partial_transfers_total} partial transfers, "
            f"{mon.slow_sessions_total} slow sessions, "
            f"{mon.false_alarms_suppressed} false alarms suppressed"
        )
    if campaign.plant is not None:
        from repro.analysis.survival import SurvivalCensus, render_survival

        print("survival census:")
        print(render_survival(SurvivalCensus.from_campaign(campaign), indent="  "))
    if telemetry is not None:
        import json

        with open(args.telemetry_out, "w", encoding="utf-8") as fh:
            json.dump(telemetry.to_json_dict(), fh, indent=2, sort_keys=True)
        print(f"telemetry -> {args.telemetry_out}")
    if run_log is not None:
        print(f"run log   -> {args.run_log} ({run_log.lines_written} events)")
    if args.progress_out and progress is not None:
        print(f"progress  -> {args.progress_out} ({progress.lines_emitted} heartbeats)")
    for path in campaign.checkpoints_written:
        print(f"checkpoint -> {path}")
    return 0


def _cmd_telemetry(args: argparse.Namespace) -> int:
    from repro.telemetry import Telemetry
    from repro.telemetry.report import render_report, report_json

    if args.prometheus and args.json:
        print("error: pick one of --prometheus / --json", file=sys.stderr)
        return 2
    telemetry = Telemetry()
    if args.hosts is not None:
        from repro.core.fleetscale import FleetScaleCampaign

        config = ExperimentConfig(seed=args.seed)
        until = args.until if args.until is not None else config.end_date
        days = (until - config.test_start).total_seconds() / 86_400.0
        if days <= 0:
            print("error: --until precedes the campaign start", file=sys.stderr)
            return 2
        FleetScaleCampaign(args.hosts, config, telemetry=telemetry).run(days)
    else:
        from repro.core.builder import CampaignBuilder

        builder = CampaignBuilder(ExperimentConfig(seed=args.seed))
        builder.with_telemetry(telemetry).build().run(until=args.until)
    if args.prometheus:
        print(telemetry.to_prometheus_text(), end="")
    elif args.json:
        import json

        print(json.dumps(report_json(telemetry, top=args.top), sort_keys=True))
    else:
        print(render_report(telemetry, top=args.top))
    return 0


def _cmd_observe(args: argparse.Namespace) -> int:
    from repro.analysis.observatory import (
        render_observatory,
        render_phase_profile,
        render_pod_drilldown,
    )
    from repro.analysis.outliers import DEFAULT_Z_THRESHOLD
    from repro.core.fleetscale import FleetScaleCampaign
    from repro.telemetry import Telemetry

    config = ExperimentConfig(seed=args.seed)
    until = args.until if args.until is not None else config.end_date
    days = (until - config.test_start).total_seconds() / 86_400.0
    if days <= 0:
        print("error: --until precedes the campaign start", file=sys.stderr)
        return 2
    z_threshold = (
        args.z_threshold if args.z_threshold is not None else DEFAULT_Z_THRESHOLD
    )
    telemetry = Telemetry()
    try:
        campaign = FleetScaleCampaign(
            args.hosts,
            config,
            record_series=True,
            series_capacity=args.capacity,
            telemetry=telemetry,
            plant_faults=args.plant_faults,
            trip_policy=args.trip_policy,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.pod is not None and not 0 <= args.pod < campaign.n_pods:
        print(
            f"error: --pod must be in [0, {campaign.n_pods}) for "
            f"{args.hosts} hosts",
            file=sys.stderr,
        )
        return 2
    if args.pod is not None and args.signal not in campaign.series.signals:
        known = ", ".join(sorted(campaign.series.signals))
        print(
            f"error: unknown signal {args.signal!r} (one of: {known})",
            file=sys.stderr,
        )
        return 2
    progress = _make_progress(
        args,
        source="observe",
        clock=campaign.clock,
        sim_end_s=campaign.clock.to_seconds(until),
        sample=_fleet_sample(campaign, telemetry),
    )
    campaign.progress = progress
    try:
        campaign.run(days)
    finally:
        if progress is not None:
            progress.finish(campaign.sim.now)
            progress.close()
    print(
        render_observatory(
            campaign.series,
            clock=campaign.clock,
            width=args.width,
            z_threshold=z_threshold,
            top=args.top,
        )
    )
    if campaign.plant_events is not None:
        from repro.analysis.observatory import render_plant_incidents

        print()
        print(
            render_plant_incidents(
                campaign.plant_events, clock=campaign.clock, top=args.top
            )
        )
    if args.pod is not None:
        print()
        print(
            render_pod_drilldown(
                campaign.series, args.signal, args.pod, width=args.width
            )
        )
        if campaign.plant_events is not None:
            from repro.analysis.observatory import render_pod_incidents

            print()
            print(
                render_pod_incidents(
                    campaign.plant_events, args.pod, clock=campaign.clock
                )
            )
    print()
    print(render_phase_profile(telemetry, campaign.summary()["engine"]["frames"]))
    if args.progress_out and progress is not None:
        print(f"progress  -> {args.progress_out} ({progress.lines_emitted} heartbeats)")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.analysis.asciiplot import dual_series_chart, render_fig2_gantt
    from repro.analysis.figures import (
        fig1_schematic,
        fig2_timeline,
        fig3_temperatures,
        fig4_humidities,
    )

    results = Experiment(ExperimentConfig(seed=args.seed)).run(until=args.until)
    clock = results.clock

    print(fig1_schematic())
    print()

    timeline = fig2_timeline(results)
    print("Fig. 2 -- dates of when servers were installed (tent group)")
    print(render_fig2_gantt(timeline, clock, width=max(40, args.width - 20)))
    print()

    fig3 = fig3_temperatures(results)
    print("Fig. 3 -- temperatures outside (.) and inside (o) the tent; "
          "letters mark modifications")
    print(dual_series_chart(
        fig3.inside, fig3.outside, "o", ".",
        events=fig3.events, width=args.width, y_label="degC",
    ))
    print()

    fig4 = fig4_humidities(results)
    print("Fig. 4 -- relative humidities outside (.) and inside (o) the tent")
    print(dual_series_chart(
        fig4.inside, fig4.outside, "o", ".", width=args.width, y_label="% RH",
    ))
    return 0


def _cmd_pue(_args: argparse.Namespace) -> int:
    from repro.core.reporting import pue_report

    print(pue_report())
    return 0


def _cmd_sites(args: argparse.Namespace) -> int:
    from repro.analysis.freecooling import compare_sites
    from repro.climate.sites import ALL_SITES

    print(f"Free-cooling feasibility at a {args.intake_limit:.0f} degC intake ceiling")
    print("(the paper: surviving Finnish winter extends Intel's New Mexico and")
    print(" HP's North-East England results 'to most parts of the globe'):")
    for assessment in compare_sites(
        ALL_SITES, intake_limit_c=args.intake_limit, seed=args.seed
    ):
        print(f"  {assessment.describe()}")
    return 0


def _cmd_atlas(args: argparse.Namespace) -> int:
    from repro.atlas import render_atlas_table, run_atlas, specs_for_sites
    from repro.runner import RetryPolicy

    cache_dir = args.cache_dir
    if cache_dir is None and args.resumable:
        cache_dir = _default_atlas_cache_dir()
    policy = None
    if args.retries:
        policy = RetryPolicy(max_attempts=args.retries + 1)
    specs = specs_for_sites(
        args.sites, seed=args.seed, intake_limit_c=args.intake_limit
    )
    progress = None
    if args.progress_out:
        from repro.telemetry.progress import SweepProgress

        progress = SweepProgress.open(args.progress_out, total=len(specs))
    try:
        result = run_atlas(
            specs,
            jobs=args.jobs,
            cache_dir=cache_dir,
            policy=policy,
            strict=not args.keep_going,
            progress=progress.sink if progress is not None else None,
        )
    finally:
        if progress is not None:
            progress.close()
    records = list(result.records)
    risk_failures = []
    if args.risk and records:
        import dataclasses

        from repro.atlas import rank_records, risk_specs

        ranked = rank_records(records)
        chosen = [r.site for r in ranked[: args.risk_sites]]
        stress = run_atlas(
            risk_specs(specs, chosen),
            jobs=args.jobs,
            cache_dir=cache_dir,
            policy=policy,
            strict=not args.keep_going,
        )
        survival_by_site = {r.site: r.survival for r in stress.records}
        records = [
            dataclasses.replace(r, survival=survival_by_site[r.site])
            if r.site in survival_by_site
            else r
            for r in records
        ]
        risk_failures = list(stress.failures)
        print(
            f"risk stress: top {len(chosen)} site(s), "
            f"{stress.cache_hits} from cache, {stress.cache_misses} "
            f"computed in {stress.elapsed_s:.1f} s"
        )
    if records:
        print(
            f"Free-cooling atlas: {args.sites} sites, seed {args.seed}, "
            f"{args.intake_limit:.0f} degC intake ceiling"
        )
        print(render_atlas_table(records, top=args.top))
    else:
        print("no site survived the sweep")
    print(
        f"{len(result.records)} site(s), {result.cache_hits} from cache, "
        f"{result.cache_misses} computed in {result.elapsed_s:.1f} s "
        f"(jobs={args.jobs})"
    )
    if args.progress_out and progress is not None:
        print(f"progress -> {args.progress_out} ({progress.lines_emitted} events)")
    failures = list(result.failures) + risk_failures
    if failures:
        print()
        print(f"failures ({len(failures)}):")
        for failure in failures:
            print(f"  {failure.describe()}")
    return 1 if failures else 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.analysis.export import export_run

    results = Experiment(ExperimentConfig(seed=args.seed)).run(until=args.until)
    written = export_run(results, args.directory)
    for name in sorted(written):
        print(f"  {name:<22} -> {written[name]}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.scenarios import SCENARIOS
    from repro.runner import RetryPolicy, sweep_records

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir else _default_cache_dir()
    if args.resumable and cache_dir is None:
        print("error: --resumable needs the cache; drop --no-cache", file=sys.stderr)
        return 2
    policy = None
    if args.retries or args.timeout is not None:
        policy = RetryPolicy(max_attempts=args.retries + 1, timeout_s=args.timeout)
    checkpoint_every_s = None
    if args.checkpoint_every is not None:
        from repro.sim.clock import DAY

        checkpoint_every_s = args.checkpoint_every * DAY
    factory = SCENARIOS[args.scenario]
    progress = None
    if args.progress_out:
        from repro.telemetry.progress import SweepProgress

        progress = SweepProgress.open(args.progress_out, total=len(args.seeds))
    try:
        result = sweep_records(
            args.seeds,
            until=args.until,
            config_factory=lambda seed: factory(seed=seed),
            jobs=args.jobs,
            cache_dir=cache_dir,
            telemetry=args.telemetry,
            policy=policy,
            strict=not args.keep_going,
            resumable=args.resumable,
            checkpoint_every_s=checkpoint_every_s,
            progress=progress.sink if progress is not None else None,
        )
    finally:
        if progress is not None:
            progress.close()
    if result.records:
        print(result.summary.describe())
    else:
        print("no seed survived the sweep")
    fault_note = ""
    if result.retries or result.timeouts:
        fault_note = f", {result.retries} retried, {result.timeouts} timed out"
    if result.checkpoint_resumes:
        fault_note += f", {result.checkpoint_resumes} resumed from checkpoint"
    print(
        f"{len(result.records)} record(s), {result.cache_hits} from cache, "
        f"{result.cache_misses} computed in {result.elapsed_s:.1f} s "
        f"(jobs={args.jobs}, scenario={args.scenario}{fault_note})"
    )
    if args.progress_out and progress is not None:
        print(f"progress -> {args.progress_out} ({progress.lines_emitted} events)")
    if result.failures:
        print()
        print(f"failures ({len(result.failures)}):")
        for failure in result.failures:
            print(f"  {failure.describe()}")
    if args.telemetry:
        merged = result.merged_telemetry()
        if merged is not None:
            print()
            print("Merged telemetry (hot labels across all workers):")
            hottest = sorted(merged.span_counts, key=lambda kv: (-kv[1], kv[0]))[:10]
            width = max(len(label) for label, _ in hottest) if hottest else 0
            for label, count in hottest:
                print(f"  {label:<{width}}  {count}")
    return 1 if result.failures else 0


def _first_doc_line(obj) -> str:
    doc = (obj.__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


def _cmd_scenarios(_args: argparse.Namespace) -> int:
    from repro.control.controllers import CONTROLLERS, controller_doc
    from repro.core.scenarios import SCENARIOS

    print("scenarios (run with: repro sweep --scenario NAME):")
    width = max(len(name) for name in SCENARIOS)
    for name, factory in SCENARIOS.items():
        print(f"  {name:<{width}}  {_first_doc_line(factory)}")
    print()
    print("controllers (run with: repro run --controller NAME):")
    width = max(len(name) for name in CONTROLLERS)
    for name in sorted(CONTROLLERS):
        print(f"  {name:<{width}}  {controller_doc(name)}")
    return 0


def _cmd_control(args: argparse.Namespace) -> int:
    from repro.control.controllers import CONTROLLERS, controller_doc

    if args.control_command == "list":
        width = max(len(name) for name in CONTROLLERS)
        for name in sorted(CONTROLLERS):
            print(f"{name:<{width}}  {controller_doc(name)}")
        return 0

    from repro.analysis.scorecard import CLIMATES, render_scorecard, run_scorecard

    controllers = [c.strip() for c in args.controllers.split(",") if c.strip()]
    climates = [c.strip() for c in args.climates.split(",") if c.strip()]
    unknown = [c for c in controllers if c not in CONTROLLERS]
    unknown += [c for c in climates if c not in CLIMATES]
    if unknown:
        print(f"error: unknown name(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    scores = run_scorecard(
        controllers=controllers, climates=climates, seed=args.seed, until=args.until
    )
    print(
        f"controller scorecard  seed={args.seed}"
        + (f"  until={args.until:%Y-%m-%d}" if args.until else "")
    )
    print(render_scorecard(scores))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "figures": _cmd_figures,
    "pue": _cmd_pue,
    "sites": _cmd_sites,
    "atlas": _cmd_atlas,
    "export": _cmd_export,
    "sweep": _cmd_sweep,
    "telemetry": _cmd_telemetry,
    "observe": _cmd_observe,
    "scenarios": _cmd_scenarios,
    "control": _cmd_control,
}


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
