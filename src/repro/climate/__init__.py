"""Weather substrate: a synthetic Finnish winter and psychrometrics.

The paper's outside data came from the SMEAR III weather station next to the
Helsinki CS building; winter 2009-2010 reached -22 degC.  We replace the real
atmosphere with :class:`repro.climate.generator.WeatherGenerator`, a seeded
stochastic model calibrated so the paper's anchor conditions occur:

- the prototype weekend (Feb 12-15) averages about -9.2 degC with a minimum
  near -10.2 degC,
- a late-February cold snap reaches about -22 degC,
- spring warming through March-May, with outside relative humidity swinging
  widely (including the 80-90 %+ episodes the paper highlights).

:mod:`repro.climate.psychro` implements the Magnus-formula psychrometrics
(dewpoint, RH, absolute humidity, condensation margins) used throughout.
"""

from repro.climate.generator import WeatherGenerator, WeatherSample
from repro.climate.profiles import HELSINKI_2010, ClimateProfile
from repro.climate.psychro import (
    absolute_humidity,
    condensation_margin,
    dewpoint,
    relative_humidity_from_dewpoint,
    saturation_vapor_pressure,
)
from repro.climate.station import StationReading, WeatherStation
from repro.climate.synthesis import (
    SiteParameters,
    profile_from_csv,
    sample_sites,
    site_at_index,
)

__all__ = [
    "WeatherGenerator",
    "WeatherSample",
    "ClimateProfile",
    "HELSINKI_2010",
    "SiteParameters",
    "sample_sites",
    "site_at_index",
    "profile_from_csv",
    "WeatherStation",
    "StationReading",
    "saturation_vapor_pressure",
    "dewpoint",
    "relative_humidity_from_dewpoint",
    "absolute_humidity",
    "condensation_margin",
]
