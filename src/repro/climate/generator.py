"""Synthetic weather: the atmosphere the tent lives in.

The generator composes the outside temperature from four parts::

    temp(t) = seasonal_mean(t)            # profile anchors (Feb cold -> May warm)
            - cold_snap_pulses(t)         # scripted -22 degC episode etc.
            + synoptic_anomaly(t)         # multi-day AR(1) weather systems
            + diurnal_cycle(t)            # afternoon peak, damped by cloud
            + fast_noise(t)               # hour-scale jitter

Dewpoint is the temperature minus a positive, slowly varying depression
(small depressions = near-saturated air, the humid-Finnish-winter regime),
and relative humidity follows from the Magnus formula.  Wind and cloud are
independent AR(1) processes; solar irradiance combines astronomy (latitude,
day of year, hour) with cloud cover.

Everything is precomputed on an hourly grid and interpolated, so queries are
O(1), vectorisable, and bit-reproducible for a given ``(profile, seed)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.climate.profiles import ClimateProfile, HELSINKI_2010
from repro.climate.psychro import relative_humidity_from_dewpoint
from repro.sim.clock import DAY, HOUR, SimClock
from repro.sim.rng import RngStreams

ArrayLike = Union[float, np.ndarray]

#: Local solar hour of the diurnal temperature maximum.
_DIURNAL_PEAK_HOUR = 14.0
#: Correlation time of the fast temperature jitter.
_FAST_NOISE_CORR_HOURS = 2.0


@dataclass(frozen=True)
class WeatherSample:
    """Atmospheric state at one instant.

    Attributes are the quantities the paper's instruments observed:
    dry-bulb temperature, dewpoint, relative humidity, wind speed, solar
    irradiance, cloud fraction, and precipitation rate -- the last being
    what the tent (and the prototype's plastic boxes) exist to keep off
    the hardware.  ``snowing`` distinguishes snow from rain by the
    near-surface temperature.
    """

    time: float
    temp_c: float
    dewpoint_c: float
    rh_percent: float
    wind_ms: float
    solar_wm2: float
    cloud_fraction: float
    precip_mm_h: float = 0.0

    def __post_init__(self) -> None:
        if self.dewpoint_c > self.temp_c + 1e-6:
            raise ValueError("dewpoint cannot exceed dry-bulb temperature")
        if self.precip_mm_h < 0.0:
            raise ValueError("precipitation rate cannot be negative")

    @property
    def snowing(self) -> bool:
        """Frozen precipitation (what Helsinki delivers below ~+0.5 degC)."""
        return self.precip_mm_h > 0.0 and self.temp_c <= 0.5


def _ar1_series(
    rng: np.random.Generator, n: int, std: float, corr_steps: float
) -> np.ndarray:
    """Stationary AR(1) series of length ``n`` with marginal std ``std``."""
    if n <= 0:
        return np.zeros(0)
    rho = math.exp(-1.0 / max(corr_steps, 1e-9))
    innovation_std = std * math.sqrt(max(1.0 - rho * rho, 1e-12))
    x = np.empty(n)
    x[0] = rng.normal(0.0, std)
    shocks = rng.normal(0.0, innovation_std, size=n - 1) if n > 1 else np.zeros(0)
    for i in range(1, n):
        x[i] = rho * x[i - 1] + shocks[i - 1]
    return x


def solar_elevation_deg(latitude_deg: float, day_of_year: float, hour_of_day: float) -> float:
    """Solar elevation angle (degrees) by the standard declination formula."""
    decl = -23.44 * math.cos(2.0 * math.pi * (day_of_year + 10.0) / 365.0)
    hour_angle = 15.0 * (hour_of_day - 12.0)
    lat, dec, ha = map(math.radians, (latitude_deg, decl, hour_angle))
    sin_elev = math.sin(lat) * math.sin(dec) + math.cos(lat) * math.cos(dec) * math.cos(ha)
    return math.degrees(math.asin(max(-1.0, min(1.0, sin_elev))))


class WeatherGenerator:
    """Deterministic synthetic atmosphere for one campaign.

    Parameters
    ----------
    profile:
        Calibration (defaults to :data:`~repro.climate.profiles.HELSINKI_2010`).
    streams:
        RNG family; the generator uses streams prefixed ``climate.``.
    clock:
        Maps simulated seconds to calendar time.  The generator covers the
        profile's full anchor span.
    """

    def __init__(
        self,
        profile: ClimateProfile = HELSINKI_2010,
        streams: Optional[RngStreams] = None,
        clock: Optional[SimClock] = None,
    ) -> None:
        self.profile = profile
        self.clock = clock if clock is not None else SimClock()
        streams = streams if streams is not None else RngStreams(0)
        self._build_grid(streams)

    def __repr__(self) -> str:
        return (
            f"WeatherGenerator(profile={self.profile.name!r}, "
            f"span=[{self.profile.start:%Y-%m-%d} .. {self.profile.end:%Y-%m-%d}])"
        )

    # ------------------------------------------------------------------
    # Grid construction
    # ------------------------------------------------------------------
    def _build_grid(self, streams: RngStreams) -> None:
        p = self.profile
        t0 = self.clock.to_seconds(p.start)
        t1 = self.clock.to_seconds(p.end)
        n = int((t1 - t0) / HOUR) + 1
        self._grid_t = t0 + HOUR * np.arange(n)

        synoptic = _ar1_series(
            streams.stream("climate.synoptic"), n, p.synoptic_std_c, p.synoptic_corr_hours
        )
        fast = _ar1_series(
            streams.stream("climate.fast"), n, p.weather_noise_std_c, _FAST_NOISE_CORR_HOURS
        )
        cloud_raw = _ar1_series(streams.stream("climate.cloud"), n, 1.0, p.cloud_corr_hours)
        self._cloud = 1.0 / (1.0 + np.exp(-1.4 * cloud_raw + 0.5))  # biased cloudy

        wind_raw = _ar1_series(streams.stream("climate.wind"), n, 1.0, p.wind_corr_hours)
        self._wind = np.maximum(0.1, p.wind_mean_ms + p.wind_std_ms * wind_raw)

        depression_raw = _ar1_series(
            streams.stream("climate.dewpoint"), n, 1.0, p.synoptic_corr_hours
        )
        self._depression_slow = (
            p.dewpoint_depression_mean_c + p.dewpoint_depression_std_c * depression_raw
        )

        seasonal = np.array([p.seasonal_mean(self.clock.to_datetime(t)) for t in self._grid_t])
        snaps = np.zeros(n)
        for snap in p.cold_snaps:
            peak_t = self.clock.to_seconds(snap.peak)
            sigma_s = snap.sigma_days * DAY
            snaps -= snap.depth_c * np.exp(-0.5 * ((self._grid_t - peak_t) / sigma_s) ** 2)

        hours = np.array([self.clock.hour_of_day(t) for t in self._grid_t])
        days = np.array([self.clock.day_of_year(t) for t in self._grid_t])
        diurnal = (
            p.diurnal_amplitude_c
            * (1.0 - 0.7 * self._cloud)
            * np.cos(2.0 * math.pi * (hours - _DIURNAL_PEAK_HOUR) / 24.0)
        )

        self._temp = seasonal + snaps + synoptic + diurnal + fast

        elev = np.array(
            [
                solar_elevation_deg(p.latitude_deg, d, h)
                for d, h in zip(days, hours)
            ]
        )
        elev_factor = np.maximum(0.0, np.sin(np.radians(np.maximum(elev, 0.0))))
        self._solar = p.solar_noon_peak_wm2 * elev_factor * (1.0 - 0.82 * self._cloud)

        # Afternoon air dries out: the depression gains a daylight term,
        # which is what makes outside RH in Fig. 4 so much twitchier than
        # the tent's.
        diurnal_depression = p.diurnal_depression_c * elev_factor * (1.0 - 0.6 * self._cloud)
        self._depression = np.maximum(0.2, self._depression_slow + diurnal_depression)
        self._dewpoint = self._temp - self._depression

        # Precipitation falls from heavy overcast with near-saturated air:
        # an intensity process gated by cloud cover and dewpoint depression.
        precip_raw = _ar1_series(streams.stream("climate.precip"), n, 1.0, 18.0)
        wet_enough = (self._cloud > 0.72) & (self._depression < 2.5)
        intensity = np.maximum(0.0, 0.8 + 1.1 * precip_raw)
        self._precip = np.where(wet_enough, intensity, 0.0)

        # Scalar-query fast path state: the grid is uniform (hourly), so a
        # scalar lookup can index by division instead of searchsorted, and
        # the enclosures + station all sample the same instant each tick,
        # so the last full sample is memoised.
        self._t0f = float(self._grid_t[0])
        self._t1f = float(self._grid_t[-1])
        self._sample_cache_t: Optional[float] = None
        self._sample_cache: Optional[WeatherSample] = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def start_time(self) -> float:
        """Earliest queryable simulated time."""
        return float(self._grid_t[0])

    @property
    def end_time(self) -> float:
        """Latest queryable simulated time."""
        return float(self._grid_t[-1])

    def _check_range(self, t: np.ndarray) -> None:
        if np.any(t < self.start_time - 1e-6) or np.any(t > self.end_time + 1e-6):
            raise ValueError(
                f"time outside generated span "
                f"[{self.start_time:.0f}, {self.end_time:.0f}] s"
            )

    def temperature(self, time: ArrayLike) -> ArrayLike:
        """Outside dry-bulb temperature (degC) at ``time``."""
        return self._interp(time, self._temp)

    def dewpoint(self, time: ArrayLike) -> ArrayLike:
        """Outside dewpoint (degC) at ``time``."""
        return self._interp(time, self._dewpoint)

    def relative_humidity(self, time: ArrayLike) -> ArrayLike:
        """Outside relative humidity (%) at ``time``."""
        temp = self._interp(time, self._temp)
        dew = self._interp(time, self._dewpoint)
        return relative_humidity_from_dewpoint(temp, dew)

    def wind_speed(self, time: ArrayLike) -> ArrayLike:
        """Wind speed (m/s) at ``time``."""
        return self._interp(time, self._wind)

    def solar_irradiance(self, time: ArrayLike) -> ArrayLike:
        """Global solar irradiance on a horizontal surface (W/m^2)."""
        return self._interp(time, self._solar)

    def cloud_fraction(self, time: ArrayLike) -> ArrayLike:
        """Cloud cover fraction in ``[0, 1]``."""
        return self._interp(time, self._cloud)

    def precipitation(self, time: ArrayLike) -> ArrayLike:
        """Precipitation rate (mm/h water equivalent; snow below ~0 degC)."""
        return self._interp(time, self._precip)

    def sample(self, time: float) -> WeatherSample:
        """Full atmospheric state at one instant (memoised per instant).

        Every enclosure and the station sample the same tick time, so the
        last sample is cached; :class:`WeatherSample` is frozen, making
        the shared instance safe.
        """
        t = float(time)
        if t == self._sample_cache_t and self._sample_cache is not None:
            return self._sample_cache
        temp = float(self.temperature(t))
        dew = float(self.dewpoint(t))
        sample = WeatherSample(
            time=t,
            temp_c=temp,
            dewpoint_c=dew,
            rh_percent=float(relative_humidity_from_dewpoint(temp, dew)),
            wind_ms=float(self.wind_speed(t)),
            solar_wm2=float(self.solar_irradiance(t)),
            cloud_fraction=float(self.cloud_fraction(t)),
            precip_mm_h=float(self.precipitation(t)),
        )
        self._sample_cache_t = t
        self._sample_cache = sample
        return sample

    def series(self, times: Sequence[float]) -> "list[WeatherSample]":
        """Samples at each of ``times`` (convenience for analysis code)."""
        return [self.sample(t) for t in times]

    def _interp(self, time: ArrayLike, values: np.ndarray) -> ArrayLike:
        if isinstance(time, (float, int)):
            return self._interp_scalar(float(time), values)
        t = np.asarray(time, dtype=float)
        self._check_range(t)
        out = np.interp(t, self._grid_t, values)
        if np.isscalar(time):
            return float(out)
        return out

    def _interp_scalar(self, t: float, values: np.ndarray) -> float:
        """Scalar lerp on the uniform hourly grid.

        Bit-identical to ``np.interp`` (same slope/offset arithmetic on
        the same bracketing points) but O(1) with no array temporaries --
        this is the hottest call in the campaign tick.
        """
        if t < self._t0f - 1e-6 or t > self._t1f + 1e-6:
            raise ValueError(
                f"time outside generated span "
                f"[{self.start_time:.0f}, {self.end_time:.0f}] s"
            )
        if t <= self._t0f:
            return float(values[0])
        if t >= self._t1f:
            return float(values[-1])
        grid = self._grid_t
        last = grid.shape[0] - 2
        i = int((t - self._t0f) / HOUR)
        if i > last:
            i = last
        # Guard the division against float rounding at hour boundaries.
        while i > 0 and grid[i] > t:
            i -= 1
        while i < last and grid[i + 1] <= t:
            i += 1
        x_lo = grid[i]
        if t == x_lo:
            return float(values[i])
        slope = (values[i + 1] - values[i]) / (grid[i + 1] - x_lo)
        return float(slope * (t - x_lo) + values[i])
