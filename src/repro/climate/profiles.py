"""Climate calibration profiles.

A :class:`ClimateProfile` captures everything the weather generator needs to
imitate a location and season: a seasonal mean-temperature curve through
anchor dates, diurnal and synoptic variability, dewpoint-depression
statistics, wind and sunshine parameters, and any scripted cold snaps.

:data:`HELSINKI_2010` reproduces the conditions the paper reports: the
prototype weekend (Feb 12-15, 2010) averaging -9.2 degC with a -10.2 degC
minimum, a -22 degC episode in late February, and the spring warm-up through
May.  Values are calibrated against the figures and text of the paper plus
Finnish Meteorological Institute climatology for southern Finland.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class ColdSnap:
    """A scripted synoptic cold excursion.

    The generator subtracts a smooth Gaussian-in-time pulse of ``depth_c``
    degrees centred on ``peak`` with time scale ``sigma_days``.  Scripting
    the paper's -22 degC event (rather than waiting for the AR process to
    produce one) keeps every seed faithful to the narrative.
    """

    peak: _dt.datetime
    depth_c: float
    sigma_days: float = 1.2

    def __post_init__(self) -> None:
        if self.depth_c < 0:
            raise ValueError("ColdSnap.depth_c is a magnitude; it must be >= 0")
        if self.sigma_days <= 0:
            raise ValueError("ColdSnap.sigma_days must be positive")


@dataclass(frozen=True)
class ClimateProfile:
    """Parameter set for :class:`repro.climate.generator.WeatherGenerator`.

    Attributes
    ----------
    name:
        Human-readable profile name.
    anchors:
        ``(datetime, mean_temp_c)`` pairs the seasonal curve interpolates
        through (piecewise linear, clamped at the ends).
    diurnal_amplitude_c:
        Half peak-to-trough of the clear-sky daily temperature cycle.
        Cloud cover scales it down.
    synoptic_std_c:
        Standard deviation of the multi-day (synoptic) temperature
        anomaly process.
    synoptic_corr_hours:
        e-folding correlation time of the synoptic anomaly.
    weather_noise_std_c:
        Fast (hour-scale) temperature jitter standard deviation.
    dewpoint_depression_mean_c / dewpoint_depression_std_c:
        Statistics of (temperature - dewpoint); small depressions mean air
        near saturation, as in humid Finnish winters.
    diurnal_depression_c:
        Extra dewpoint depression at full daytime insolation: outdoor RH
        dips in the afternoon and recovers at night, which is the fast
        variation the paper's Fig. 4 shows for outside air.
    wind_mean_ms / wind_std_ms / wind_corr_hours:
        Log-normal-ish wind speed process parameters.
    cloud_corr_hours:
        Correlation time of the cloud-cover process in ``[0, 1]``.
    solar_noon_peak_wm2:
        Clear-sky solar irradiance at local noon at the season's midpoint;
        modulated by day length and cloud.
    latitude_deg:
        Site latitude (Helsinki ~ 60.2 N); drives day length.
    cold_snaps:
        Scripted excursions (see :class:`ColdSnap`).
    """

    name: str
    anchors: Sequence[Tuple[_dt.datetime, float]]
    diurnal_amplitude_c: float = 3.0
    synoptic_std_c: float = 3.5
    synoptic_corr_hours: float = 72.0
    weather_noise_std_c: float = 0.6
    dewpoint_depression_mean_c: float = 2.5
    dewpoint_depression_std_c: float = 1.8
    diurnal_depression_c: float = 3.0
    wind_mean_ms: float = 3.5
    wind_std_ms: float = 1.8
    wind_corr_hours: float = 12.0
    cloud_corr_hours: float = 36.0
    solar_noon_peak_wm2: float = 420.0
    latitude_deg: float = 60.2
    cold_snaps: Tuple[ColdSnap, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.anchors) < 2:
            raise ValueError("a ClimateProfile needs at least two anchor points")
        dates = [a[0] for a in self.anchors]
        if dates != sorted(dates):
            raise ValueError("anchor dates must be sorted ascending")
        if self.synoptic_corr_hours <= 0 or self.wind_corr_hours <= 0:
            raise ValueError("correlation times must be positive")

    @property
    def start(self) -> _dt.datetime:
        """First anchor date: the earliest instant the profile describes."""
        return self.anchors[0][0]

    @property
    def end(self) -> _dt.datetime:
        """Last anchor date."""
        return self.anchors[-1][0]

    def seasonal_mean(self, when: _dt.datetime) -> float:
        """Piecewise-linear seasonal mean temperature at ``when`` (degC)."""
        anchors: List[Tuple[_dt.datetime, float]] = list(self.anchors)
        if when <= anchors[0][0]:
            return anchors[0][1]
        if when >= anchors[-1][0]:
            return anchors[-1][1]
        for (t0, v0), (t1, v1) in zip(anchors, anchors[1:]):
            if t0 <= when <= t1:
                span = (t1 - t0).total_seconds()
                frac = (when - t0).total_seconds() / span if span else 0.0
                return v0 + frac * (v1 - v0)
        raise AssertionError("unreachable: anchors are sorted")  # pragma: no cover


#: Southern-Finland winter/spring 2010 analogue used by the paper experiment.
#: Anchor means follow FMI climatology bent to the paper's reported events:
#: a cold mid-February (prototype weekend near -9 degC) and a severe late
#: February snap reaching about -22 degC.
HELSINKI_2010 = ClimateProfile(
    name="helsinki-winter-2010",
    anchors=(
        (_dt.datetime(2010, 2, 1), -8.0),
        (_dt.datetime(2010, 2, 12), -9.2),
        (_dt.datetime(2010, 2, 16), -9.0),
        (_dt.datetime(2010, 3, 1), -7.5),
        (_dt.datetime(2010, 3, 15), -4.0),
        (_dt.datetime(2010, 4, 1), 1.0),
        (_dt.datetime(2010, 4, 15), 4.0),
        (_dt.datetime(2010, 5, 1), 8.0),
        (_dt.datetime(2010, 5, 15), 11.0),
        (_dt.datetime(2010, 6, 1), 13.5),
    ),
    diurnal_amplitude_c=2.6,
    synoptic_std_c=2.6,
    synoptic_corr_hours=60.0,
    weather_noise_std_c=0.5,
    dewpoint_depression_mean_c=2.2,
    dewpoint_depression_std_c=1.4,
    diurnal_depression_c=4.2,
    wind_mean_ms=3.8,
    wind_std_ms=1.9,
    wind_corr_hours=10.0,
    cloud_corr_hours=30.0,
    solar_noon_peak_wm2=430.0,
    latitude_deg=60.2,
    cold_snaps=(
        # The -22 degC episode the paper's longest-running host survived.
        ColdSnap(peak=_dt.datetime(2010, 2, 21, 5, 0), depth_c=9.5, sigma_days=1.0),
        # A shallower early-March refreeze visible in Fig. 3's dips.
        ColdSnap(peak=_dt.datetime(2010, 3, 8, 4, 0), depth_c=5.0, sigma_days=0.9),
    ),
)
