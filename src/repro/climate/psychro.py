"""Psychrometrics: the humidity arithmetic behind Sections 4.1 and 5.

The paper's condensation discussion (Section 5) hinges on one comparison:
water condenses on a surface only when the surface temperature falls below
the dewpoint of the surrounding air.  These helpers implement the standard
Magnus-form approximations (WMO coefficients over water, with an ice branch
for sub-zero saturation) used by meteorological services.

All temperatures are degrees Celsius, vapor pressures hPa, absolute
humidity g/m^3, relative humidity percent in ``[0, 100]``.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]

# Magnus coefficients (Sonntag 1990, WMO): e_s = A * exp(B*T / (C + T))
_A_WATER = 6.112
_B_WATER = 17.62
_C_WATER = 243.12
# Over ice (for frost point / sub-zero saturation):
_B_ICE = 22.46
_C_ICE = 272.62

#: Specific gas constant of water vapor, J/(kg K).
_R_VAPOR = 461.5


def saturation_vapor_pressure(temp_c: ArrayLike, over_ice: bool = False) -> ArrayLike:
    """Saturation vapor pressure in hPa at ``temp_c``.

    With ``over_ice=True`` the ice-surface coefficients are used, which is
    the right choice for frost formation on sub-zero hardware surfaces.
    """
    t = np.asarray(temp_c, dtype=float)
    if over_ice:
        e = _A_WATER * np.exp(_B_ICE * t / (_C_ICE + t))
    else:
        e = _A_WATER * np.exp(_B_WATER * t / (_C_WATER + t))
    if np.isscalar(temp_c):
        return float(e)
    return e


def vapor_pressure(temp_c: ArrayLike, rh_percent: ArrayLike) -> ArrayLike:
    """Actual vapor pressure (hPa) of air at ``temp_c`` and ``rh_percent``."""
    rh = np.asarray(rh_percent, dtype=float)
    e = saturation_vapor_pressure(temp_c) * rh / 100.0
    if np.isscalar(temp_c) and np.isscalar(rh_percent):
        return float(e)
    return e


def dewpoint(temp_c: ArrayLike, rh_percent: ArrayLike) -> ArrayLike:
    """Dewpoint temperature (degC) of air at ``temp_c`` and ``rh_percent``.

    RH is clipped to a small positive floor: a zero-humidity dewpoint is
    mathematically -inf and never occurs in outdoor air.
    """
    rh = np.clip(np.asarray(rh_percent, dtype=float), 0.1, 100.0)
    t = np.asarray(temp_c, dtype=float)
    gamma = np.log(rh / 100.0) + _B_WATER * t / (_C_WATER + t)
    td = _C_WATER * gamma / (_B_WATER - gamma)
    if np.isscalar(temp_c) and np.isscalar(rh_percent):
        return float(td)
    return td


def relative_humidity_from_dewpoint(temp_c: ArrayLike, dewpoint_c: ArrayLike) -> ArrayLike:
    """Relative humidity (%) of air at ``temp_c`` with dewpoint ``dewpoint_c``.

    Clipped to ``[0, 100]``: a dewpoint above the dry-bulb temperature is
    supersaturation, reported as 100 %.
    """
    e = saturation_vapor_pressure(dewpoint_c)
    es = saturation_vapor_pressure(temp_c)
    rh = np.clip(100.0 * np.asarray(e) / np.asarray(es), 0.0, 100.0)
    if np.isscalar(temp_c) and np.isscalar(dewpoint_c):
        return float(rh)
    return rh


def absolute_humidity(temp_c: ArrayLike, rh_percent: ArrayLike) -> ArrayLike:
    """Water vapor density in g/m^3.

    This is the quantity conserved when outside air is drawn into the tent
    and warmed: the tent adds heat, not moisture (to first order), so inside
    RH follows from outside absolute humidity plus the inside temperature.
    """
    e_pa = np.asarray(vapor_pressure(temp_c, rh_percent)) * 100.0  # hPa -> Pa
    t_k = np.asarray(temp_c, dtype=float) + 273.15
    ah = 1000.0 * e_pa / (_R_VAPOR * t_k)  # kg/m^3 -> g/m^3
    if np.isscalar(temp_c) and np.isscalar(rh_percent):
        return float(ah)
    return ah


def rh_from_absolute_humidity(temp_c: ArrayLike, ah_g_m3: ArrayLike) -> ArrayLike:
    """Relative humidity (%) of air at ``temp_c`` holding ``ah_g_m3`` of vapor."""
    t_k = np.asarray(temp_c, dtype=float) + 273.15
    e_pa = np.asarray(ah_g_m3, dtype=float) / 1000.0 * _R_VAPOR * t_k
    es_pa = np.asarray(saturation_vapor_pressure(temp_c)) * 100.0
    rh = np.clip(100.0 * e_pa / es_pa, 0.0, 100.0)
    if np.isscalar(temp_c) and np.isscalar(ah_g_m3):
        return float(rh)
    return rh


def condensation_margin(
    surface_temp_c: ArrayLike, ambient_temp_c: ArrayLike, ambient_rh_percent: ArrayLike
) -> ArrayLike:
    """Degrees of safety between a surface and the ambient dewpoint.

    Positive margin means the surface is *warmer* than the dewpoint and
    stays dry; a negative margin means condensation forms.  The paper's
    Section 5 argument is that powered cases run warmer than ambient, so
    the margin stays positive unless outside air suddenly becomes much
    warmer and wetter than the case.
    """
    td = dewpoint(ambient_temp_c, ambient_rh_percent)
    margin = np.asarray(surface_temp_c, dtype=float) - np.asarray(td)
    if np.isscalar(surface_temp_c) and np.isscalar(ambient_temp_c):
        return float(margin)
    return margin


def condenses(
    surface_temp_c: float, ambient_temp_c: float, ambient_rh_percent: float
) -> bool:
    """True when ``surface_temp_c`` is at/below the ambient dewpoint."""
    return condensation_margin(surface_temp_c, ambient_temp_c, ambient_rh_percent) <= 0.0


def mix_air(
    temp_a: float, rh_a: float, temp_b: float, rh_b: float, fraction_b: float
) -> "tuple[float, float]":
    """Adiabatically mix two air parcels; return (temp_c, rh_percent).

    Used by the tent model when ventilation mixes outside air into the
    tent volume.  ``fraction_b`` is the mass fraction of parcel B.
    """
    if not 0.0 <= fraction_b <= 1.0:
        raise ValueError(f"fraction_b must be in [0, 1], got {fraction_b}")
    temp = (1.0 - fraction_b) * temp_a + fraction_b * temp_b
    ah = (1.0 - fraction_b) * absolute_humidity(temp_a, rh_a) + fraction_b * absolute_humidity(
        temp_b, rh_b
    )
    return temp, float(rh_from_absolute_humidity(temp, ah))


def frost_point(temp_c: float, rh_percent: float) -> float:
    """Frost-point temperature (degC): dewpoint computed over ice.

    Below 0 degC deposition happens at the frost point, slightly above the
    over-water dewpoint; relevant for the tent's sub-zero months.
    """
    rh = min(max(rh_percent, 0.1), 100.0)
    e = vapor_pressure(temp_c, rh)
    # Invert the ice-branch Magnus formula.
    ln_ratio = math.log(e / _A_WATER)
    return _C_ICE * ln_ratio / (_B_ICE - ln_ratio)
