"""Climate profiles for the sites the paper compares itself against.

The introduction frames the contribution geographically: "If we can bring
the server equipment to tolerate North European conditions, we have shown
that Intel's results from New Mexico and HP's from North East England can
be extended to most parts of the globe."  These full-year profiles make
that argument computable (see :mod:`repro.analysis.freecooling`):

- :data:`HELSINKI_FULL_YEAR` -- the paper's own site, extended across
  2010 (its stated future work: "more data over longer periods of time
  and over varying meteorological conditions"),
- :data:`NEW_MEXICO_FULL_YEAR` -- Intel's air-economizer proof of
  concept ran in a high-desert climate near Albuquerque,
- :data:`NE_ENGLAND_FULL_YEAR` -- HP's Wynyard data centre uses cool
  maritime air from the North Sea,
- :data:`SINGAPORE_FULL_YEAR` -- a deliberately hostile counterexample:
  equatorial air that is never cold enough for free cooling.

Monthly anchor means follow standard climate normals for each location;
variability parameters are set to each climate's character (continental,
high desert, maritime, equatorial).
"""

from __future__ import annotations

import datetime as _dt
from typing import Sequence, Tuple

from repro.climate.profiles import ClimateProfile, ColdSnap


def _monthly_anchors(year: int, means_c: Sequence[float]) -> Tuple[Tuple[_dt.datetime, float], ...]:
    """Anchor points on the 15th of each month, plus clamped year ends.

    Both year-end clamps (Jan 1 of ``year`` and Jan 1 of ``year + 1``)
    sit at the December/January midpoint, so the seasonal curve is
    *periodic*: the value entering a New Year equals the value leaving
    the old one, and profiles stacked across consecutive years stay
    continuous at the boundary.  (Clamping one end to the January mean
    and the other to the December mean -- the old behaviour -- made the
    curve jump by ``means_c[0] - means_c[-1]`` across the wrap.)
    """
    if len(means_c) != 12:
        raise ValueError("need exactly 12 monthly means")
    wrap_c = 0.5 * (means_c[0] + means_c[-1])
    anchors = [(_dt.datetime(year, 1, 1), wrap_c)]
    for month, mean in enumerate(means_c, start=1):
        anchors.append((_dt.datetime(year, month, 15), mean))
    anchors.append((_dt.datetime(year + 1, 1, 1), wrap_c))
    return tuple(anchors)


def monthly_anchors(
    year: int, means_c: Sequence[float]
) -> Tuple[Tuple[_dt.datetime, float], ...]:
    """Public seasonal-anchor builder used by the synthetic-site layer.

    See :func:`_monthly_anchors`; exposed so
    :mod:`repro.climate.synthesis` and CSV-imported sites share the same
    periodic year-end convention as the stock profiles.
    """
    return _monthly_anchors(year, means_c)


#: The paper's site across all of 2010 (cold winter, the notable July
#: heat wave of that year, cold December).
HELSINKI_FULL_YEAR = ClimateProfile(
    name="helsinki-2010-full-year",
    anchors=_monthly_anchors(
        2010, [-11.0, -9.0, -4.0, 3.5, 10.5, 14.5, 21.5, 17.0, 11.0, 4.5, -1.0, -7.5]
    ),
    diurnal_amplitude_c=3.2,
    synoptic_std_c=3.0,
    synoptic_corr_hours=60.0,
    dewpoint_depression_mean_c=2.4,
    dewpoint_depression_std_c=1.5,
    diurnal_depression_c=4.0,
    wind_mean_ms=3.8,
    latitude_deg=60.2,
    cold_snaps=(
        ColdSnap(peak=_dt.datetime(2010, 2, 21, 5, 0), depth_c=9.5, sigma_days=1.0),
        ColdSnap(peak=_dt.datetime(2010, 12, 22, 6, 0), depth_c=8.0, sigma_days=1.5),
    ),
)

#: Intel's proof-of-concept site: high desert near Albuquerque, NM.
#: Hot summer days but large diurnal swing and very dry air.
NEW_MEXICO_FULL_YEAR = ClimateProfile(
    name="new-mexico-full-year",
    anchors=_monthly_anchors(
        2010, [1.5, 4.5, 8.5, 13.0, 18.5, 24.0, 25.5, 24.0, 20.0, 13.5, 6.5, 1.5]
    ),
    diurnal_amplitude_c=8.0,
    synoptic_std_c=2.5,
    synoptic_corr_hours=72.0,
    dewpoint_depression_mean_c=14.0,
    dewpoint_depression_std_c=4.0,
    diurnal_depression_c=8.0,
    wind_mean_ms=3.5,
    solar_noon_peak_wm2=900.0,
    latitude_deg=35.1,
)

#: HP's Wynyard site: maritime North-East England, cool and damp all year.
NE_ENGLAND_FULL_YEAR = ClimateProfile(
    name="ne-england-full-year",
    anchors=_monthly_anchors(
        2010, [3.5, 3.5, 5.5, 7.5, 10.5, 13.5, 15.5, 15.5, 13.5, 10.0, 6.5, 4.0]
    ),
    diurnal_amplitude_c=3.0,
    synoptic_std_c=2.2,
    synoptic_corr_hours=48.0,
    dewpoint_depression_mean_c=2.0,
    dewpoint_depression_std_c=1.2,
    diurnal_depression_c=3.0,
    wind_mean_ms=5.5,
    solar_noon_peak_wm2=450.0,
    latitude_deg=54.6,
)

#: The counterexample: equatorial Singapore, where outside air is never
#: below the intake ceiling and free cooling buys nothing.
SINGAPORE_FULL_YEAR = ClimateProfile(
    name="singapore-full-year",
    anchors=_monthly_anchors(
        2010, [26.5, 27.0, 27.5, 28.0, 28.5, 28.5, 28.0, 28.0, 27.5, 27.5, 27.0, 26.5]
    ),
    diurnal_amplitude_c=2.5,
    synoptic_std_c=0.8,
    synoptic_corr_hours=48.0,
    dewpoint_depression_mean_c=2.5,
    dewpoint_depression_std_c=0.8,
    diurnal_depression_c=3.0,
    wind_mean_ms=2.5,
    solar_noon_peak_wm2=950.0,
    latitude_deg=1.35,
)

#: The comparison set used by the geographic-extension analysis.
ALL_SITES = (
    HELSINKI_FULL_YEAR,
    NE_ENGLAND_FULL_YEAR,
    NEW_MEXICO_FULL_YEAR,
    SINGAPORE_FULL_YEAR,
)
