"""The outside reference instrument: a SMEAR III-style weather station.

The paper's outside temperature and humidity series (Figs. 3 and 4) come
from the SMEAR III station operated next to the CS building.  The station
model samples the synthetic atmosphere on a fixed cadence with small,
research-grade instrument error, and accumulates a record the analysis
layer can consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.climate.generator import WeatherGenerator
from repro.sim.clock import MINUTE
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.rng import RngStreams
from repro.state.codec import pack_floats, unpack_floats
from repro.state.protocol import check_version

_STATE_VERSION = 1


@dataclass(frozen=True)
class StationReading:
    """One logged observation from the weather station."""

    time: float
    temp_c: float
    rh_percent: float
    wind_ms: float
    solar_wm2: float


class WeatherStation:
    """Periodic sampler of a :class:`WeatherGenerator` with instrument error.

    Parameters
    ----------
    weather:
        The atmosphere to observe.
    streams:
        RNG family; uses the ``station.noise`` stream.
    temp_error_std_c / rh_error_std:
        1-sigma instrument error.  SMEAR III class instruments are far
        better than the tent's consumer data logger, so the defaults are
        small (0.1 degC, 1 % RH).
    period_s:
        Sampling cadence; the paper's outside series is ~10-minute data.
    """

    def __init__(
        self,
        weather: WeatherGenerator,
        streams: Optional[RngStreams] = None,
        temp_error_std_c: float = 0.1,
        rh_error_std: float = 1.0,
        period_s: float = 10 * MINUTE,
    ) -> None:
        if period_s <= 0:
            raise ValueError("sampling period must be positive")
        self.weather = weather
        self.temp_error_std_c = temp_error_std_c
        self.rh_error_std = rh_error_std
        self.period_s = period_s
        streams = streams if streams is not None else RngStreams(0)
        self._rng = streams.stream("station.noise")
        self.readings: List[StationReading] = []
        self._handle: Optional[PeriodicTask] = None
        self._sim: Optional[Simulator] = None
        self._restore_task_id: Optional[int] = None

    def __repr__(self) -> str:
        return f"WeatherStation(period={self.period_s:.0f}s, readings={len(self.readings)})"

    def observe(self, time: float) -> StationReading:
        """Take one reading at ``time`` and append it to :attr:`readings`."""
        truth = self.weather.sample(time)
        reading = StationReading(
            time=time,
            temp_c=truth.temp_c + self._rng.normal(0.0, self.temp_error_std_c),
            rh_percent=float(
                np.clip(truth.rh_percent + self._rng.normal(0.0, self.rh_error_std), 0.0, 100.0)
            ),
            wind_ms=max(0.0, truth.wind_ms + self._rng.normal(0.0, 0.1)),
            solar_wm2=max(0.0, truth.solar_wm2 * (1.0 + self._rng.normal(0.0, 0.02))),
        )
        self.readings.append(reading)
        return reading

    def attach(self, sim: Simulator, start: Optional[float] = None) -> None:
        """Start periodic observation on ``sim`` (first sample at ``start``)."""
        if self._handle is not None:
            raise RuntimeError("station already attached to a simulator")
        first = sim.now if start is None else start
        self.register_keys(sim)
        self._handle = sim.every_key(
            self.period_s, "station.observe", start=first, label="weather-station"
        )

    def detach(self) -> None:
        """Stop periodic observation."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def register_keys(self, sim: Simulator) -> None:
        """Bind this station's engine registry key on ``sim``."""
        self._sim = sim
        sim.register("station.observe", self._observe_now)

    def _observe_now(self) -> None:
        self.observe(self._sim.now)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "task_id": self._handle.task_id if self._handle is not None else None,
            "readings": {
                "time": pack_floats([r.time for r in self.readings]),
                "temp_c": pack_floats([r.temp_c for r in self.readings]),
                "rh_percent": pack_floats([r.rh_percent for r in self.readings]),
                "wind_ms": pack_floats([r.wind_ms for r in self.readings]),
                "solar_wm2": pack_floats([r.solar_wm2 for r in self.readings]),
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("station", state, _STATE_VERSION)
        readings = state["readings"]
        self.readings = [
            StationReading(time=t, temp_c=c, rh_percent=rh, wind_ms=w, solar_wm2=s)
            for t, c, rh, w, s in zip(
                unpack_floats(readings["time"]),
                unpack_floats(readings["temp_c"]),
                unpack_floats(readings["rh_percent"]),
                unpack_floats(readings["wind_ms"]),
                unpack_floats(readings["solar_wm2"]),
            )
        ]
        self._restore_task_id = state["task_id"]

    def rebind(self, sim: Simulator) -> None:
        """Re-link the periodic task after the engine's state is loaded."""
        if self._restore_task_id is not None:
            self._handle = sim.periodic_task(int(self._restore_task_id))
            self._restore_task_id = None

    # ------------------------------------------------------------------
    # Analysis accessors
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        """Observation times as an array."""
        return np.array([r.time for r in self.readings])

    def temperatures(self) -> np.ndarray:
        """Observed temperatures as an array."""
        return np.array([r.temp_c for r in self.readings])

    def humidities(self) -> np.ndarray:
        """Observed relative humidities as an array."""
        return np.array([r.rh_percent for r in self.readings])
