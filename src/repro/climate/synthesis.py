"""Synthetic sites for the multi-site free-cooling atlas.

The paper's geographic-extension claim -- "Intel's results from New
Mexico and HP's from North East England can be extended to most parts of
the globe" -- is argued from four hand-built profiles in
:mod:`repro.climate.sites`.  This module scales the argument: a
:class:`SiteParameters` record captures the handful of knobs that
actually decide free-cooling feasibility (latitude, annual mean,
seasonal amplitude, diurnal swing, humidity regime,
maritime-vs-continental character), :meth:`SiteParameters.to_profile`
expands them into a full :class:`~repro.climate.profiles.ClimateProfile`
through the same periodic monthly-anchor convention the stock sites use,
and :func:`sample_sites` draws hundreds of plausible sites
deterministically from one seed so ``repro atlas`` can sweep a synthetic
globe.

Sampling is *per-index* seeded: site ``i`` of a seed-7 atlas is the same
whether 10 or 1000 sites are drawn, so growing an atlas never reshuffles
the sites already scored (and cached).

:func:`profile_from_csv` is the escape hatch from synthesis to
measurement: a real hourly weather trace (``timestamp,temp_c`` with an
optional ``dewpoint_c`` column) is reduced to monthly means, a diurnal
amplitude, and dewpoint-depression statistics, yielding a profile that
rides the same assessment pipeline as the synthetic ones.
"""

from __future__ import annotations

import csv
import datetime as _dt
import hashlib
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.climate.profiles import ClimateProfile
from repro.climate.sites import monthly_anchors

#: Stable stream key for the site sampler (same construction as
#: :func:`repro.sim.rng._name_key`: salted builtin ``hash`` won't do).
_SAMPLER_KEY = int.from_bytes(
    hashlib.sha256(b"climate.synthesis.sites").digest()[:8], "big"
)

#: Default grid price used when a site does not carry its own tariff.
DEFAULT_PRICE_USD_PER_KWH = 0.10


@dataclass(frozen=True)
class SiteParameters:
    """The knobs that decide a site's free-cooling economics.

    ``continentality`` runs from 0 (maritime: small seasonal swing,
    damped synoptics, steady wind off the water -- HP's Wynyard) to 1
    (continental: hard winters, big synoptic excursions -- interior
    plateaus).  ``seasonal_amplitude_c`` is the half peak-to-trough of
    the monthly-mean cycle; ``diurnal_swing_c`` is the full day-night
    range (the high-desert lever that made Intel's economizer work).
    """

    name: str
    latitude_deg: float
    mean_annual_c: float
    seasonal_amplitude_c: float
    diurnal_swing_c: float
    dewpoint_depression_mean_c: float
    dewpoint_depression_std_c: float
    continentality: float
    electricity_price_usd_per_kwh: float = DEFAULT_PRICE_USD_PER_KWH
    year: int = 2010

    def __post_init__(self) -> None:
        if not -90.0 <= self.latitude_deg <= 90.0:
            raise ValueError("latitude must be within [-90, 90] degrees")
        if self.seasonal_amplitude_c < 0:
            raise ValueError("seasonal amplitude is a magnitude; must be >= 0")
        if self.diurnal_swing_c < 0:
            raise ValueError("diurnal swing is a magnitude; must be >= 0")
        if self.dewpoint_depression_mean_c < 0 or self.dewpoint_depression_std_c < 0:
            raise ValueError("dewpoint-depression statistics must be >= 0")
        if not 0.0 <= self.continentality <= 1.0:
            raise ValueError("continentality must be within [0, 1]")
        if self.electricity_price_usd_per_kwh <= 0:
            raise ValueError("electricity price must be positive")

    def monthly_means_c(self) -> List[float]:
        """Cosine seasonal cycle through the annual mean.

        The warmest month sits in late July in the northern hemisphere
        and flips to January south of the equator; the equator itself
        simply has a small amplitude, so the phase hardly matters.
        """
        warmest_month = 7.4 if self.latitude_deg >= 0 else 1.4
        return [
            self.mean_annual_c
            + self.seasonal_amplitude_c
            * math.cos(2.0 * math.pi * (month - warmest_month) / 12.0)
            for month in range(1, 13)
        ]

    def to_profile(self) -> ClimateProfile:
        """Expand to the full generator parameter set.

        Variability parameters derive from the knobs the same way the
        hand-built profiles were calibrated: continentality trades wind
        for synoptic excursions, dry air buys a larger afternoon
        humidity dip, and clear-sky noon sun follows latitude.
        """
        solar_noon = max(
            250.0,
            min(950.0, 1000.0 * math.cos(math.radians(abs(self.latitude_deg)))),
        )
        return ClimateProfile(
            name=self.name,
            anchors=monthly_anchors(self.year, self.monthly_means_c()),
            diurnal_amplitude_c=0.5 * self.diurnal_swing_c,
            synoptic_std_c=1.2 + 2.3 * self.continentality,
            synoptic_corr_hours=48.0 + 36.0 * self.continentality,
            dewpoint_depression_mean_c=self.dewpoint_depression_mean_c,
            dewpoint_depression_std_c=self.dewpoint_depression_std_c,
            diurnal_depression_c=min(8.0, 2.0 + 0.4 * self.diurnal_swing_c),
            wind_mean_ms=5.5 - 2.8 * self.continentality,
            solar_noon_peak_wm2=solar_noon,
            latitude_deg=self.latitude_deg,
        )


def site_at_index(index: int, seed: int, year: int = 2010) -> SiteParameters:
    """Draw synthetic site ``index`` of the seed's infinite atlas.

    Each index gets its own :class:`~numpy.random.SeedSequence`, so the
    draw is a pure function of ``(seed, index)`` -- independent of how
    many sites any particular sweep asked for.

    The marginals follow climatological common sense rather than any
    dataset: annual means cool poleward at roughly 0.55 degC per degree
    of latitude with a few degrees of maritime/altitude scatter,
    seasonal amplitude grows with both latitude and continentality, and
    dry air (large dewpoint depression) brings the large diurnal swings
    of the high desert.
    """
    if index < 0:
        raise ValueError("site index must be >= 0")
    rng = np.random.default_rng(
        np.random.SeedSequence([seed, index, _SAMPLER_KEY])
    )
    latitude = float(rng.uniform(-65.0, 65.0))
    mean_annual = 27.0 - 0.55 * abs(latitude) + float(rng.normal(0.0, 3.0))
    continentality = float(rng.uniform(0.0, 1.0))
    amplitude = max(
        0.5,
        (1.0 + 0.25 * abs(latitude)) * (0.3 + 0.8 * continentality)
        + float(rng.normal(0.0, 1.0)),
    )
    depression_mean = float(rng.uniform(1.0, 16.0))
    swing = min(20.0, max(1.0, 2.0 + 0.9 * depression_mean + float(rng.normal(0.0, 1.5))))
    price = float(rng.uniform(0.05, 0.20))
    return SiteParameters(
        name=f"site-{index:04d}",
        latitude_deg=latitude,
        mean_annual_c=mean_annual,
        seasonal_amplitude_c=amplitude,
        diurnal_swing_c=swing,
        dewpoint_depression_mean_c=depression_mean,
        dewpoint_depression_std_c=0.5 + 0.2 * depression_mean,
        continentality=continentality,
        electricity_price_usd_per_kwh=price,
        year=year,
    )


def sample_sites(n: int, seed: int, year: int = 2010) -> List[SiteParameters]:
    """The first ``n`` sites of the seed's atlas (see :func:`site_at_index`)."""
    if n < 1:
        raise ValueError("need at least one site")
    return [site_at_index(index, seed, year=year) for index in range(n)]


def profile_from_csv(
    path: str, name: Optional[str] = None
) -> ClimateProfile:
    """Calibrate a profile from an hourly weather-trace CSV.

    The file needs a header with ``timestamp`` (ISO 8601) and ``temp_c``
    columns; a ``dewpoint_c`` column, when present, calibrates the
    humidity regime.  The trace is reduced to the statistics the
    generator consumes: per-month mean temperatures (every month of the
    first year must be represented), the mean daily half-range as the
    diurnal amplitude, and dewpoint-depression mean/std.  Seasonal
    anchors use the same periodic year-end convention as every other
    profile, so imported and synthetic sites rank on equal terms.
    """
    by_month: Dict[int, List[float]] = {m: [] for m in range(1, 13)}
    by_day: Dict[_dt.date, List[float]] = {}
    depressions: List[float] = []
    year: Optional[int] = None
    with open(path, "r", encoding="utf-8", newline="") as fh:
        reader = csv.DictReader(fh)
        fields = reader.fieldnames or []
        missing = {"timestamp", "temp_c"} - set(fields)
        if missing:
            raise ValueError(
                f"{path}: missing required column(s) {sorted(missing)}; "
                "need a header with timestamp,temp_c[,dewpoint_c]"
            )
        has_dewpoint = "dewpoint_c" in fields
        for row in reader:
            when = _dt.datetime.fromisoformat(row["timestamp"].strip())
            temp = float(row["temp_c"])
            if year is None:
                year = when.year
            if when.year != year:
                continue  # reduce exactly one year; later rows are surplus
            by_month[when.month].append(temp)
            by_day.setdefault(when.date(), []).append(temp)
            if has_dewpoint and row["dewpoint_c"].strip():
                depressions.append(temp - float(row["dewpoint_c"]))
    if year is None:
        raise ValueError(f"{path}: no data rows")
    empty = [m for m, temps in by_month.items() if not temps]
    if empty:
        raise ValueError(
            f"{path}: no samples for month(s) {empty} of {year}; a "
            "full-year trace is needed to place the seasonal anchors"
        )
    means = [float(np.mean(by_month[m])) for m in range(1, 13)]
    half_ranges = [
        0.5 * (max(temps) - min(temps))
        for temps in by_day.values()
        if len(temps) >= 4  # skip fragmentary days
    ]
    amplitude = float(np.mean(half_ranges)) if half_ranges else 3.0
    kwargs = {}
    if depressions:
        kwargs["dewpoint_depression_mean_c"] = max(0.0, float(np.mean(depressions)))
        kwargs["dewpoint_depression_std_c"] = float(np.std(depressions))
    return ClimateProfile(
        name=name if name is not None else f"csv-{year}",
        anchors=monthly_anchors(year, means),
        diurnal_amplitude_c=amplitude,
        **kwargs,
    )


def profiles_for_sites(sites: Sequence[SiteParameters]) -> List[ClimateProfile]:
    """Expand a batch of parameter records into generator profiles."""
    return [site.to_profile() for site in sites]
