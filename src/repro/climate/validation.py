"""Statistical QA for the weather generator.

The whole reproduction stands on the synthetic atmosphere, so the
generator gets its own validation battery: estimators that recover, from
a generated series alone, the structure the profile promised --

- :func:`diurnal_cycle` -- amplitude and phase of the daily temperature
  cycle (the afternoon maximum),
- :func:`autocorrelation_time_hours` -- the synoptic persistence scale,
- :func:`seasonal_trend_c_per_day` -- the winter-to-spring warming,
- :func:`validate_profile` -- the bundle, compared against the profile's
  declared parameters.

Tests use these to assert the generator produces what the profile says;
users can point them at their own calibrations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.climate.generator import WeatherGenerator
from repro.climate.profiles import ClimateProfile
from repro.sim.clock import DAY, HOUR, SimClock
from repro.sim.rng import RngStreams


def diurnal_cycle(times_s: np.ndarray, temps_c: np.ndarray, clock: SimClock) -> Tuple[float, float]:
    """Fit ``a*cos(2*pi*(h - peak)/24)`` to the detrended daily cycle.

    Returns ``(amplitude_c, peak_hour)``.  Uses the first Fourier mode of
    the hour-of-day means -- robust to weather noise and seasonal trend.
    """
    if len(times_s) != len(temps_c):
        raise ValueError("times and temps must align")
    if len(times_s) < 48:
        raise ValueError("need at least two days of data")
    hours = np.array([clock.hour_of_day(float(t)) for t in times_s])
    # Remove the slow trend so February-to-May warming doesn't leak in.
    detrended = temps_c - np.poly1d(np.polyfit(times_s, temps_c, 2))(times_s)
    angle = 2.0 * math.pi * hours / 24.0
    a = 2.0 * float(np.mean(detrended * np.cos(angle)))
    b = 2.0 * float(np.mean(detrended * np.sin(angle)))
    amplitude = math.hypot(a, b)
    peak_hour = (math.degrees(math.atan2(b, a)) / 15.0) % 24.0
    return amplitude, peak_hour


def autocorrelation_time_hours(
    times_s: np.ndarray, values: np.ndarray, max_lag_hours: float = 240.0
) -> float:
    """e-folding time of the series' autocorrelation (hour-grid data).

    The input must be regularly sampled; the lag where the empirical
    autocorrelation first drops below ``1/e`` is returned (linearly
    interpolated).
    """
    if len(times_s) < 10:
        raise ValueError("series too short")
    steps = np.diff(times_s)
    if not np.allclose(steps, steps[0]):
        raise ValueError("autocorrelation needs regular sampling")
    step_h = float(steps[0]) / HOUR
    x = values - values.mean()
    denom = float(np.dot(x, x))
    if denom == 0.0:
        raise ValueError("constant series has no correlation time")
    target = 1.0 / math.e
    previous = 1.0
    max_lag = int(max_lag_hours / step_h)
    for lag in range(1, min(max_lag, len(x) - 1)):
        rho = float(np.dot(x[:-lag], x[lag:])) / denom
        if rho < target:
            # Linear interpolation between the straddling lags.
            frac = (previous - target) / (previous - rho)
            return (lag - 1 + frac) * step_h
        previous = rho
    return max_lag_hours


def seasonal_trend_c_per_day(times_s: np.ndarray, temps_c: np.ndarray) -> float:
    """Least-squares warming rate over the span (degC/day)."""
    if len(times_s) < 2:
        raise ValueError("need at least two samples")
    slope_per_s = float(np.polyfit(times_s, temps_c, 1)[0])
    return slope_per_s * DAY


def dominant_period_hours(
    times_s: np.ndarray, values: np.ndarray, min_period_hours: float = 3.0
) -> float:
    """Period (hours) of the strongest spectral peak in a regular series.

    A detrended periodogram over periods longer than ``min_period_hours``;
    for any series with a live diurnal cycle (outside air, the tent, the
    webcam's brightness) the answer should be 24.
    """
    if len(times_s) < 8:
        raise ValueError("series too short for a periodogram")
    steps = np.diff(times_s)
    if not np.allclose(steps, steps[0]):
        raise ValueError("periodogram needs regular sampling")
    step_h = float(steps[0]) / HOUR
    x = np.asarray(values, dtype=float)
    x = x - np.poly1d(np.polyfit(times_s, x, 2))(times_s)
    spectrum = np.abs(np.fft.rfft(x)) ** 2
    freqs = np.fft.rfftfreq(len(x), d=step_h)  # cycles per hour
    usable = freqs > 0
    usable &= (1.0 / np.maximum(freqs, 1e-12)) >= min_period_hours
    if not usable.any():
        raise ValueError("no usable frequencies below the period floor")
    # Exclude the near-DC band (periods over a third of the record):
    # synoptic power lives there and is not a "cycle" of the record.
    record_hours = len(x) * step_h
    usable &= (1.0 / np.maximum(freqs, 1e-12)) <= record_hours / 3.0
    peak = int(np.argmax(np.where(usable, spectrum, 0.0)))
    return float(1.0 / freqs[peak])


@dataclass(frozen=True)
class ProfileValidation:
    """Recovered-vs-declared structure for one generated series."""

    profile_name: str
    declared_diurnal_amplitude_c: float
    recovered_diurnal_amplitude_c: float
    recovered_peak_hour: float
    declared_synoptic_corr_hours: float
    recovered_corr_hours: float
    recovered_trend_c_per_day: float

    @property
    def diurnal_recovered(self) -> bool:
        """Amplitude within a factor of ~2 and peak in the afternoon.

        Cloud damping means the recovered amplitude is *below* the
        clear-sky parameter; a factor-two band plus a 12-18 h peak window
        is the meaningful check.
        """
        ok_amp = (
            0.3 * self.declared_diurnal_amplitude_c
            <= self.recovered_diurnal_amplitude_c
            <= 2.0 * self.declared_diurnal_amplitude_c
        )
        return ok_amp and 11.0 <= self.recovered_peak_hour <= 19.0


def validate_profile(
    profile: ClimateProfile, seed: int = 0, span_days: Optional[int] = None
) -> ProfileValidation:
    """Generate a series from ``profile`` and recover its structure."""
    clock = SimClock(profile.start)
    weather = WeatherGenerator(profile, RngStreams(seed), clock)
    end = weather.end_time if span_days is None else min(
        weather.end_time, weather.start_time + span_days * DAY
    )
    times = np.arange(weather.start_time, end, HOUR)
    temps = np.asarray(weather.temperature(times))
    amplitude, peak = diurnal_cycle(times, temps, clock)
    # Correlation time measured on *detrended* daily means: the seasonal
    # warming would otherwise dominate and the autocorrelation would never
    # decay within the window.
    n_days = len(temps) // 24
    daily = temps[: n_days * 24].reshape(n_days, 24).mean(axis=1)
    daily_times = times[: n_days * 24 : 24]
    daily_anomaly = daily - np.poly1d(np.polyfit(daily_times, daily, 2))(daily_times)
    corr_h = autocorrelation_time_hours(daily_times, daily_anomaly, max_lag_hours=480.0)
    return ProfileValidation(
        profile_name=profile.name,
        declared_diurnal_amplitude_c=profile.diurnal_amplitude_c,
        recovered_diurnal_amplitude_c=amplitude,
        recovered_peak_hour=peak,
        declared_synoptic_corr_hours=profile.synoptic_corr_hours,
        recovered_corr_hours=corr_h,
        recovered_trend_c_per_day=seasonal_trend_c_per_day(times, temps),
    )
