"""Closed-loop control plane: actuators, controllers, and the RL facade.

The package splits control into four layers:

- :mod:`repro.control.actuators` -- the :class:`ActuatorBus` of typed,
  bounds-clamped knobs over one campaign fleet;
- :mod:`repro.control.observation` -- the frozen per-tick
  :class:`ControlObservation`;
- :mod:`repro.control.controllers` -- the :class:`Controller` protocol
  and the shipped policies (paper operator, thermostat, model-free);
- :mod:`repro.control.plane` -- the :class:`ControlPlane` wiring a
  controller into a campaign's engine and snapshot machinery;
- :mod:`repro.control.env` -- the gym-style :class:`ControlEnv`.
"""

from repro.control.actuators import ActuatorBus, clamp, clamp_fraction
from repro.control.controllers import (
    CONTROLLERS,
    ControlAction,
    Controller,
    ControllerSpec,
    ModelFreeSetpointController,
    PaperOperatorController,
    ThermostatController,
    controller_doc,
    controller_from_spec,
    controller_names,
    resolve_controller,
)
from repro.control.env import ControlEnv, RewardSpec
from repro.control.observation import ControlObservation
from repro.control.plane import ControlPlane

__all__ = [
    "ActuatorBus",
    "CONTROLLERS",
    "ControlAction",
    "ControlEnv",
    "ControlObservation",
    "ControlPlane",
    "Controller",
    "ControllerSpec",
    "ModelFreeSetpointController",
    "PaperOperatorController",
    "RewardSpec",
    "ThermostatController",
    "clamp",
    "clamp_fraction",
    "controller_doc",
    "controller_from_spec",
    "controller_names",
    "resolve_controller",
]
