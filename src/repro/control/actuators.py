"""The actuator bus: every knob the plant exposes, typed and clamped.

Before this module existed, actuation was entangled in three places:
the open-loop ``TentModificationPlan`` replay inside the campaign
builder, the trip/shed/flap machinery inside the plant controllers, and
the envelope knobs scattered across the tent models.  The
:class:`ActuatorBus` is now the single choke point: controllers (and the
chaos plane) express *intent* -- "open the flap", "run the economizer
fan at 60 %", "shed half the tent" -- and the bus translates that into
the underlying fleet calls, clamping every command into its physical
range first.

The bus works identically over both fleet backends: the ``object`` and
``columnar`` backends share the same :class:`~repro.core.deployment.Fleet`
surface (enclosures are scalar either way; only the host tick math is
columnar), so one implementation covers both and the backend-equivalence
suite holds them byte-identical.

Determinism contract: a bus nobody commands touches nothing.  Airflow is
only re-composed when a degradation, flap, or fan-duty command arrives;
the DVFS scale and CRAC setpoint keep their construction values until a
controller moves them.  A default campaign (paper-operator controller,
no plant) therefore leaves the thermal trace byte-identical to the
pre-bus wiring.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from repro.hardware.host import Host, HostState
from repro.plant.faults import airflow_factors
from repro.thermal.tent import Modification

#: Basement CRAC setpoint range (degC): office-type conditioning cannot
#: chase free-cooling extremes, nor bake the control group.
CRAC_SETPOINT_RANGE = (16.0, 27.0)
#: DVFS/server-fan power-scale range: duty cycling below half the rated
#: draw stalls the synthetic workload, above 1.0 is fiction.
DVFS_RANGE = (0.5, 1.0)
#: Economizer fan at full duty raises envelope conductance by this
#: fraction and ventilation by :data:`FAN_DUTY_ACH_BOOST` (a tabletop
#: fan moves air much better than it moves heat through fabric).
FAN_DUTY_UA_BOOST = 0.6
FAN_DUTY_ACH_BOOST = 2.0


def clamp(value: float, lo: float, hi: float) -> float:
    """``value`` forced into ``[lo, hi]`` (NaN becomes ``lo``)."""
    value = float(value)
    if math.isnan(value):
        return lo
    return min(max(value, lo), hi)


def clamp_fraction(value: float) -> float:
    """``value`` forced into the unit interval."""
    return clamp(value, 0.0, 1.0)


class ActuatorBus:
    """Typed, bounds-clamped actuators over one campaign fleet.

    Actuators (each clamps, then applies through the fleet):

    - :meth:`apply_modification` -- the paper's R/I/B/F/D envelope
      interventions (tent flaps and the half-open door included);
    - :meth:`set_flap` -- the emergency flap;
    - :meth:`set_fan_duty` -- economizer fan duty in ``[0, 1]``;
    - :meth:`set_crac_setpoint` -- the basement CRAC setpoint;
    - :meth:`set_load_shed` -- cumulative shed fraction of the tent
      group (staged, lowest host id first, LIFO restore);
    - :meth:`set_dvfs` -- server fan/DVFS power scale on the tent's IT
      load.

    The chaos plane feeds its fan/blockage severities in through
    :meth:`set_plant_degradation` so degradation and deliberate
    actuation compose into one airflow state instead of overwriting
    each other.
    """

    STATE_VERSION = 1

    def __init__(self, fleet) -> None:
        self.fleet = fleet
        # Airflow inputs, composed into one set_plant_airflow call.
        self.flap_open = False
        self.fan_duty = 0.0
        self.fan_severity = 0.0
        self.blockage = 0.0
        # Setpoints (None = never commanded; construction value rules).
        self.crac_setpoint_c: Optional[float] = None
        self.dvfs_scale = 1.0
        #: Hosts this bus shed via :meth:`set_load_shed`, in shed order.
        self._shed: List[int] = []
        #: Commands that changed something (telemetry reads this).
        self.actions_applied = 0

    def __repr__(self) -> str:
        return (
            f"ActuatorBus(flap={self.flap_open}, duty={self.fan_duty:.2f}, "
            f"shed={len(self._shed)}, actions={self.actions_applied})"
        )

    # ------------------------------------------------------------------
    # Envelope
    # ------------------------------------------------------------------
    def apply_modification(self, mod: Modification, now: float) -> None:
        """One R/I/B/F/D intervention; publishes ``TentModified``."""
        self.fleet.apply_tent_modification(mod, now)
        self.actions_applied += 1

    def set_flap(self, open_: bool, now: Optional[float] = None) -> bool:
        """Open/close the emergency flap; returns True when it moved."""
        open_ = bool(open_)
        if open_ == self.flap_open:
            return False
        self.flap_open = open_
        self._apply_airflow()
        self.actions_applied += 1
        return True

    def set_fan_duty(self, duty: float, now: Optional[float] = None) -> bool:
        """Economizer fan duty in ``[0, 1]``; returns True on change."""
        duty = clamp_fraction(duty)
        if duty == self.fan_duty:
            return False
        self.fan_duty = duty
        self._apply_airflow()
        self.actions_applied += 1
        return True

    def set_plant_degradation(self, fan_severity: float, blockage: float) -> None:
        """Chaos-plane input: degraded blower/intake severities.

        Not an operator action (no command tally) -- the plant
        controller reports its fault state here every tick so the
        composed airflow always reflects both faults and intent.
        """
        self.fan_severity = float(fan_severity)
        self.blockage = float(blockage)
        self._apply_airflow()

    def _apply_airflow(self) -> None:
        """Compose degradation, flap, and fan duty into the tent."""
        ua, ach = airflow_factors(self.fan_severity, self.blockage, self.flap_open)
        if self.fan_duty > 0.0:
            ua *= 1.0 + FAN_DUTY_UA_BOOST * self.fan_duty
            ach *= 1.0 + FAN_DUTY_ACH_BOOST * self.fan_duty
        self.fleet.tent.set_plant_airflow(ua, ach)

    # ------------------------------------------------------------------
    # Basement and compute
    # ------------------------------------------------------------------
    def set_crac_setpoint(self, temp_c: float, now: Optional[float] = None) -> bool:
        """Move the basement CRAC setpoint (clamped to its range)."""
        temp_c = clamp(temp_c, *CRAC_SETPOINT_RANGE)
        if self.crac_setpoint_c is not None and temp_c == self.crac_setpoint_c:
            return False
        self.crac_setpoint_c = temp_c
        self.fleet.basement.setpoint_c = temp_c
        self.actions_applied += 1
        return True

    def set_dvfs(self, scale: float, now: Optional[float] = None) -> bool:
        """Server fan/DVFS power scale on the tent's dissipated IT load."""
        scale = clamp(scale, *DVFS_RANGE)
        if scale == self.dvfs_scale:
            return False
        self.dvfs_scale = scale
        self.fleet.tent.it_load_scale = scale
        self.actions_applied += 1
        return True

    # ------------------------------------------------------------------
    # Load shedding
    # ------------------------------------------------------------------
    def shed_count(self) -> int:
        """Hosts currently powered down by this bus."""
        return len(self._shed)

    def set_load_shed(
        self,
        fraction: float,
        now: float,
        group: str = "tent",
        reason: str = "controller shed",
    ) -> int:
        """Shed (or restore) hosts to meet a cumulative group fraction.

        Sheds lowest host id first, restores in LIFO order -- the same
        staging discipline the thermal-trip machinery uses.  Returns the
        number of hosts whose power state changed.
        """
        fraction = clamp_fraction(fraction)
        hosts = sorted(self.fleet.hosts_in_group(group), key=lambda h: h.host_id)
        target = int(math.ceil(fraction * len(hosts)))
        changed = 0
        if target > len(self._shed):
            for host in hosts:
                if len(self._shed) >= target:
                    break
                if host.state is HostState.RUNNING and host.host_id not in self._shed:
                    self.power_down(host, now, reason=reason)
                    self._shed.append(host.host_id)
                    changed += 1
        else:
            while len(self._shed) > target:
                host = self.fleet.host(self._shed.pop())
                if host.state is HostState.SHED:
                    self.power_up(host, now)
                    changed += 1
        if changed:
            self.actions_applied += 1
        return changed

    # ------------------------------------------------------------------
    # Raw host choke points (the plant controllers route through these
    # so every power transition crosses one audited surface).
    # ------------------------------------------------------------------
    def power_down(self, host: Host, now: float, reason: str) -> None:
        host.power_down(now, reason=reason)

    def power_up(self, host: Host, now: float) -> None:
        host.power_up(now)

    # ------------------------------------------------------------------
    # Snapshot protocol (owned by the ControlPlane's state blob)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": self.STATE_VERSION,
            "flap_open": self.flap_open,
            "fan_duty": self.fan_duty,
            "fan_severity": self.fan_severity,
            "blockage": self.blockage,
            "crac_setpoint_c": self.crac_setpoint_c,
            "dvfs_scale": self.dvfs_scale,
            "shed": list(self._shed),
            "actions_applied": self.actions_applied,
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.flap_open = bool(state["flap_open"])
        self.fan_duty = float(state["fan_duty"])
        self.fan_severity = float(state["fan_severity"])
        self.blockage = float(state["blockage"])
        crac = state["crac_setpoint_c"]
        self.crac_setpoint_c = None if crac is None else float(crac)
        self.dvfs_scale = float(state["dvfs_scale"])
        self._shed = [int(v) for v in state["shed"]]
        self.actions_applied = int(state["actions_applied"])
        # Setpoints live on objects whose own snapshots do not carry
        # them (construction parameters historically); reapply so a
        # restored campaign keeps integrating with the commanded values.
        if self.crac_setpoint_c is not None:
            self.fleet.basement.setpoint_c = self.crac_setpoint_c
        if self.dvfs_scale != 1.0:
            self.fleet.tent.it_load_scale = self.dvfs_scale
