"""Controllers: policies that observe the campaign and command actuators.

Three ship with the repo:

``paper-operator``
    The historical open-loop schedule -- the paper's R/I/B/F/D
    interventions replayed at their recorded dates.  This is the default
    controller and must leave the pinned seed-7 digest byte-identical.

``thermostat``
    Hysteresis control of the emergency flap and economizer fan with a
    minimum dwell time, the classic anti-chatter bang-bang loop.

``model-free``
    The intelligent-P ("iP") model-free setpoint synthesis of Fliess et
    al.: estimate the unmodelled dynamics from the last measurement and
    the last command, cancel them, and add a proportional correction.

A controller is two things to the control plane: a set of *wakes*
(absolute-time one-shot callbacks, how the paper operator replays its
schedule off the periodic grid) and an optional periodic ``act`` driven
every ``interval_s`` seconds.  Controllers are snapshottable so a killed
campaign resumes mid-episode byte-identically.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.control.actuators import clamp_fraction
from repro.state.protocol import StateError
from repro.thermal.tent import Modification


@dataclasses.dataclass(frozen=True)
class ControllerSpec:
    """Codec-friendly identity of a controller: name plus numeric params.

    Stored in checkpoint metadata so :meth:`Campaign.restore` can
    reconstruct the same policy before loading its state.
    """

    name: str
    params: Tuple[Tuple[str, float], ...] = ()

    def as_kwargs(self) -> Dict[str, float]:
        return {key: value for key, value in self.params}


@dataclasses.dataclass(frozen=True)
class ControlAction:
    """One bundle of actuator commands; ``None`` fields are "no change"."""

    flap: Optional[bool] = None
    fan_duty: Optional[float] = None
    crac_setpoint_c: Optional[float] = None
    shed_fraction: Optional[float] = None
    dvfs_scale: Optional[float] = None
    #: Envelope modification letters to apply, in order.
    modifications: Tuple[str, ...] = ()


class Controller:
    """Base controller: periodic ``act`` plus scheduled one-shot wakes.

    Subclasses override :meth:`act` (called every ``interval_s`` with a
    frozen observation) and/or :meth:`wakes`/:meth:`on_wake` (absolute-
    time callbacks that survive off-grid schedule times).  ``act``
    returning ``None`` means "no command this tick".
    """

    STATE_VERSION = 1
    name = "controller"
    #: Seconds between periodic act() calls; None disables the tick.
    interval_s: Optional[float] = None

    def wakes(self, clock) -> Tuple[Tuple[float, str], ...]:
        """(absolute seconds, tag) pairs to schedule at campaign start."""
        return ()

    def on_wake(self, actuators, tag: str, when: float) -> None:
        """Handle one scheduled wake (tag is controller-defined)."""

    def act(self, obs) -> Optional[ControlAction]:
        """Periodic policy step; return commands or None."""
        return None

    @property
    def spec(self) -> ControllerSpec:
        return ControllerSpec(name=self.name)

    def state_dict(self) -> Dict[str, Any]:
        return {"version": self.STATE_VERSION}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        version = int(state.get("version", 0))
        if version != self.STATE_VERSION:
            raise StateError(
                f"{type(self).__name__} snapshot version {version} "
                f"unsupported (expected {self.STATE_VERSION})"
            )


class PaperOperatorController(Controller):
    """The paper's by-hand intervention schedule, replayed verbatim.

    Wraps the :class:`~repro.core.config.TentModificationPlan` sequence
    as wake events so the historical run stays byte-identical: same
    key, same times, same application order as the old open-loop replay
    in the campaign builder.
    """

    name = "paper-operator"

    def __init__(self, plans: Tuple) -> None:
        self.plans = tuple(plans)
        self.applied: List[str] = []

    @classmethod
    def from_config(cls, config) -> "PaperOperatorController":
        return cls(config.modification_plans)

    def wakes(self, clock) -> Tuple[Tuple[float, str], ...]:
        return tuple(
            (clock.to_seconds(plan.date), plan.modification.letter)
            for plan in self.plans
        )

    def on_wake(self, actuators, tag: str, when: float) -> None:
        actuators.apply_modification(Modification(tag), when)
        self.applied.append(tag)

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["applied"] = list(self.applied)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.applied = [str(letter) for letter in state["applied"]]


class ThermostatController(Controller):
    """Hysteresis flap/fan control with a minimum dwell time.

    Calls for cooling when the tent runs hotter than
    ``setpoint_c + band_c / 2`` (flap open, fan at full duty) and stands
    down below ``setpoint_c - band_c / 2``; inside the band it holds the
    last decision.  A switch is only honoured once ``min_dwell_s`` has
    elapsed since the previous one, so adversarial weather oscillating
    across the band cannot chatter the actuators.
    """

    name = "thermostat"
    interval_s = 300.0

    def __init__(
        self,
        setpoint_c: float = 26.0,
        band_c: float = 4.0,
        min_dwell_s: float = 3600.0,
        interval_s: float = 300.0,
    ) -> None:
        self.setpoint_c = float(setpoint_c)
        self.band_c = float(band_c)
        self.min_dwell_s = float(min_dwell_s)
        self.interval_s = float(interval_s)
        self.cooling = False
        #: Time of the last honoured switch; -inf means "never switched"
        #: so the first decision is always free.
        self.last_switch_s = float("-inf")

    @property
    def spec(self) -> ControllerSpec:
        return ControllerSpec(
            name=self.name,
            params=(
                ("setpoint_c", self.setpoint_c),
                ("band_c", self.band_c),
                ("min_dwell_s", self.min_dwell_s),
                ("interval_s", self.interval_s),
            ),
        )

    def act(self, obs) -> Optional[ControlAction]:
        half_band = self.band_c / 2.0
        want = self.cooling
        if obs.tent_temp_c > self.setpoint_c + half_band:
            want = True
        elif obs.tent_temp_c < self.setpoint_c - half_band:
            want = False
        if want == self.cooling:
            return None
        if obs.time_s - self.last_switch_s < self.min_dwell_s:
            return None
        self.cooling = want
        self.last_switch_s = obs.time_s
        return ControlAction(flap=want, fan_duty=1.0 if want else 0.0)

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["cooling"] = self.cooling
        state["last_switch_s"] = self.last_switch_s
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self.cooling = bool(state["cooling"])
        self.last_switch_s = float(state["last_switch_s"])


class ModelFreeSetpointController(Controller):
    """Model-free intelligent-P setpoint control after Fliess et al.

    The tent is treated as the ultra-local model ``ydot = F + alpha * u``
    where ``u`` is economizer fan duty and ``F`` absorbs everything
    unmodelled (weather, IT load, envelope state).  Each tick the
    controller estimates ``F`` from the last measured slope and its own
    previous command, then synthesises the duty that cancels ``F`` and
    closes a proportional loop on the setpoint error::

        F_hat = ydot_measured - alpha * u_prev
        u     = clamp((-F_hat + kp * (setpoint - y)) / alpha, 0, 1)

    ``alpha_c`` is the assumed cooling authority in degC/hour at full
    duty; cooling means ``alpha`` enters negatively, hence the sign
    arrangement below.
    """

    name = "model-free"
    interval_s = 300.0

    def __init__(
        self,
        setpoint_c: float = 24.0,
        kp: float = 0.4,
        alpha_c: float = 3.0,
        interval_s: float = 300.0,
    ) -> None:
        self.setpoint_c = float(setpoint_c)
        self.kp = float(kp)
        #: Cooling authority, degC per hour at full fan duty (positive).
        self.alpha_c = float(alpha_c)
        self.interval_s = float(interval_s)
        self.prev_temp_c: Optional[float] = None
        self.prev_time_s: Optional[float] = None
        self.duty = 0.0

    @property
    def spec(self) -> ControllerSpec:
        return ControllerSpec(
            name=self.name,
            params=(
                ("setpoint_c", self.setpoint_c),
                ("kp", self.kp),
                ("alpha_c", self.alpha_c),
                ("interval_s", self.interval_s),
            ),
        )

    def act(self, obs) -> Optional[ControlAction]:
        if self.prev_temp_c is None or self.prev_time_s is None:
            self.prev_temp_c = obs.tent_temp_c
            self.prev_time_s = obs.time_s
            return None
        dt_h = (obs.time_s - self.prev_time_s) / 3600.0
        if dt_h <= 0.0:
            return None
        ydot = (obs.tent_temp_c - self.prev_temp_c) / dt_h
        # Full duty cools: the ultra-local model is ydot = F - alpha*u.
        f_hat = ydot + self.alpha_c * self.duty
        error = obs.tent_temp_c - self.setpoint_c
        duty = clamp_fraction((f_hat + self.kp * error) / self.alpha_c)
        self.prev_temp_c = obs.tent_temp_c
        self.prev_time_s = obs.time_s
        if duty == self.duty:
            return None
        self.duty = duty
        return ControlAction(fan_duty=duty)

    def state_dict(self) -> Dict[str, Any]:
        state = super().state_dict()
        state["prev_temp_c"] = self.prev_temp_c
        state["prev_time_s"] = self.prev_time_s
        state["duty"] = self.duty
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        prev_temp = state["prev_temp_c"]
        prev_time = state["prev_time_s"]
        self.prev_temp_c = None if prev_temp is None else float(prev_temp)
        self.prev_time_s = None if prev_time is None else float(prev_time)
        self.duty = float(state["duty"])


def _make_paper_operator(config, **params) -> Controller:
    """Replay the paper's recorded R/I/B/F/D schedule (the default)."""
    return PaperOperatorController.from_config(config)


def _make_thermostat(config, **params) -> Controller:
    """Hysteresis flap/fan thermostat with anti-chatter min-dwell."""
    return ThermostatController(**params)


def _make_model_free(config, **params) -> Controller:
    """Model-free intelligent-P fan-duty synthesis (Fliess et al.)."""
    return ModelFreeSetpointController(**params)


#: Controller registry: name -> factory(config, **params).
CONTROLLERS: Dict[str, Callable[..., Controller]] = {
    "paper-operator": _make_paper_operator,
    "thermostat": _make_thermostat,
    "model-free": _make_model_free,
}


def controller_names() -> Tuple[str, ...]:
    return tuple(sorted(CONTROLLERS))


def controller_doc(name: str) -> str:
    """First docstring line of a registered controller factory."""
    doc = CONTROLLERS[name].__doc__ or ""
    return doc.strip().splitlines()[0] if doc.strip() else ""


def controller_from_spec(spec: ControllerSpec, config) -> Controller:
    """Rebuild a controller from its checkpointed spec."""
    if spec.name not in CONTROLLERS:
        raise StateError(f"unknown controller in checkpoint: {spec.name!r}")
    return CONTROLLERS[spec.name](config, **spec.as_kwargs())


def resolve_controller(
    controller: Union[None, str, Controller], config
) -> Controller:
    """Accept a name, an instance, or None (the paper-operator default)."""
    if controller is None:
        controller = "paper-operator"
    if isinstance(controller, str):
        if controller not in CONTROLLERS:
            known = ", ".join(controller_names())
            raise ValueError(
                f"unknown controller {controller!r} (known: {known})"
            )
        return CONTROLLERS[controller](config)
    return controller
