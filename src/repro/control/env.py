"""Gym-style episode facade over a campaign.

:class:`ControlEnv` exposes the ``reset() / step(action)`` loop of the
DRL free-cooled-datacenter literature (Le et al.) on our plant.  The
first ``reset()`` builds a campaign, advances it to the episode start,
and caches a :class:`~repro.state.checkpoint.CampaignCheckpoint` in
memory; every later ``reset()`` restores that checkpoint instead of
re-running the warm-up, which is what makes thousand-episode training
loops affordable.

``step`` applies the supplied action at the paused instant, advances one
control interval, and returns ``(obs, reward, done, info)``.  The reward
is a configurable weighted penalty on energy burned, failures logged,
and SLA lost (shed host-hours) over the interval -- all negated, so "do
nothing while nothing breaks" scores near zero and better operation
scores higher.

Everything stays deterministic: same seed + same action trace =>
byte-identical observation and reward traces, and a mid-episode
``campaign.checkpoint()`` resumes exactly (controller and actuator state
ride along in the campaign's ``control`` component).
"""

from __future__ import annotations

import dataclasses
import datetime as dt
from typing import Any, Dict, Optional, Tuple, Union

from repro.control.controllers import ControlAction, Controller
from repro.control.observation import ControlObservation


@dataclasses.dataclass(frozen=True)
class RewardSpec:
    """Weights of the per-step penalty terms (all applied to deltas).

    ``reward = -(energy_weight * kWh + failure_weight * faults
    + sla_weight * shed host-hours)`` per interval.
    """

    energy_weight: float = 1.0
    failure_weight: float = 10.0
    sla_weight: float = 1.0


class ControlEnv:
    """``reset() / step(action)`` over one campaign configuration.

    Parameters mirror the campaign builder: ``config`` (default paper
    config), ``controller`` (name or instance; the in-campaign policy,
    usually ``"paper-operator"`` so the historical schedule still plays
    under the agent's actions), episode window, control interval, reward
    weights, and fleet backend.
    """

    def __init__(
        self,
        config=None,
        controller: Union[None, str, Controller] = "paper-operator",
        episode_start: Optional[dt.datetime] = None,
        episode_end: Optional[dt.datetime] = None,
        interval_s: Optional[float] = None,
        reward: RewardSpec = RewardSpec(),
        fleet_backend: str = "columnar",
    ) -> None:
        from repro.core.config import ExperimentConfig

        self.config = config if config is not None else ExperimentConfig()
        self.controller = controller
        self.episode_start = (
            episode_start
            if episode_start is not None
            else dt.datetime(2010, 3, 1, 12, 0)
        )
        self.episode_end = (
            episode_end if episode_end is not None else self.config.end_date
        )
        if self.episode_end <= self.episode_start:
            raise ValueError("episode_end must fall after episode_start")
        self.interval_s = (
            float(interval_s)
            if interval_s is not None
            else float(self.config.tick_interval_s)
        )
        self.reward = reward
        self.fleet_backend = fleet_backend
        self.campaign = None
        self._checkpoint = None
        self._end_s: Optional[float] = None
        self._energy_cursor = 0.0
        self._failure_cursor = 0
        self.episodes = 0
        self.steps = 0

    # ------------------------------------------------------------------
    # Episode lifecycle
    # ------------------------------------------------------------------
    def _build(self):
        from repro.core.builder import CampaignBuilder

        campaign = (
            CampaignBuilder(self.config)
            .with_fleet_backend(self.fleet_backend)
            .with_controller(self.controller)
            .build()
        )
        campaign.begin(until=self.episode_end)
        campaign.advance_to(self.episode_start)
        return campaign

    def reset(self) -> ControlObservation:
        """Start a fresh episode at the cached warm-up point."""
        if self._checkpoint is None:
            self.campaign = self._build()
            self._checkpoint = self.campaign.checkpoint()
        else:
            from repro.core.builder import Campaign

            self.campaign = Campaign.restore(self._checkpoint)
        self._end_s = self.campaign.clock.to_seconds(self.episode_end)
        self._energy_cursor = self.campaign.powermeter.energy_kwh
        self._failure_cursor = len(self.campaign.fleet.fault_log.events)
        self.episodes += 1
        self.steps = 0
        return self.campaign.control.observe(self.campaign.sim.now)

    def step(
        self, action: Optional[ControlAction] = None
    ) -> Tuple[ControlObservation, float, bool, Dict[str, Any]]:
        """Apply ``action`` now, advance one interval, score the delta."""
        if self.campaign is None or self._end_s is None:
            raise RuntimeError("call reset() before step()")
        campaign = self.campaign
        now = campaign.sim.now
        applied = 0
        if action is not None:
            applied = campaign.control.apply(action, now)
        target = min(now + self.interval_s, self._end_s)
        campaign.advance_to(target)
        obs = campaign.control.observe(campaign.sim.now)

        energy_kwh = campaign.powermeter.energy_kwh - self._energy_cursor
        failures = len(campaign.fleet.fault_log.events) - self._failure_cursor
        self._energy_cursor = campaign.powermeter.energy_kwh
        self._failure_cursor = len(campaign.fleet.fault_log.events)
        interval_h = (campaign.sim.now - now) / 3600.0
        shed_host_hours = obs.hosts_shed * interval_h
        reward = -(
            self.reward.energy_weight * energy_kwh
            + self.reward.failure_weight * failures
            + self.reward.sla_weight * shed_host_hours
        )
        done = campaign.sim.now >= self._end_s
        self.steps += 1
        info = {
            "energy_kwh": energy_kwh,
            "failures": failures,
            "shed_host_hours": shed_host_hours,
            "actions_applied": applied,
            "step": self.steps,
            "time_s": campaign.sim.now,
        }
        return obs, reward, done, info

    def close(self) -> None:
        """Drop the live campaign (the cached checkpoint is kept)."""
        self.campaign = None
