"""The frozen observation a controller sees each control tick.

A :class:`ControlObservation` is a value object: everything a closed-loop
policy may condition on, sampled at one instant, with no live references
back into the simulation.  Freezing the observation keeps controllers
honest (they cannot reach around the actuator bus and poke the plant)
and keeps episodes replayable -- the observation trace plus the action
trace fully determine a run.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple


@dataclasses.dataclass(frozen=True)
class ControlObservation:
    """One frozen sample of campaign state for a controller.

    Weather comes from the synthetic station (deterministic per seed),
    thermal readings from the enclosure models, census numbers from the
    fleet, and actuator echoes from the bus so a policy can see its own
    previous commands without keeping private state.
    """

    #: Simulation time, seconds since campaign start.
    time_s: float
    # Weather at the site.
    outside_temp_c: float
    outside_rh_percent: float
    wind_ms: float
    solar_wm2: float
    # Enclosure readings.
    tent_temp_c: float
    tent_rh_percent: float
    basement_temp_c: float
    # Fleet census.
    hosts_running: int
    hosts_shed: int
    failures_total: int
    # Actuator echoes and plant status.
    flap_open: bool
    fan_duty: float
    tripped: bool
    #: Cumulative metered energy so reward deltas need no second probe.
    energy_kwh: float
    #: Letters of envelope modifications applied so far, in order.
    modifications: Tuple[str, ...] = ()
