"""The control plane: wires one controller to one campaign's actuators.

The plane owns the :class:`~repro.control.actuators.ActuatorBus`, turns
the controller's declared *wakes* into engine events (keeping the
historical ``campaign.tent_mod`` key so the default schedule replays
byte-identically), drives the periodic ``act`` loop when the controller
wants one, and snapshots controller + bus state as one campaign
component so kill-and-resume lands mid-episode exactly where it left
off.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.control.actuators import ActuatorBus
from repro.control.controllers import ControlAction, Controller
from repro.control.observation import ControlObservation
from repro.state.protocol import check_version
from repro.thermal.tent import Modification

#: Engine key for scheduled controller wakes.  Kept under its historical
#: name: the pinned seed-7 queue snapshot and event labels predate the
#: control plane and must not shift.
WAKE_KEY = "campaign.tent_mod"
TICK_KEY = "control.tick"


class ControlPlane:
    """Controller <-> campaign glue, snapshot-safe on both backends."""

    STATE_VERSION = 1

    def __init__(
        self,
        sim,
        fleet,
        controller: Controller,
        clock,
        powermeter=None,
        telemetry=None,
    ) -> None:
        self.sim = sim
        self.fleet = fleet
        self.controller = controller
        self.clock = clock
        self.powermeter = powermeter
        self.telemetry = telemetry
        #: Set by the campaign when a chaos plant is armed, so trip
        #: status can appear in observations.
        self.plant = None
        self.actuators = ActuatorBus(fleet)
        self.ticks = 0
        self._tick_task = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def register_keys(self, sim) -> None:
        sim.register(WAKE_KEY, self._on_wake)
        sim.register(TICK_KEY, self._tick)

    def schedule_wakes(self, end: float) -> None:
        """Schedule the controller's one-shot wakes up to ``end``."""
        for when, tag in self.controller.wakes(self.clock):
            if when > end:
                continue
            self.sim.schedule_at_key(
                when,
                WAKE_KEY,
                args=(tag, when),
                label=f"tent-mod.{tag}",
            )

    def start_ticking(self, start: float) -> None:
        """Begin the periodic act loop, if the controller wants one."""
        interval = self.controller.interval_s
        if interval is None:
            return
        self._tick_task = self.sim.every_key(
            float(interval), TICK_KEY, start=start, label="control-tick"
        )

    def _on_wake(self, tag: str, when: float) -> None:
        self.controller.on_wake(self.actuators, tag, when)
        self._count("control.wakes")

    def _tick(self) -> None:
        now = self.sim.now
        self.ticks += 1
        obs = self.observe(now)
        action = self.controller.act(obs)
        if action is not None:
            self.apply(action, now)

    # ------------------------------------------------------------------
    # Observation and action
    # ------------------------------------------------------------------
    def observe(self, now: float) -> ControlObservation:
        """One frozen snapshot of campaign state at ``now``."""
        weather = self.fleet.weather.sample(now)
        tent = self.fleet.tent
        basement = self.fleet.basement
        running, shed = self.fleet.host_census()
        tripped = bool(self.plant.tripped) if self.plant is not None else False
        energy = self.powermeter.energy_kwh if self.powermeter is not None else 0.0
        return ControlObservation(
            time_s=float(now),
            outside_temp_c=float(weather.temp_c),
            outside_rh_percent=float(weather.rh_percent),
            wind_ms=float(weather.wind_ms),
            solar_wm2=float(weather.solar_wm2),
            tent_temp_c=float(tent.intake_temp_c),
            tent_rh_percent=float(tent.intake_rh_percent),
            basement_temp_c=float(basement.intake_temp_c),
            hosts_running=running,
            hosts_shed=shed,
            failures_total=len(self.fleet.fault_log.events),
            flap_open=self.actuators.flap_open,
            fan_duty=self.actuators.fan_duty,
            tripped=tripped,
            energy_kwh=float(energy),
            modifications=tuple(
                mod.letter for _, mod in tent.modification_log
            ),
        )

    def apply(self, action: ControlAction, now: float) -> int:
        """Route one action bundle to the bus; returns commands applied."""
        before = self.actuators.actions_applied
        for letter in action.modifications:
            self.actuators.apply_modification(Modification(letter), now)
        if action.flap is not None:
            self.actuators.set_flap(action.flap, now)
        if action.fan_duty is not None:
            self.actuators.set_fan_duty(action.fan_duty, now)
        if action.crac_setpoint_c is not None:
            self.actuators.set_crac_setpoint(action.crac_setpoint_c, now)
        if action.shed_fraction is not None:
            self.actuators.set_load_shed(action.shed_fraction, now)
        if action.dvfs_scale is not None:
            self.actuators.set_dvfs(action.dvfs_scale, now)
        applied = self.actuators.actions_applied - before
        if applied:
            self._count("control.actions", applied)
        return applied

    def _count(self, name: str, value: int = 1) -> None:
        if self.telemetry is not None:
            self.telemetry.counter(name).inc(value)

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": self.STATE_VERSION,
            "ticks": self.ticks,
            "tick_task_id": (
                None if self._tick_task is None else self._tick_task.task_id
            ),
            "actuators": self.actuators.state_dict(),
            "controller": self.controller.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("control", state, self.STATE_VERSION)
        self.ticks = int(state["ticks"])
        self._pending_task_id = state["tick_task_id"]
        self.actuators.load_state_dict(state["actuators"])
        self.controller.load_state_dict(state["controller"])

    def rebind(self) -> None:
        """Re-attach the periodic tick task after an engine restore."""
        task_id = getattr(self, "_pending_task_id", None)
        if task_id is not None:
            self._tick_task = self.sim.periodic_task(int(task_id))
        self._pending_task_id = None
