"""The paper's contribution: the zero-degrees experiment, end to end.

- :mod:`repro.core.config` -- every date, host, and policy knob of the
  campaign, defaulting to the paper's own timeline,
- :mod:`repro.core.deployment` -- the pairwise tent/basement fleet and the
  Fig. 2 install schedule,
- :mod:`repro.core.protocol` -- the operator playbook (resets, warm
  reboots, replacements, switch repairs),
- :mod:`repro.core.experiment` -- the two-phase driver (prototype weekend,
  then the full campaign),
- :mod:`repro.core.results` -- everything a finished run exposes,
- :mod:`repro.core.reporting` -- paper-style textual reports.
"""

from repro.core.builder import Campaign, CampaignBuilder, DEFAULT_INSTRUMENTS
from repro.core.config import ExperimentConfig, HostPlan, TentModificationPlan
from repro.core.deployment import Fleet, paper_install_plan
from repro.core.experiment import Experiment
from repro.core.protocol import OperatorPolicy
from repro.core.results import ExperimentResults, PrototypeResult
from repro.core.scenarios import (
    SCENARIOS,
    conditioned_tent,
    extended_year,
    harsher_winter,
    no_modifications,
    paper_campaign,
    scenario_config,
)

__all__ = [
    "Campaign",
    "CampaignBuilder",
    "DEFAULT_INSTRUMENTS",
    "ExperimentConfig",
    "HostPlan",
    "TentModificationPlan",
    "Fleet",
    "paper_install_plan",
    "OperatorPolicy",
    "Experiment",
    "ExperimentResults",
    "PrototypeResult",
    "SCENARIOS",
    "paper_campaign",
    "no_modifications",
    "conditioned_tent",
    "extended_year",
    "harsher_winter",
    "scenario_config",
]
