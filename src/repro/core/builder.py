"""Composable campaign assembly: the builder behind :class:`Experiment`.

The experiment driver used to hard-wire every subsystem in its
``__init__``.  :class:`CampaignBuilder` replaces that: it assembles a
:class:`Campaign` from the same parts in the same order, but lets callers

- drop default instruments (``without("webcam")`` builds a campaign with
  no terrace webcam and no webcam tick in the event queue),
- register extra instruments through the same ``attach(sim)/detach()``
  protocol the built-ins use (``with_instrument``), and
- subscribe observers to the campaign event bus before anything runs
  (``with_subscriber``).

Determinism contract: a default-built campaign replays the exact event
sequence the old hard-wired driver produced.  Named RNG streams make
construction order irrelevant to random draws, but the simulator breaks
time ties by scheduling order -- so the builder schedules the default
instruments in the historical order and appends extras strictly *after*
them.  Dropping a default removes its events wholesale without
renumbering anything that remains on the same tick.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Dict, List, Optional, Tuple

from repro.climate.generator import WeatherGenerator
from repro.climate.station import WeatherStation
from repro.core.config import ExperimentConfig
from repro.core.deployment import Fleet
from repro.core.protocol import OperatorPolicy
from repro.core.results import ExperimentResults, PrototypeResult, take_snapshot
from repro.hardware.faults import FaultLog
from repro.hardware.host import Host
from repro.hardware.vendors import VENDOR_A
from repro.monitoring.collector import MonitoringHost
from repro.monitoring.datalogger import LascarDataLogger
from repro.monitoring.health import HealthPolicy
from repro.monitoring.powermeter import TechnolineCostControl
from repro.monitoring.transport import LinkFaultPlan, TransferLedger
from repro.monitoring.webcam import TerraceWebcam
from repro.sim.clock import DAY, MINUTE, SimClock
from repro.sim.engine import Simulator
from repro.sim.events import EventBus, EventRecorder, SnapshotTaken
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import PlasticBoxShelter

#: Instruments a default build schedules, in their historical order.
DEFAULT_INSTRUMENTS: Tuple[str, ...] = (
    "prototype",
    "lascar",
    "powermeter",
    "webcam",
    "collector",
    "weekly-review",
    "snapshot",
)


class Campaign:
    """One fully-wired campaign: subsystems, bus, and the run driver.

    Build instances through :class:`CampaignBuilder`; the constructor
    wires the subsystems exactly the way the original hard-coded
    ``Experiment.__init__`` did, plus the event bus the fault log and
    the run recorder subscribe to.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        disabled: frozenset,
        extra_instruments: Tuple[Tuple[str, Callable[["Campaign"], object]], ...] = (),
        subscribers: Tuple[Callable[[EventBus], None], ...] = (),
        telemetry=None,
        link_faults: Optional[LinkFaultPlan] = None,
        health_policy: Optional[HealthPolicy] = None,
    ) -> None:
        self.config = config
        self._disabled = disabled
        self.clock = SimClock()
        self.sim = Simulator(self.clock)
        #: Optional :class:`~repro.telemetry.hub.Telemetry`; ``None`` keeps
        #: every hook site on its zero-overhead fast path.
        self.telemetry = telemetry
        if telemetry is not None:
            self.sim.tracer = telemetry.spans
        self.streams = RngStreams(config.seed)
        self.weather = WeatherGenerator(config.climate, self.streams, self.clock)

        # The bus first, so every producer below can be handed it; the
        # fault log subscribes before any producer exists, keeping
        # census ordering identical to the old direct-record wiring.
        self.bus = EventBus()
        self.fault_log = FaultLog()
        self.fault_log.attach_bus(self.bus)
        self.recorder = EventRecorder()
        self.recorder.attach(self.bus)

        self.station = WeatherStation(self.weather, self.streams)
        self.fleet = Fleet(
            self.sim, config, self.streams, self.weather, self.fault_log, bus=self.bus
        )
        self.policy = OperatorPolicy(
            self.sim, config, self.fleet, self.fault_log, bus=self.bus
        )
        self.transfers = TransferLedger()
        self.monitoring = MonitoringHost(
            self.sim,
            on_down_host=self.policy.on_down_host,
            on_unreachable=self.policy.on_unreachable,
            on_sensor_anomaly=self.policy.on_sensor_anomaly,
            transport=self.transfers,
            workload_ledger=self.fleet.ledger,
            bus=self.bus,
            telemetry=telemetry,
            link_faults=link_faults,
            health=health_policy,
        )
        self.policy.bind_monitoring(self.monitoring)

        self.lascar = LascarDataLogger(
            self.fleet.tent,
            self.streams,
            arrival_time=self.clock.to_seconds(config.lascar_arrival),
        )
        self.powermeter = TechnolineCostControl(self.streams)
        self.webcam = TerraceWebcam(self.weather, self.streams)

        #: Extra instruments, name -> built instance (attach/detach protocol).
        self.instruments: Dict[str, object] = {}
        for name, factory in extra_instruments:
            self.instruments[name] = factory(self)
        for subscribe in subscribers:
            subscribe(self.bus)

        self.prototype_result: Optional[PrototypeResult] = None
        self._snapshot = None
        self._ran = False

    def __repr__(self) -> str:
        state = "finished" if self._ran else "ready"
        return f"Campaign(seed={self.config.seed}, {state})"

    def enabled(self, name: str) -> bool:
        """Whether a default instrument survives this build."""
        return name not in self._disabled

    # ------------------------------------------------------------------
    # Public driver
    # ------------------------------------------------------------------
    def run(self, until: Optional[_dt.datetime] = None) -> ExperimentResults:
        """Run prototype + campaign and return the results.

        ``until`` truncates the campaign (tests use short horizons); the
        default runs to ``config.end_date``.
        """
        if self._ran:
            raise RuntimeError("a Campaign instance runs exactly once")
        self._ran = True
        end_date = until if until is not None else self.config.end_date
        end = self.clock.to_seconds(end_date)
        proto_end = self.clock.to_seconds(self.config.prototype_end)
        if end < proto_end:
            raise ValueError("campaign end precedes the prototype weekend")

        if self.telemetry is None:
            return self._drive(end)
        with self.telemetry.span("campaign.run"):
            results = self._drive(end)
        self._record_run_metrics()
        return results

    def _drive(self, end: float) -> ExperimentResults:
        self.station.attach(
            self.sim, start=self.clock.to_seconds(self.config.prototype_start)
        )
        if self.enabled("prototype"):
            self.prototype_result = self._run_prototype()
        self._schedule_campaign(end)
        self.sim.run_until(end)
        return self._build_results(end)

    def _record_run_metrics(self) -> None:
        """End-of-run engine/bus state, frozen into the metrics registry."""
        metrics = self.telemetry.metrics
        metrics.gauge("engine.events_fired").set(float(self.sim.events_fired))
        metrics.gauge("engine.events_cancelled").set(float(self.sim.events_cancelled))
        metrics.gauge("engine.pending_at_end").set(float(self.sim.pending_count))
        metrics.gauge("engine.sim_end_s").set(float(self.sim.now))
        for name, count in sorted(self.bus.counts.items()):
            metrics.counter(f"bus.events.{name}").inc(count)

    # ------------------------------------------------------------------
    # Phase 1: the plastic-box weekend
    # ------------------------------------------------------------------
    def _run_prototype(self) -> PrototypeResult:
        start = self.clock.to_seconds(self.config.prototype_start)
        end = self.clock.to_seconds(self.config.prototype_end)
        shelter = PlasticBoxShelter("plastic-boxes", self.weather)
        proto_host = Host(
            host_id=0,
            spec=VENDOR_A,
            streams=self.streams,
            transient_model=self.config.transient_model,
            memory_fault_ratio=self.config.memory_model.page_fault_ratio,
            bus=self.bus,
        )
        cpu_temps: List[float] = []
        dt = self.config.tick_interval_s

        def tick() -> None:
            now = self.sim.now
            if now == start:
                proto_host.install(shelter, now)
            shelter.set_it_load(proto_host.average_power_w)
            shelter.advance(now)
            if proto_host.running:
                proto_host.tick(dt, now, self.fault_log)
                # The tick itself can fail the host; only a survivor
                # contributes a CPU sample.
                if proto_host.running:
                    cpu_temps.append(proto_host.cpu_temp_c())

        handle = self.sim.every(dt, tick, start=start, label="prototype-tick")
        self.sim.run_until(end)
        handle.cancel()
        survived = proto_host.running
        if proto_host.running:
            proto_host.retire(end)  # the borrowed boxes had to be returned

        window = [r for r in self.station.readings if start <= r.time <= end]
        temps = [r.temp_c for r in window]
        return PrototypeResult(
            start=start,
            end=end,
            outside_min_c=min(temps) if temps else float("nan"),
            outside_mean_c=sum(temps) / len(temps) if temps else float("nan"),
            cpu_min_c=min(cpu_temps) if cpu_temps else float("nan"),
            survived=survived,
        )

    # ------------------------------------------------------------------
    # Phase 2: the campaign
    # ------------------------------------------------------------------
    def _schedule_campaign(self, end: float) -> None:
        test_start = self.clock.to_seconds(self.config.test_start)

        def erect_tent() -> None:
            self.fleet.power_tent_switches()

        self.sim.schedule_at(test_start, erect_tent, label="erect-tent")
        self.fleet.start_ticking(test_start)

        for plan in self.config.host_plans:
            if plan.install_date is None:
                continue
            self.sim.schedule_datetime(
                plan.install_date,
                lambda p=plan: self._install(p.host_id, p.group),
                label=f"install.host{plan.host_id:02d}",
            )

        for mod_plan in self.config.modification_plans:
            when = self.clock.to_seconds(mod_plan.date)
            if when > end:
                continue
            self.sim.schedule_at(
                when,
                lambda m=mod_plan.modification, t=when: self.fleet.apply_tent_modification(m, t),
                label=f"tent-mod.{mod_plan.modification.letter}",
            )

        if self.enabled("lascar"):
            self.sim.schedule_at(
                test_start, lambda: self.lascar.attach(self.sim), label="lascar"
            )
            trip = self.lascar.arrival_time + self.config.logger_download_interval_days * DAY
            while trip < end:
                self.lascar.schedule_download_trip(
                    trip, duration_s=self.config.logger_download_duration_min * MINUTE
                )
                trip += self.config.logger_download_interval_days * DAY

        if self.enabled("powermeter"):
            self.sim.schedule_at(
                test_start, lambda: self.powermeter.attach(self.sim), label="powermeter"
            )
        if self.enabled("webcam"):
            self.sim.schedule_at(
                test_start, lambda: self.webcam.attach(self.sim), label="webcam"
            )
        if self.enabled("collector"):
            self.sim.schedule_at(
                test_start + 10 * MINUTE, lambda: self.monitoring.attach(), label="collector"
            )
        if self.enabled("weekly-review"):
            # Weekly lab review: triage new wrong hashes with S.M.A.R.T. runs.
            self.sim.every(
                7 * DAY, self.policy.weekly_review, start=test_start + 7 * DAY,
                label="weekly-review",
            )

        if self.enabled("snapshot"):
            snapshot_t = self.clock.to_seconds(self.config.snapshot_date)
            if snapshot_t <= end:

                def freeze_snapshot() -> None:
                    census = take_snapshot(
                        self.config, self.fleet.ledger, self.fault_log, snapshot_t
                    )
                    self._snapshot = census
                    self.bus.publish(SnapshotTaken(time=snapshot_t, census=census))

                self.sim.schedule_at(snapshot_t, freeze_snapshot, label="paper-snapshot")

        # Extra instruments attach strictly after the defaults, so their
        # presence never renumbers the defaults' same-tick tie-breaks.
        for name, instrument in self.instruments.items():
            self.sim.schedule_at(
                test_start,
                lambda i=instrument: i.attach(self.sim),
                label=f"instrument.{name}",
            )

    def _install(self, host_id: int, group: str) -> None:
        now = self.sim.now
        enclosure = self.fleet.enclosure_for_group(group)
        host = self.fleet.install(host_id, enclosure, now)
        if group == "tent":
            chain = [self.fleet.next_tent_switch()]
            self.powermeter.plug_in(host)
        else:
            chain = [self.fleet.next_basement_switch()]
        self.monitoring.register(host, chain)

    # ------------------------------------------------------------------
    def _build_results(self, end: float) -> ExperimentResults:
        return ExperimentResults(
            config=self.config,
            clock=self.clock,
            fleet=self.fleet,
            station=self.station,
            lascar=self.lascar,
            powermeter=self.powermeter,
            monitoring=self.monitoring,
            policy=self.policy,
            webcam=self.webcam,
            fault_log=self.fault_log,
            prototype=self.prototype_result,
            snapshot=self._snapshot,
            end_time=end,
            bus=self.bus,
            recorder=self.recorder,
            telemetry=self.telemetry,
        )


class CampaignBuilder:
    """Fluent assembly of a :class:`Campaign`.

    Examples
    --------
    The default build is the paper's campaign::

        campaign = CampaignBuilder(ExperimentConfig(seed=7)).build()
        results = campaign.run()

    A stripped-down build with a custom instrument and a bus observer::

        failures = []
        campaign = (
            CampaignBuilder(config)
            .without("webcam")
            .with_instrument("co2-meter", lambda c: Co2Meter(c.streams))
            .with_subscriber(lambda bus: bus.subscribe(HostFailed, failures.append))
            .build()
        )
    """

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self._disabled: set = set()
        self._extra: List[Tuple[str, Callable[[Campaign], object]]] = []
        self._subscribers: List[Callable[[EventBus], None]] = []
        self._telemetry = None
        self._link_faults: Optional[LinkFaultPlan] = None
        self._health_policy: Optional[HealthPolicy] = None

    def without(self, name: str) -> "CampaignBuilder":
        """Drop one default instrument (see :data:`DEFAULT_INSTRUMENTS`)."""
        if name not in DEFAULT_INSTRUMENTS:
            raise ValueError(
                f"unknown default instrument {name!r}; "
                f"choose from {', '.join(DEFAULT_INSTRUMENTS)}"
            )
        self._disabled.add(name)
        return self

    def with_instrument(
        self, name: str, factory: Callable[[Campaign], object]
    ) -> "CampaignBuilder":
        """Register an extra instrument.

        ``factory(campaign)`` is called at build time and must return an
        object with the standard ``attach(sim)`` method; the campaign
        schedules the attach at test start, after every default.
        """
        if name in DEFAULT_INSTRUMENTS:
            raise ValueError(f"{name!r} is a default instrument; use without() to drop it")
        if any(existing == name for existing, _ in self._extra):
            raise ValueError(f"instrument {name!r} already registered")
        self._extra.append((name, factory))
        return self

    def with_subscriber(
        self, subscribe: Callable[[EventBus], None]
    ) -> "CampaignBuilder":
        """Register a bus observer; called with the bus at build time."""
        self._subscribers.append(subscribe)
        return self

    def with_telemetry(self, telemetry=None) -> "CampaignBuilder":
        """Opt the campaign into telemetry.

        ``telemetry`` is a :class:`~repro.telemetry.hub.Telemetry` to
        fill (pass one to share a registry across campaigns); omitted, a
        fresh one is created.  The built campaign wires it everywhere:
        the engine traces every event callback as ``engine.<label>``,
        the monitoring host times and tallies each collection round, and
        the run driver freezes end-of-run engine/bus state into gauges
        and counters.  The finished run exposes it as
        ``results.telemetry``.
        """
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self._telemetry = telemetry
        return self

    def with_link_faults(self, plan: LinkFaultPlan) -> "CampaignBuilder":
        """Inject a deterministic transport-fault plan into the rounds.

        ``plan`` is a :class:`~repro.monitoring.transport.LinkFaultPlan`
        (see also :meth:`LinkFaultPlan.parse` for the CLI spec syntax).
        Faults degrade *observation only*: the simulated hardware and
        its census are untouched.  Pair a storm with
        :meth:`with_health_policy` to keep false alarms away from the
        operator.
        """
        if not isinstance(plan, LinkFaultPlan):
            raise TypeError(f"expected a LinkFaultPlan, got {plan!r}")
        self._link_faults = plan
        return self

    def with_health_policy(self, policy: HealthPolicy) -> "CampaignBuilder":
        """Set the collector's host-health policy.

        ``policy`` is a :class:`~repro.monitoring.health.HealthPolicy`;
        its ``confirm_rounds`` delays operator interventions until an
        outage repeats, and its ``retry`` grants in-round SSH retries.
        The default policy reproduces the historical collector.
        """
        if not isinstance(policy, HealthPolicy):
            raise TypeError(f"expected a HealthPolicy, got {policy!r}")
        self._health_policy = policy
        return self

    def build(self) -> Campaign:
        """Assemble the campaign (construction wires, nothing runs yet)."""
        return Campaign(
            self.config,
            disabled=frozenset(self._disabled),
            extra_instruments=tuple(self._extra),
            subscribers=tuple(self._subscribers),
            telemetry=self._telemetry,
            link_faults=self._link_faults,
            health_policy=self._health_policy,
        )
