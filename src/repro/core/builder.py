"""Composable campaign assembly: the builder behind :class:`Experiment`.

The experiment driver used to hard-wire every subsystem in its
``__init__``.  :class:`CampaignBuilder` replaces that: it assembles a
:class:`Campaign` from the same parts in the same order, but lets callers

- drop default instruments (``without("webcam")`` builds a campaign with
  no terrace webcam and no webcam tick in the event queue),
- register extra instruments through the same ``attach(sim)/detach()``
  protocol the built-ins use (``with_instrument``), and
- subscribe observers to the campaign event bus before anything runs
  (``with_subscriber``).

Determinism contract: a default-built campaign replays the exact event
sequence the old hard-wired driver produced.  Named RNG streams make
construction order irrelevant to random draws, but the simulator breaks
time ties by scheduling order -- so the builder schedules the default
instruments in the historical order and appends extras strictly *after*
them.  Dropping a default removes its events wholesale without
renumbering anything that remains on the same tick.
"""

from __future__ import annotations

import datetime as _dt
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.climate.generator import WeatherGenerator
from repro.climate.station import WeatherStation
from repro.control.controllers import (
    CONTROLLERS,
    Controller,
    controller_from_spec,
    resolve_controller,
)
from repro.control.plane import ControlPlane
from repro.core.config import ExperimentConfig
from repro.core.deployment import Fleet
from repro.core.protocol import OperatorPolicy
from repro.core.results import ExperimentResults, PrototypeResult, take_snapshot
from repro.hardware.faults import FaultLog
from repro.hardware.host import Host
from repro.hardware.vendors import VENDOR_A
from repro.monitoring.collector import MonitoringHost
from repro.monitoring.datalogger import LascarDataLogger
from repro.monitoring.health import HealthPolicy
from repro.monitoring.powermeter import TechnolineCostControl
from repro.monitoring.transport import LinkFaultPlan, TransferLedger
from repro.monitoring.webcam import TerraceWebcam
from repro.plant.controller import PlantController
from repro.plant.faults import PlantFaultPlan
from repro.plant.trip import ThermalTripPolicy
from repro.sim.clock import DAY, MINUTE, SimClock
from repro.sim.engine import Simulator
from repro.sim.events import EventBus, EventRecorder, SnapshotTaken
from repro.sim.rng import RngStreams
from repro.state.checkpoint import (
    CampaignCheckpoint,
    DeltaCheckpointWriter,
    read_checkpoint,
    write_checkpoint,
)
from repro.state.codec import decode_value, encode_value
from repro.state.protocol import StateError
from repro.thermal.enclosure import PlasticBoxShelter

#: Instruments a default build schedules, in their historical order.
DEFAULT_INSTRUMENTS: Tuple[str, ...] = (
    "prototype",
    "lascar",
    "powermeter",
    "webcam",
    "collector",
    "weekly-review",
    "snapshot",
)


class Campaign:
    """One fully-wired campaign: subsystems, bus, and the run driver.

    Build instances through :class:`CampaignBuilder`; the constructor
    wires the subsystems exactly the way the original hard-coded
    ``Experiment.__init__`` did, plus the event bus the fault log and
    the run recorder subscribe to.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        disabled: frozenset,
        extra_instruments: Tuple[Tuple[str, Callable[["Campaign"], object]], ...] = (),
        subscribers: Tuple[Callable[[EventBus], None], ...] = (),
        telemetry=None,
        link_faults: Optional[LinkFaultPlan] = None,
        health_policy: Optional[HealthPolicy] = None,
        fleet_backend: str = "columnar",
        plant_faults: Optional[PlantFaultPlan] = None,
        trip_policy: Optional[ThermalTripPolicy] = None,
        controller=None,
    ) -> None:
        self.config = config
        self._disabled = disabled
        self.clock = SimClock()
        self.sim = Simulator(self.clock)
        #: Optional :class:`~repro.telemetry.hub.Telemetry`; ``None`` keeps
        #: every hook site on its zero-overhead fast path.
        self.telemetry = telemetry
        if telemetry is not None:
            self.sim.tracer = telemetry.spans
        self.streams = RngStreams(config.seed)
        self.weather = WeatherGenerator(config.climate, self.streams, self.clock)

        # The bus first, so every producer below can be handed it; the
        # fault log subscribes before any producer exists, keeping
        # census ordering identical to the old direct-record wiring.
        self.bus = EventBus()
        self.fault_log = FaultLog()
        self.fault_log.attach_bus(self.bus)
        self.recorder = EventRecorder()
        self.recorder.attach(self.bus)

        self.station = WeatherStation(self.weather, self.streams)
        self.fleet = Fleet(
            self.sim,
            config,
            self.streams,
            self.weather,
            self.fault_log,
            bus=self.bus,
            backend=fleet_backend,
        )
        self.policy = OperatorPolicy(
            self.sim, config, self.fleet, self.fault_log, bus=self.bus
        )
        self.transfers = TransferLedger()
        self.monitoring = MonitoringHost(
            self.sim,
            on_down_host=self.policy.on_down_host,
            on_unreachable=self.policy.on_unreachable,
            on_sensor_anomaly=self.policy.on_sensor_anomaly,
            transport=self.transfers,
            workload_ledger=self.fleet.ledger,
            bus=self.bus,
            telemetry=telemetry,
            link_faults=link_faults,
            health=health_policy,
        )
        self.policy.bind_monitoring(self.monitoring)
        self._link_faults = link_faults
        self._health_policy = health_policy

        self.lascar = LascarDataLogger(
            self.fleet.tent,
            self.streams,
            arrival_time=self.clock.to_seconds(config.lascar_arrival),
        )
        self.powermeter = TechnolineCostControl(self.streams)
        self.webcam = TerraceWebcam(self.weather, self.streams)

        # The control plane: one actuator bus plus the campaign's
        # controller (the paper's open-loop schedule by default).  Built
        # before the plant so the chaos plane can route its physical
        # actions through the same bus.
        self.control = ControlPlane(
            self.sim,
            self.fleet,
            resolve_controller(controller, config),
            self.clock,
            powermeter=self.powermeter,
            telemetry=telemetry,
        )

        # The plant chaos plane: only constructed when a fault plan or
        # trip policy is armed, so the unarmed campaign keeps its exact
        # historical bus wiring, key registry, and event sequence.
        self._plant_faults = plant_faults
        self._trip_policy = trip_policy
        plant_armed = bool(plant_faults) or trip_policy is not None
        self.plant: Optional[PlantController] = (
            PlantController(
                self.sim,
                self.fleet,
                plant_faults,
                trip_policy,
                bus=self.bus,
                actuators=self.control.actuators,
            )
            if plant_armed
            else None
        )
        self.control.plant = self.plant

        #: Extra instruments, name -> built instance (attach/detach protocol).
        self.instruments: Dict[str, object] = {}
        for name, factory in extra_instruments:
            self.instruments[name] = factory(self)
        for subscribe in subscribers:
            subscribe(self.bus)

        self.prototype_result: Optional[PrototypeResult] = None
        self._snapshot = None
        self._ran = False

        # Prototype-phase scratch state (attribute-held so the prototype
        # tick can run through the engine registry instead of a closure).
        self._proto_host: Optional[Host] = None
        self._proto_shelter: Optional[PlasticBoxShelter] = None
        self._proto_cpu_temps: List[float] = []
        self._proto_start: Optional[float] = None

        # Checkpoint plumbing (configured per run()/resume() call).
        self._end: Optional[float] = None
        self._checkpoint_every: Optional[float] = None
        self._checkpoint_dir: Optional[str] = None
        self._on_checkpoint: Optional[Callable[[Optional[str], CampaignCheckpoint], None]] = None
        self._checkpoint_writer = DeltaCheckpointWriter()
        #: Paths of checkpoints flushed by the current run, oldest first.
        self.checkpoints_written: List[str] = []

        self._register_campaign_keys()

    def __repr__(self) -> str:
        state = "finished" if self._ran else "ready"
        return f"Campaign(seed={self.config.seed}, {state})"

    def enabled(self, name: str) -> bool:
        """Whether a default instrument survives this build."""
        return name not in self._disabled

    # ------------------------------------------------------------------
    # Public driver
    # ------------------------------------------------------------------
    def run(
        self,
        until: Optional[_dt.datetime] = None,
        checkpoint_every: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        on_checkpoint: Optional[
            Callable[[Optional[str], CampaignCheckpoint], None]
        ] = None,
    ) -> ExperimentResults:
        """Run prototype + campaign and return the results.

        ``until`` truncates the campaign (tests use short horizons); the
        default runs to ``config.end_date``.  With ``checkpoint_every``
        (simulated seconds) set, the campaign pauses at each cadence
        point past the prototype weekend and flushes a
        :class:`~repro.state.checkpoint.CampaignCheckpoint` -- to
        ``checkpoint_dir`` (crash-safe atomic writes) and/or the
        ``on_checkpoint(path, checkpoint)`` callback.  Checkpointing
        never perturbs the simulation: a checkpointed run's results are
        byte-identical to an uninterrupted one.
        """
        if self._ran:
            raise RuntimeError("a Campaign instance runs exactly once")
        self._ran = True
        end_date = until if until is not None else self.config.end_date
        end = self.clock.to_seconds(end_date)
        proto_end = self.clock.to_seconds(self.config.prototype_end)
        if end < proto_end:
            raise ValueError("campaign end precedes the prototype weekend")
        self._configure_checkpoints(checkpoint_every, checkpoint_dir, on_checkpoint)

        if self.telemetry is None:
            return self._drive(end)
        with self.telemetry.span("campaign.run"):
            results = self._drive(end)
        self._record_run_metrics()
        return results

    def _configure_checkpoints(
        self,
        checkpoint_every: Optional[float],
        checkpoint_dir: Optional[str],
        on_checkpoint: Optional[Callable[[Optional[str], CampaignCheckpoint], None]],
    ) -> None:
        if checkpoint_every is not None and checkpoint_every <= 0:
            raise ValueError("checkpoint_every must be positive")
        if checkpoint_every is None and (checkpoint_dir or on_checkpoint):
            raise ValueError("checkpoint_dir/on_checkpoint need checkpoint_every")
        self._checkpoint_every = checkpoint_every
        self._checkpoint_dir = checkpoint_dir
        self._on_checkpoint = on_checkpoint
        # Fresh chain per configured run: the first cut is always a full
        # schema-1 file, later cuts are deltas against their predecessor.
        self._checkpoint_writer = DeltaCheckpointWriter()

    def _drive(self, end: float) -> ExperimentResults:
        self._begin(end)
        self._run_to(end)
        return self._build_results(end)

    def _begin(self, end: float) -> None:
        """Attach the station, run the prototype, schedule the campaign."""
        self._end = end
        self.station.attach(
            self.sim, start=self.clock.to_seconds(self.config.prototype_start)
        )
        if self.enabled("prototype"):
            self.prototype_result = self._run_prototype()
        self._schedule_campaign(end)

    # ------------------------------------------------------------------
    # Stepped driver (the ControlEnv facade): begin once, advance in
    # arbitrary increments, build results at the horizon.  run() is the
    # one-shot composition of the same pieces, so a stepped campaign
    # fires the exact event sequence a run() campaign does.
    # ------------------------------------------------------------------
    def begin(self, until: Optional[_dt.datetime] = None) -> float:
        """Schedule the full campaign without running it; returns the
        horizon in simulated seconds.  Drive with :meth:`advance_to`."""
        if self._ran:
            raise RuntimeError("a Campaign instance runs exactly once")
        self._ran = True
        end_date = until if until is not None else self.config.end_date
        end = self.clock.to_seconds(end_date)
        proto_end = self.clock.to_seconds(self.config.prototype_end)
        if end < proto_end:
            raise ValueError("campaign end precedes the prototype weekend")
        self._configure_checkpoints(None, None, None)
        self._begin(end)
        return end

    def advance_to(self, when) -> float:
        """Advance to ``when`` (datetime or simulated seconds).

        ``run_until`` is segmentation-invariant, so any sequence of
        advances fires the same events as one call to the horizon.
        """
        target = (
            float(when)
            if isinstance(when, (int, float))
            else self.clock.to_seconds(when)
        )
        self.sim.run_until(target)
        return target

    def finish(self) -> ExperimentResults:
        """Results at the horizon recorded by :meth:`begin`/restore."""
        if self._end is None:
            raise RuntimeError("begin() the campaign before finish()")
        return self._build_results(self._end)

    def _run_to(self, end: float) -> None:
        """Advance to ``end``, pausing at checkpoint cadence points.

        ``run_until`` fires every event with ``time <= t`` and then sets
        the clock to ``t``, so splitting the horizon into segments fires
        the exact same event sequence as one call -- the pause is
        invisible to the simulation.
        """
        every = self._checkpoint_every
        if every is None:
            self.sim.run_until(end)
            return
        next_cut = self.sim.now + every
        while next_cut < end:
            self.sim.run_until(next_cut)
            self._emit_checkpoint()
            next_cut += every
        self.sim.run_until(end)

    def _emit_checkpoint(self) -> None:
        snapshot = self.checkpoint()
        path: Optional[str] = None
        if self._checkpoint_dir is not None:
            os.makedirs(self._checkpoint_dir, exist_ok=True)
            path = os.path.join(
                self._checkpoint_dir, f"checkpoint_{int(self.sim.now):012d}.json"
            )
            if self._checkpoint_writer.write(path, snapshot):
                self.checkpoints_written.append(path)
            else:
                path = None
        if self._on_checkpoint is not None:
            self._on_checkpoint(path, snapshot)

    def _record_run_metrics(self) -> None:
        """End-of-run engine/bus state, frozen into the metrics registry."""
        metrics = self.telemetry.metrics
        metrics.gauge("engine.events_fired").set(float(self.sim.events_fired))
        metrics.gauge("engine.events_cancelled").set(float(self.sim.events_cancelled))
        metrics.gauge("engine.pending_at_end").set(float(self.sim.pending_count))
        metrics.gauge("engine.heap_compactions").set(float(self.sim.heap_compactions))
        metrics.gauge("engine.sim_end_s").set(float(self.sim.now))
        for name, count in sorted(self.bus.counts.items()):
            metrics.counter(f"bus.events.{name}").inc(count)

    # ------------------------------------------------------------------
    # Phase 1: the plastic-box weekend
    # ------------------------------------------------------------------
    def _run_prototype(self) -> PrototypeResult:
        start = self.clock.to_seconds(self.config.prototype_start)
        end = self.clock.to_seconds(self.config.prototype_end)
        self._proto_shelter = PlasticBoxShelter("plastic-boxes", self.weather)
        self._proto_host = Host(
            host_id=0,
            spec=VENDOR_A,
            streams=self.streams,
            transient_model=self.config.transient_model,
            memory_fault_ratio=self.config.memory_model.page_fault_ratio,
            bus=self.bus,
        )
        self._proto_cpu_temps = []
        self._proto_start = start
        dt = self.config.tick_interval_s

        task = self.sim.every_key(dt, "prototype.tick", start=start, label="prototype-tick")
        self.sim.run_until(end)
        task.cancel()
        proto_host = self._proto_host
        survived = proto_host.running
        if proto_host.running:
            proto_host.retire(end)  # the borrowed boxes had to be returned

        window = [r for r in self.station.readings if start <= r.time <= end]
        temps = [r.temp_c for r in window]
        return PrototypeResult(
            start=start,
            end=end,
            outside_min_c=min(temps) if temps else float("nan"),
            outside_mean_c=sum(temps) / len(temps) if temps else float("nan"),
            cpu_min_c=min(self._proto_cpu_temps) if self._proto_cpu_temps else float("nan"),
            survived=survived,
        )

    def _prototype_tick(self) -> None:
        now = self.sim.now
        host, shelter = self._proto_host, self._proto_shelter
        if now == self._proto_start:
            host.install(shelter, now)
        shelter.set_it_load(host.average_power_w)
        shelter.advance(now)
        if host.running:
            host.tick(self.config.tick_interval_s, now, self.fault_log)
            # The tick itself can fail the host; only a survivor
            # contributes a CPU sample.
            if host.running:
                self._proto_cpu_temps.append(host.cpu_temp_c())

    # ------------------------------------------------------------------
    # Phase 2: the campaign
    # ------------------------------------------------------------------
    def _schedule_campaign(self, end: float) -> None:
        test_start = self.clock.to_seconds(self.config.test_start)

        self.sim.schedule_at_key(test_start, "campaign.erect_tent", label="erect-tent")
        self.fleet.start_ticking(test_start)
        if self.plant is not None:
            # Scheduled right behind the fleet tick: same period, later
            # tie-break, so each plant decision sees freshly advanced
            # enclosures and host states.
            self.plant.start_ticking(test_start)
        # Closed-loop controllers tick after fleet and plant for the
        # same freshness reason; the default paper operator declares no
        # interval, so this is a no-op on the historical campaign.
        self.control.start_ticking(test_start)

        for plan in self.config.host_plans:
            if plan.install_date is None:
                continue
            self.sim.schedule_at_key(
                self.clock.to_seconds(plan.install_date),
                "campaign.install",
                args=(plan.host_id, plan.group),
                label=f"install.host{plan.host_id:02d}",
            )

        # Controller wakes replace the old open-loop TentModificationPlan
        # replay: the paper operator schedules the identical events under
        # the identical key and labels.
        self.control.schedule_wakes(end)

        if self.enabled("lascar"):
            self.sim.schedule_at_key(test_start, "campaign.lascar_attach", label="lascar")
            trip = self.lascar.arrival_time + self.config.logger_download_interval_days * DAY
            while trip < end:
                self.lascar.schedule_download_trip(
                    trip, duration_s=self.config.logger_download_duration_min * MINUTE
                )
                trip += self.config.logger_download_interval_days * DAY

        if self.enabled("powermeter"):
            self.sim.schedule_at_key(
                test_start, "campaign.powermeter_attach", label="powermeter"
            )
        if self.enabled("webcam"):
            self.sim.schedule_at_key(test_start, "campaign.webcam_attach", label="webcam")
        if self.enabled("collector"):
            self.sim.schedule_at_key(
                test_start + 10 * MINUTE, "campaign.collector_attach", label="collector"
            )
        if self.enabled("weekly-review"):
            # Weekly lab review: triage new wrong hashes with S.M.A.R.T. runs.
            self.sim.every_key(
                7 * DAY, "campaign.weekly_review", start=test_start + 7 * DAY,
                label="weekly-review",
            )

        if self.enabled("snapshot"):
            snapshot_t = self.clock.to_seconds(self.config.snapshot_date)
            if snapshot_t <= end:
                self.sim.schedule_at_key(
                    snapshot_t,
                    "campaign.snapshot",
                    args=(snapshot_t,),
                    label="paper-snapshot",
                )

        # Extra instruments attach strictly after the defaults, so their
        # presence never renumbers the defaults' same-tick tie-breaks.
        for name, instrument in self.instruments.items():
            self.sim.schedule_at(
                test_start,
                lambda i=instrument: i.attach(self.sim),
                label=f"instrument.{name}",
            )

    def _install(self, host_id: int, group: str) -> None:
        now = self.sim.now
        enclosure = self.fleet.enclosure_for_group(group)
        host = self.fleet.install(host_id, enclosure, now)
        if group == "tent":
            chain = [self.fleet.next_tent_switch()]
            self.powermeter.plug_in(host)
        else:
            chain = [self.fleet.next_basement_switch()]
        self.monitoring.register(host, chain)

    # ------------------------------------------------------------------
    # Engine registry: every campaign-level schedule goes through a
    # stable key, so a checkpointed queue re-materializes by name.
    # ------------------------------------------------------------------
    def _register_campaign_keys(self) -> None:
        sim = self.sim
        sim.register("prototype.tick", self._prototype_tick)
        sim.register("campaign.erect_tent", self.fleet.power_tent_switches)
        sim.register("campaign.install", self._install)
        self.control.register_keys(sim)
        sim.register("campaign.lascar_attach", self._attach_lascar)
        sim.register("campaign.powermeter_attach", self._attach_powermeter)
        sim.register("campaign.webcam_attach", self._attach_webcam)
        sim.register("campaign.collector_attach", self._attach_collector)
        sim.register("campaign.weekly_review", self.policy.weekly_review)
        sim.register("campaign.snapshot", self._freeze_snapshot)
        if self.plant is not None:
            self.plant.register_keys(sim)

    def _attach_lascar(self) -> None:
        self.lascar.attach(self.sim)

    def _attach_powermeter(self) -> None:
        self.powermeter.attach(self.sim)

    def _attach_webcam(self) -> None:
        self.webcam.attach(self.sim)

    def _attach_collector(self) -> None:
        self.monitoring.attach()

    def _freeze_snapshot(self, snapshot_t: float) -> None:
        census = take_snapshot(
            self.config, self.fleet.ledger, self.fault_log, snapshot_t
        )
        self._snapshot = census
        self.bus.publish(SnapshotTaken(time=snapshot_t, census=census))

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """One versioned state blob per stateful layer, keyed by name."""
        state = {
            "engine": self.sim.state_dict(),
            "rng": self.streams.state_dict(),
            "station": self.station.state_dict(),
            "lascar": self.lascar.state_dict(),
            "powermeter": self.powermeter.state_dict(),
            "webcam": self.webcam.state_dict(),
            "monitoring": self.monitoring.state_dict(),
            "transfers": self.transfers.state_dict(),
            "fleet": self.fleet.state_dict(),
            "control": self.control.state_dict(),
            "policy": self.policy.state_dict(),
            "fault_log": self.fault_log.state_dict(),
            "bus_counts": dict(self.bus.counts),
            "recorder": [encode_value(event) for event in self.recorder.events],
            "telemetry": (
                self.telemetry.state_dict() if self.telemetry is not None else None
            ),
        }
        if self.plant is not None:
            state["plant"] = self.plant.state_dict()
        return state

    def checkpoint(self) -> CampaignCheckpoint:
        """Freeze the entire campaign into a :class:`CampaignCheckpoint`.

        The checkpoint is self-describing: it carries the encoded config
        and builder options, so :meth:`restore` rebuilds the campaign
        from the file alone.  Extra (user-supplied) instruments have no
        snapshot protocol, so a build that carries any refuses to
        checkpoint rather than silently dropping their state.  Bus
        *subscribers* are observational and do not survive a restore.
        """
        if self.instruments:
            raise StateError(
                "cannot checkpoint a campaign with extra instruments: "
                + ", ".join(sorted(self.instruments))
            )
        from repro.runner.records import config_digest

        snapshot = CampaignCheckpoint(
            config_digest=config_digest(self.config),
            sim_time=self.sim.now,
            seed=self.config.seed,
            components=self.state_dict(),
            meta={
                "disabled": sorted(self._disabled),
                "telemetry": self.telemetry is not None,
                "ran": self._ran,
                "end": self._end,
                "fleet_backend": self.fleet.backend,
            },
        )
        snapshot.encode_meta("config", self.config)
        snapshot.encode_meta("link_faults", self._link_faults)
        snapshot.encode_meta("health_policy", self._health_policy)
        snapshot.encode_meta("plant_faults", self._plant_faults)
        snapshot.encode_meta("trip_policy", self._trip_policy)
        snapshot.encode_meta("controller", self.control.controller.spec)
        snapshot.encode_meta("prototype_result", self.prototype_result)
        snapshot.encode_meta("snapshot", self._snapshot)
        return snapshot

    @classmethod
    def restore(cls, checkpoint: CampaignCheckpoint) -> "Campaign":
        """Rebuild a mid-flight campaign from a checkpoint.

        Load order matters and is deliberate:

        1. construct the campaign (construction-time RNG draws and
           schedules are throwaway -- see steps 4 and 5);
        2. load the fleet first, so replacement switches exist before the
           monitoring topology is re-cabled by switch name;
        3. load every other component (plain data);
        4. load the engine, which *replaces* the queue wholesale --
           wiping whatever construction scheduled -- and validates that
           every queued key is registered;
        5. load the RNG streams last, so construction draws cannot
           perturb the restored stream positions;
        6. rebind periodic-task handles to the restored queue.
        """
        from repro.runner.records import config_digest

        config = checkpoint.decode_meta("config")
        if config is None:
            raise StateError("checkpoint carries no config")
        if checkpoint.config_digest != config_digest(config):
            raise StateError("checkpoint config digest does not match its config")
        telemetry = None
        if checkpoint.meta.get("telemetry"):
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        controller_spec = checkpoint.decode_meta("controller")
        controller = (
            controller_from_spec(controller_spec, config)
            if controller_spec is not None
            else None
        )
        campaign = cls(
            config,
            disabled=frozenset(checkpoint.meta.get("disabled", ())),
            telemetry=telemetry,
            link_faults=checkpoint.decode_meta("link_faults"),
            health_policy=checkpoint.decode_meta("health_policy"),
            fleet_backend=checkpoint.meta.get("fleet_backend", "columnar"),
            plant_faults=checkpoint.decode_meta("plant_faults"),
            trip_policy=checkpoint.decode_meta("trip_policy"),
            controller=controller,
        )
        campaign._ran = bool(checkpoint.meta.get("ran", True))
        end = checkpoint.meta.get("end")
        campaign._end = None if end is None else float(end)
        campaign.prototype_result = checkpoint.decode_meta("prototype_result")
        campaign._snapshot = checkpoint.decode_meta("snapshot")

        components = checkpoint.components
        campaign.fleet.load_state_dict(components["fleet"])
        switches = {s.name: s for s in campaign.fleet._all_switches()}
        for host_id, names in components["monitoring"].get("topology", {}).items():
            host = campaign.fleet.host(int(host_id))
            try:
                chain = [switches[name] for name in names]
            except KeyError as exc:
                raise StateError(f"snapshot names unknown switch {exc}") from None
            campaign.monitoring.register(host, chain)
        campaign.monitoring.load_state_dict(components["monitoring"])
        for host_id in components["powermeter"].get("host_ids", ()):
            campaign.powermeter.plug_in(campaign.fleet.host(int(host_id)))
        campaign.station.load_state_dict(components["station"])
        campaign.lascar.load_state_dict(components["lascar"])
        campaign.powermeter.load_state_dict(components["powermeter"])
        campaign.webcam.load_state_dict(components["webcam"])
        campaign.transfers.load_state_dict(components["transfers"])
        campaign.policy.load_state_dict(components["policy"])
        campaign.fault_log.load_state_dict(components["fault_log"])
        if components.get("control") is not None:
            campaign.control.load_state_dict(components["control"])
        if campaign.plant is not None and components.get("plant") is not None:
            campaign.plant.load_state_dict(components["plant"])
        campaign.bus.counts.clear()
        campaign.bus.counts.update(
            {str(k): int(v) for k, v in components.get("bus_counts", {}).items()}
        )
        # In place: the bus subscription holds the list's bound append.
        campaign.recorder.events[:] = [
            decode_value(event) for event in components.get("recorder", ())
        ]
        if components.get("telemetry") is not None and campaign.telemetry is not None:
            campaign.telemetry.load_state_dict(components["telemetry"])

        # Instruments normally bind their keys in attach(); a restored
        # campaign is already past its attach events, so bind them all
        # up front -- the engine's load validates every queued key.
        campaign.station.register_keys(campaign.sim)
        campaign.lascar.register_keys(campaign.sim)
        campaign.powermeter.register_keys(campaign.sim)
        campaign.webcam.register_keys(campaign.sim)
        campaign.monitoring.register_keys(campaign.sim)
        campaign.fleet.register_keys(campaign.sim)

        campaign.sim.load_state_dict(components["engine"])
        campaign.streams.load_state_dict(components["rng"])

        campaign.station.rebind(campaign.sim)
        campaign.lascar.rebind(campaign.sim)
        campaign.powermeter.rebind(campaign.sim)
        campaign.webcam.rebind(campaign.sim)
        campaign.monitoring.rebind(campaign.sim)
        campaign.fleet.rebind(campaign.sim)
        campaign.control.rebind()
        if campaign.plant is not None:
            campaign.plant.rebind(campaign.sim)
        return campaign

    def continue_run(
        self,
        until: Optional[_dt.datetime] = None,
        checkpoint_every: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        on_checkpoint: Optional[
            Callable[[Optional[str], CampaignCheckpoint], None]
        ] = None,
    ) -> ExperimentResults:
        """Run a restored campaign from its cut point to the horizon.

        Defaults to the original run's horizon (recorded in the
        checkpoint); ``until`` overrides it.  Because ``run_until`` is
        segmentation-invariant, the continued run's results are
        byte-identical to an uninterrupted run at the same horizon.
        """
        end = self._end if until is None else self.clock.to_seconds(until)
        if end is None:
            raise StateError("checkpoint records no horizon; pass until=")
        if end < self.sim.now:
            raise ValueError("resume horizon precedes the checkpoint cut")
        self._end = end
        self._configure_checkpoints(checkpoint_every, checkpoint_dir, on_checkpoint)
        if self.telemetry is None:
            self._run_to(end)
            return self._build_results(end)
        with self.telemetry.span("campaign.run"):
            self._run_to(end)
            results = self._build_results(end)
        self._record_run_metrics()
        return results

    @classmethod
    def resume(
        cls,
        path: str,
        until: Optional[_dt.datetime] = None,
        checkpoint_every: Optional[float] = None,
        checkpoint_dir: Optional[str] = None,
        on_checkpoint: Optional[
            Callable[[Optional[str], CampaignCheckpoint], None]
        ] = None,
    ) -> Tuple["Campaign", ExperimentResults]:
        """Restore from a checkpoint file and run to completion.

        Returns ``(campaign, results)``.  Raises :class:`StateError`
        when the file is missing, corrupt, or schema-mismatched (the
        reader quarantines damaged files to a ``.corrupt`` sibling).
        """
        snapshot = read_checkpoint(path)
        if snapshot is None:
            raise StateError(f"no usable checkpoint at {path}")
        campaign = cls.restore(snapshot)
        results = campaign.continue_run(
            until=until,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            on_checkpoint=on_checkpoint,
        )
        return campaign, results

    # ------------------------------------------------------------------
    def _build_results(self, end: float) -> ExperimentResults:
        return ExperimentResults(
            config=self.config,
            clock=self.clock,
            fleet=self.fleet,
            station=self.station,
            lascar=self.lascar,
            powermeter=self.powermeter,
            monitoring=self.monitoring,
            policy=self.policy,
            webcam=self.webcam,
            fault_log=self.fault_log,
            prototype=self.prototype_result,
            snapshot=self._snapshot,
            end_time=end,
            bus=self.bus,
            recorder=self.recorder,
            telemetry=self.telemetry,
        )


class CampaignBuilder:
    """Fluent assembly of a :class:`Campaign`.

    Examples
    --------
    The default build is the paper's campaign::

        campaign = CampaignBuilder(ExperimentConfig(seed=7)).build()
        results = campaign.run()

    A stripped-down build with a custom instrument and a bus observer::

        failures = []
        campaign = (
            CampaignBuilder(config)
            .without("webcam")
            .with_instrument("co2-meter", lambda c: Co2Meter(c.streams))
            .with_subscriber(lambda bus: bus.subscribe(HostFailed, failures.append))
            .build()
        )
    """

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self._disabled: set = set()
        self._extra: List[Tuple[str, Callable[[Campaign], object]]] = []
        self._subscribers: List[Callable[[EventBus], None]] = []
        self._telemetry = None
        self._link_faults: Optional[LinkFaultPlan] = None
        self._health_policy: Optional[HealthPolicy] = None
        self._fleet_backend = "columnar"
        self._plant_faults: Optional[PlantFaultPlan] = None
        self._trip_policy: Optional[ThermalTripPolicy] = None
        self._controller = None

    def without(self, name: str) -> "CampaignBuilder":
        """Drop one default instrument (see :data:`DEFAULT_INSTRUMENTS`)."""
        if name not in DEFAULT_INSTRUMENTS:
            raise ValueError(
                f"unknown default instrument {name!r}; "
                f"choose from {', '.join(DEFAULT_INSTRUMENTS)}"
            )
        self._disabled.add(name)
        return self

    def with_instrument(
        self, name: str, factory: Callable[[Campaign], object]
    ) -> "CampaignBuilder":
        """Register an extra instrument.

        ``factory(campaign)`` is called at build time and must return an
        object with the standard ``attach(sim)`` method; the campaign
        schedules the attach at test start, after every default.
        """
        if name in DEFAULT_INSTRUMENTS:
            raise ValueError(f"{name!r} is a default instrument; use without() to drop it")
        if any(existing == name for existing, _ in self._extra):
            raise ValueError(f"instrument {name!r} already registered")
        self._extra.append((name, factory))
        return self

    def with_subscriber(
        self, subscribe: Callable[[EventBus], None]
    ) -> "CampaignBuilder":
        """Register a bus observer; called with the bus at build time."""
        self._subscribers.append(subscribe)
        return self

    def with_telemetry(self, telemetry=None) -> "CampaignBuilder":
        """Opt the campaign into telemetry.

        ``telemetry`` is a :class:`~repro.telemetry.hub.Telemetry` to
        fill (pass one to share a registry across campaigns); omitted, a
        fresh one is created.  The built campaign wires it everywhere:
        the engine traces every event callback as ``engine.<label>``,
        the monitoring host times and tallies each collection round, and
        the run driver freezes end-of-run engine/bus state into gauges
        and counters.  The finished run exposes it as
        ``results.telemetry``.
        """
        if telemetry is None:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        self._telemetry = telemetry
        return self

    def with_fleet_backend(self, backend: str) -> "CampaignBuilder":
        """Select the fleet tick backend: ``"columnar"`` or ``"object"``.

        The columnar default runs the tick's thermal/uptime math as
        vectorized fleet-wide array expressions; ``"object"`` keeps the
        original per-host loop.  Both are byte-identical (the
        equivalence tests hold them to that), so this knob exists for
        A/B verification and for bisecting, not for results.  The choice
        is carried in checkpoint metadata and survives a restore.
        """
        from repro.core.deployment import Fleet

        if backend not in Fleet.BACKENDS:
            raise ValueError(
                f"unknown fleet backend {backend!r}; choose from {', '.join(Fleet.BACKENDS)}"
            )
        self._fleet_backend = backend
        return self

    def with_link_faults(self, plan: LinkFaultPlan) -> "CampaignBuilder":
        """Inject a deterministic transport-fault plan into the rounds.

        ``plan`` is a :class:`~repro.monitoring.transport.LinkFaultPlan`
        (see also :meth:`LinkFaultPlan.parse` for the CLI spec syntax).
        Faults degrade *observation only*: the simulated hardware and
        its census are untouched.  Pair a storm with
        :meth:`with_health_policy` to keep false alarms away from the
        operator.
        """
        if not isinstance(plan, LinkFaultPlan):
            raise TypeError(f"expected a LinkFaultPlan, got {plan!r}")
        self._link_faults = plan
        return self

    def with_plant_faults(self, plan: PlantFaultPlan) -> "CampaignBuilder":
        """Arm the plant chaos plane with a deterministic fault plan.

        ``plan`` is a :class:`~repro.plant.faults.PlantFaultPlan` (see
        :meth:`PlantFaultPlan.parse` for the CLI spec syntax).  Unlike
        link faults, plant faults have *physical* consequences: degraded
        tent airflow, a drifting machine room, powered-down feed groups.
        An empty plan (and no trip policy) builds no plant at all and
        leaves the campaign byte-identical.
        """
        if not isinstance(plan, PlantFaultPlan):
            raise TypeError(f"expected a PlantFaultPlan, got {plan!r}")
        self._plant_faults = plan
        return self

    def with_trip_policy(self, policy: ThermalTripPolicy) -> "CampaignBuilder":
        """Arm protective thermal trips with staged load shedding.

        ``policy`` is a :class:`~repro.plant.trip.ThermalTripPolicy`
        (see :meth:`ThermalTripPolicy.parse`); it watches the tent
        intake and powers hosts down in stages on overtemperature.
        """
        if not isinstance(policy, ThermalTripPolicy):
            raise TypeError(f"expected a ThermalTripPolicy, got {policy!r}")
        self._trip_policy = policy
        return self

    def with_controller(self, controller) -> "CampaignBuilder":
        """Select the campaign's closed-loop controller.

        ``controller`` is a registry name (``"paper-operator"``,
        ``"thermostat"``, ``"model-free"`` -- see
        :data:`repro.control.CONTROLLERS`) or a
        :class:`~repro.control.Controller` instance.  The default is the
        paper operator: the historical R/I/B/F/D schedule, which leaves
        the pinned seed-7 digest byte-identical.
        """
        if controller is not None and not isinstance(controller, (str, Controller)):
            raise TypeError(
                f"expected a controller name or Controller, got {controller!r}"
            )
        if isinstance(controller, str) and controller not in CONTROLLERS:
            known = ", ".join(sorted(CONTROLLERS))
            raise ValueError(
                f"unknown controller {controller!r} (known: {known})"
            )
        self._controller = controller
        return self

    def with_health_policy(self, policy: HealthPolicy) -> "CampaignBuilder":
        """Set the collector's host-health policy.

        ``policy`` is a :class:`~repro.monitoring.health.HealthPolicy`;
        its ``confirm_rounds`` delays operator interventions until an
        outage repeats, and its ``retry`` grants in-round SSH retries.
        The default policy reproduces the historical collector.
        """
        if not isinstance(policy, HealthPolicy):
            raise TypeError(f"expected a HealthPolicy, got {policy!r}")
        self._health_policy = policy
        return self

    def build(self) -> Campaign:
        """Assemble the campaign (construction wires, nothing runs yet)."""
        return Campaign(
            self.config,
            disabled=frozenset(self._disabled),
            extra_instruments=tuple(self._extra),
            subscribers=tuple(self._subscribers),
            telemetry=self._telemetry,
            link_faults=self._link_faults,
            health_policy=self._health_policy,
            fleet_backend=self._fleet_backend,
            plant_faults=self._plant_faults,
            trip_policy=self._trip_policy,
            controller=self._controller,
        )
