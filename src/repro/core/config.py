"""Experiment configuration: the paper's campaign as data.

Every date below is stated in, or inferred from, the paper:

- prototype weekend: Friday Feb 12 to Monday Feb 15 (Section 3.1),
- main test start: Friday Feb 19,
- staged installs through "the last of the hosts was installed March
  13th", shown host-by-host in Fig. 2,
- host #15's failures on Sat Mar 7, 04:40 and Wed Mar 17, 12:20, with the
  replacement (#19) installed after the second,
- the Lascar logger "arrived late" (inside data in Figs. 3-4 begins in
  early March),
- tent modifications R, I, B, F applied "in order of appearance" through
  March,
- the paper snapshot around Mar 27 ("two weeks of operation" for a Mar 13
  install), with the campaign continuing to mid-May ("three months" for
  the first host).

Where Fig. 2 is garbled in the source text, the plan keeps every date the
prose states and fills the rest consistently (see DESIGN.md section 5).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.climate.profiles import HELSINKI_2010, ClimateProfile
from repro.hardware.faults import MemoryFaultModel, TransientFaultModel
from repro.thermal.tent import Modification


@dataclass(frozen=True)
class HostPlan:
    """One host's place in the campaign."""

    host_id: int
    vendor_id: str
    group: str  # "tent" | "basement" | "spare"
    install_date: Optional[_dt.datetime]
    twin_id: Optional[int] = None  # the pairwise-identical unit in the other group

    def __post_init__(self) -> None:
        if self.group not in ("tent", "basement", "spare"):
            raise ValueError(f"unknown group {self.group!r}")
        if self.group != "spare" and self.install_date is None:
            raise ValueError("non-spare hosts need an install date")


@dataclass(frozen=True)
class TentModificationPlan:
    """One scheduled envelope intervention."""

    date: _dt.datetime
    modification: Modification


def paper_host_plans() -> Tuple[HostPlan, ...]:
    """The default 18+1 host fleet with the Fig. 2 install schedule.

    Tent hosts carry the numbers Fig. 2 labels (01, 02, 03, 06, 10, 14,
    15, 11, 18 plus replacement 19); basement twins take the remaining
    numbers, paired install-date for install-date.
    """
    feb19 = _dt.datetime(2010, 2, 19, 16, 0)
    feb24 = _dt.datetime(2010, 2, 24, 15, 0)
    mar05 = _dt.datetime(2010, 3, 5, 15, 0)
    mar10 = _dt.datetime(2010, 3, 10, 15, 0)
    mar13 = _dt.datetime(2010, 3, 13, 14, 0)

    pairs = [
        # (tent id, basement id, vendor, install date)
        (1, 4, "A", feb19),
        (2, 5, "A", feb19),
        (3, 7, "A", feb19),
        (6, 8, "A", feb24),
        (10, 9, "A", mar05),
        (14, 16, "B", mar10),
        (15, 17, "B", mar10),
        (11, 12, "C", mar13),
        (18, 13, "C", mar13),
    ]
    plans: List[HostPlan] = []
    for tent_id, base_id, vendor_id, date in pairs:
        plans.append(
            HostPlan(tent_id, vendor_id, "tent", date, twin_id=base_id)
        )
        plans.append(
            HostPlan(base_id, vendor_id, "basement", date, twin_id=tent_id)
        )
    # The 19th server: vendor-B spare that replaced #15 on March 17th.
    plans.append(HostPlan(19, "B", "spare", None, twin_id=None))
    plans.sort(key=lambda p: p.host_id)
    return tuple(plans)


def paper_modification_plans() -> Tuple[TentModificationPlan, ...]:
    """The R, I, B, F schedule, plus the half-open door.

    Fig. 3 letters the first four "in order of appearance"; the text adds
    that "the last modification to normal operation was to let the outer
    front door remain in a half-open position".
    """
    return (
        TentModificationPlan(_dt.datetime(2010, 3, 5, 13, 0), Modification.REFLECTIVE_FOIL),
        TentModificationPlan(_dt.datetime(2010, 3, 12, 13, 0), Modification.INNER_TENT_REMOVED),
        TentModificationPlan(_dt.datetime(2010, 3, 18, 13, 0), Modification.BOTTOM_TARP_REMOVED),
        TentModificationPlan(_dt.datetime(2010, 3, 24, 13, 0), Modification.FAN_INSTALLED),
        TentModificationPlan(_dt.datetime(2010, 3, 26, 13, 0), Modification.DOOR_HALF_OPEN),
    )


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a run needs; defaults reproduce the paper's campaign.

    Attributes
    ----------
    seed:
        Master seed for every random stream.
    climate:
        Weather calibration profile.
    prototype_start / prototype_end:
        The plastic-box weekend.
    test_start:
        Tent erection and first installs.
    snapshot_date:
        "At the time of writing": where the paper's censuses are taken.
    end_date:
        Full campaign end (the first host's three months).
    host_plans / modification_plans:
        Fleet and tent-intervention schedules.
    lascar_arrival:
        First instant of tent-internal logging.
    logger_download_interval_days / logger_download_duration_min:
        The carry-indoors data-download trips (outlier source).
    tick_interval_s:
        Fleet/enclosure integration step.
    transient_model / memory_model:
        Fault-model parameters.
    switch_defect_mean_life_hours:
        Mean powered life of the defective 8-port switches.
    failures_before_indoors:
        Operator policy: after this many failures a host is taken indoors
        and memtested (2 for the paper's host #15).
    inspection_delay_hours:
        How long a down host waits for the operator (failures were found
        on the next working day).
    sensor_reboot_delay_days:
        "After a week, we risked a warm system reboot."
    boot_duration_min:
        BIOS + OS bring-up time after an operator reset; the host answers
        nothing (and runs no load) while booting.
    tent_model:
        ``"single"`` (the campaign default: one lumped thermal node) or
        ``"two-node"`` (the air+mass fidelity model from the A4 ablation).
    """

    seed: int = 7
    climate: ClimateProfile = HELSINKI_2010
    prototype_start: _dt.datetime = _dt.datetime(2010, 2, 12, 16, 0)
    prototype_end: _dt.datetime = _dt.datetime(2010, 2, 15, 10, 0)
    test_start: _dt.datetime = _dt.datetime(2010, 2, 19, 12, 0)
    snapshot_date: _dt.datetime = _dt.datetime(2010, 3, 27, 12, 0)
    end_date: _dt.datetime = _dt.datetime(2010, 5, 12, 12, 0)
    host_plans: Tuple[HostPlan, ...] = field(default_factory=paper_host_plans)
    modification_plans: Tuple[TentModificationPlan, ...] = field(
        default_factory=paper_modification_plans
    )
    lascar_arrival: _dt.datetime = _dt.datetime(2010, 3, 1, 12, 0)
    logger_download_interval_days: float = 10.0
    logger_download_duration_min: float = 35.0
    tick_interval_s: float = 300.0
    transient_model: TransientFaultModel = field(default_factory=TransientFaultModel)
    memory_model: MemoryFaultModel = field(default_factory=MemoryFaultModel)
    switch_defect_mean_life_hours: float = 190.0
    failures_before_indoors: int = 2
    inspection_delay_hours: float = 30.0
    sensor_reboot_delay_days: float = 7.0
    boot_duration_min: float = 4.0
    tent_model: str = "single"

    def __post_init__(self) -> None:
        if self.prototype_end <= self.prototype_start:
            raise ValueError("prototype must end after it starts")
        if self.test_start < self.prototype_end:
            raise ValueError("main test cannot start before the prototype ends")
        if self.end_date <= self.test_start:
            raise ValueError("campaign must end after it starts")
        if not self.climate.start <= self.prototype_start:
            raise ValueError("climate profile does not cover the prototype")
        if not self.climate.end >= self.end_date:
            raise ValueError("climate profile does not cover the campaign end")
        if self.tick_interval_s <= 0:
            raise ValueError("tick interval must be positive")
        if self.failures_before_indoors < 1:
            raise ValueError("failures_before_indoors must be >= 1")
        if self.tent_model not in ("single", "two-node"):
            raise ValueError(f"unknown tent model {self.tent_model!r}")
        ids = [p.host_id for p in self.host_plans]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate host ids in the plan")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def plans_by_group(self, group: str) -> List[HostPlan]:
        """All host plans in one group, sorted by id."""
        return [p for p in self.host_plans if p.group == group]

    def plan_for(self, host_id: int) -> HostPlan:
        """The plan for one host id."""
        for plan in self.host_plans:
            if plan.host_id == host_id:
                return plan
        raise KeyError(f"no host {host_id} in the plan")

    def with_end(self, end_date: _dt.datetime) -> "ExperimentConfig":
        """A copy ending earlier/later (tests use short campaigns)."""
        return replace(self, end_date=end_date)

    def with_seed(self, seed: int) -> "ExperimentConfig":
        """A copy under a different master seed."""
        return replace(self, seed=seed)
