"""The fleet: hosts, enclosures, switches, and the tick loop.

Deployment follows Section 3.4: hosts are "installed pairwise so that
identical units are placed into the control group in the basement and the
test group in the tent".  The :class:`Fleet` owns

- the three enclosures (tent, basement, and the indoor office where a
  twice-failed host ends up),
- the network gear: two defective 8-port switches in the tent, a healthy
  one in the basement, and the defective spare that never got deployed,
- every :class:`~repro.hardware.host.Host`, its archiver process, and the
  shared workload ledger,

and advances all of it on a fixed tick.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.climate.generator import WeatherGenerator
from repro.hardware.faults import FaultEvent, FaultKind, FaultLog
from repro.hardware.host import (
    HOST_STATE_RUNNING_CODE,
    HOST_STATE_SHED_CODE,
    Host,
    HostState,
)
from repro.hardware.switch import NetworkSwitch
from repro.hardware.vendors import vendor
from repro.core.config import ExperimentConfig, HostPlan
from repro.sim.columns import FleetColumns
from repro.sim.engine import PeriodicTask, Simulator
from repro.state.protocol import StateError, check_version
from repro.sim.events import EventBus, HostInstalled, SwitchDied, TentModified
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import BasementMachineRoom, Enclosure
from repro.thermal.tent import Tent
from repro.thermal.twonode import TwoNodeTent
from repro.workload.archiver import ArchiverProcess, WorkloadLedger
from repro.workload.kernel_tree import KernelSourceTree

_STATE_VERSION = 1


def paper_install_plan(config: Optional[ExperimentConfig] = None) -> List[HostPlan]:
    """The install schedule as a sorted list (Fig. 2's underlying data)."""
    config = config if config is not None else ExperimentConfig()
    dated = [p for p in config.host_plans if p.install_date is not None]
    return sorted(dated, key=lambda p: (p.install_date, p.host_id))


class Fleet:
    """Everything physical in the campaign, plus its time-advance loop.

    Parameters
    ----------
    sim / config / streams / weather / fault_log:
        Shared experiment plumbing.
    bus:
        Optional campaign event bus.  When given, the fleet *publishes*
        installs, switch deaths, and tent modifications (and hands the
        bus to every host it builds); the subscribed fault log keeps the
        census.  Without a bus everything records directly, as before.
    backend:
        ``"columnar"`` (default) re-homes tick-hot host state into a
        :class:`~repro.sim.columns.FleetColumns` store and runs the tick's
        thermal/uptime math as vectorized array expressions; ``"object"``
        keeps the original one-object-at-a-time loop.  Both backends are
        draw-for-draw and byte-for-byte identical -- the object path is
        retained as the reference for the equivalence tests.
    """

    BACKENDS = ("object", "columnar")

    def __init__(
        self,
        sim: Simulator,
        config: ExperimentConfig,
        streams: RngStreams,
        weather: WeatherGenerator,
        fault_log: FaultLog,
        bus: Optional[EventBus] = None,
        backend: str = "columnar",
    ) -> None:
        if backend not in self.BACKENDS:
            raise ValueError(f"unknown fleet backend {backend!r}")
        self.sim = sim
        self.config = config
        self.weather = weather
        self.fault_log = fault_log
        self.bus = bus
        self.backend = backend

        # Enclosures ----------------------------------------------------
        if config.tent_model == "two-node":
            self.tent = TwoNodeTent("tent", weather)
        else:
            self.tent = Tent("tent", weather)
        self.basement = BasementMachineRoom("basement", weather)
        self.indoors = BasementMachineRoom("indoor office", weather, setpoint_c=21.5)
        self.enclosures: List[Enclosure] = [self.tent, self.basement, self.indoors]

        # Network gear --------------------------------------------------
        self.tent_switches: List[NetworkSwitch] = [
            NetworkSwitch(
                "tent-sw1",
                streams.stream("switch.tent1"),
                inherent_defect=True,
                defect_mean_life_hours=config.switch_defect_mean_life_hours,
            ),
            NetworkSwitch(
                "tent-sw2",
                streams.stream("switch.tent2"),
                inherent_defect=True,
                defect_mean_life_hours=config.switch_defect_mean_life_hours,
            ),
        ]
        self.spare_switch = NetworkSwitch(
            "spare-sw",
            streams.stream("switch.spare"),
            inherent_defect=True,
            defect_mean_life_hours=config.switch_defect_mean_life_hours,
        )
        # The basement's nine hosts hang off healthy department switches
        # (the paper's defective pair served only the tent).
        self.basement_switches: List[NetworkSwitch] = [
            NetworkSwitch(
                "basement-sw1", streams.stream("switch.basement1"), inherent_defect=False
            ),
            NetworkSwitch(
                "basement-sw2", streams.stream("switch.basement2"), inherent_defect=False
            ),
        ]
        #: Switches currently serving the tent (replacements swap in here).
        self.active_tent_switches: List[NetworkSwitch] = list(self.tent_switches)
        self._replacement_counter = 0
        self._replacement_switches: List[NetworkSwitch] = []
        self._switch_rng = streams.stream("switch.replacements")
        self._powered_switches: List[NetworkSwitch] = list(self.basement_switches)
        self._basement_switch_rr = 0
        self._switch_failures_logged: set = set()

        # Hosts ---------------------------------------------------------
        self.hosts: Dict[int, Host] = {}
        for plan in config.host_plans:
            self.hosts[plan.host_id] = Host(
                host_id=plan.host_id,
                spec=vendor(plan.vendor_id),
                streams=streams,
                transient_model=config.transient_model,
                memory_fault_ratio=config.memory_model.page_fault_ratio,
                bus=bus,
            )

        # Columnar state ------------------------------------------------
        self._sorted_ids = sorted(self.hosts)
        self.columns: Optional[FleetColumns] = None
        if backend == "columnar":
            self.columns = FleetColumns(
                capacity=max(1, len(self.hosts)),
                disk_capacity=max(1, sum(len(h.storage.disks) for h in self.hosts.values())),
            )
            for host_id in self._sorted_ids:
                self.hosts[host_id].bind_columns(self.columns)

        # Workload ------------------------------------------------------
        self.tree = KernelSourceTree()
        self.ledger = WorkloadLedger(bus=bus)
        self.archivers: Dict[int, ArchiverProcess] = {}
        self._tick_handle: Optional[PeriodicTask] = None
        self._restore_task_id: Optional[int] = None
        self._tent_switch_rr = 0

    def __repr__(self) -> str:
        running = sum(1 for h in self.hosts.values() if h.running)
        return f"Fleet({running}/{len(self.hosts)} hosts running)"

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def host(self, host_id: int) -> Host:
        """Fetch one host by id."""
        try:
            return self.hosts[host_id]
        except KeyError:
            raise KeyError(f"no host {host_id} in the fleet") from None

    def hosts_in_group(self, group: str) -> List[Host]:
        """Hosts planned into ``group`` ("tent", "basement", "spare")."""
        return [self.hosts[p.host_id] for p in self.config.plans_by_group(group)]

    def host_census(self) -> "tuple[int, int]":
        """``(running, shed)`` counts across the fleet.

        On the control-tick hot path every 5 simulated minutes, so the
        columnar backend answers with two array comparisons instead of a
        per-host property walk.
        """
        if self.columns is not None:
            state = self.columns.host_state[: self.columns.n_hosts]
            return (
                int(np.count_nonzero(state == HOST_STATE_RUNNING_CODE)),
                int(np.count_nonzero(state == HOST_STATE_SHED_CODE)),
            )
        running = 0
        shed = 0
        for host in self.hosts.values():
            if host.state is HostState.RUNNING:
                running += 1
            elif host.state is HostState.SHED:
                shed += 1
        return running, shed

    def enclosure_for_group(self, group: str) -> Enclosure:
        """The enclosure a group's hosts are installed into."""
        if group == "tent":
            return self.tent
        if group == "basement":
            return self.basement
        raise ValueError(f"group {group!r} has no fixed enclosure")

    def next_tent_switch(self) -> NetworkSwitch:
        """Least-loaded operational tent switch (replacements included).

        If every active tent switch is dead (both defective originals can
        die between collection rounds), a replacement is provisioned on
        the spot -- the operator cabling a new host would notice.
        """
        alive = [
            s
            for s in self.active_tent_switches
            if s.operational and len(s.connected()) < NetworkSwitch.PORT_COUNT
        ]
        if not alive:
            replacement = self.provision_replacement_switch()
            self.active_tent_switches.append(replacement)
            return replacement
        return min(alive, key=lambda s: (len(s.connected()), s.name))

    def swap_tent_switch(self, dead: NetworkSwitch, replacement: NetworkSwitch) -> None:
        """Replace a dead switch in the tent's active set."""
        self.active_tent_switches = [
            s for s in self.active_tent_switches if s is not dead
        ]
        if replacement not in self.active_tent_switches:
            self.active_tent_switches.append(replacement)

    def next_basement_switch(self) -> NetworkSwitch:
        """Round-robin assignment of basement hosts to the healthy switches."""
        switch = self.basement_switches[self._basement_switch_rr % len(self.basement_switches)]
        self._basement_switch_rr += 1
        return switch

    def provision_replacement_switch(self) -> NetworkSwitch:
        """A healthy switch from department stock (post-failure repair)."""
        self._replacement_counter += 1
        switch = NetworkSwitch(
            f"replacement-sw{self._replacement_counter}",
            self._switch_rng,
            inherent_defect=False,
        )
        self._replacement_switches.append(switch)
        self._powered_switches.append(switch)
        return switch

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, host_id: int, enclosure: Enclosure, time: float) -> Host:
        """Install a host: power on and start its synthetic load."""
        host = self.host(host_id)
        host.install(enclosure, time)
        if host_id not in self.archivers:
            self.archivers[host_id] = ArchiverProcess(
                self.sim, host, self.ledger, tree=self.tree, fault_log=self.fault_log
            )
        if self.bus is not None:
            self.bus.publish(
                HostInstalled(
                    time=time,
                    host_id=host_id,
                    enclosure=enclosure.name,
                    group=self.config.plan_for(host_id).group,
                )
            )
        return host

    def power_tent_switches(self) -> None:
        """Power up the tent switches (at tent erection)."""
        for switch in self.tent_switches:
            if switch not in self._powered_switches:
                self._powered_switches.append(switch)

    def apply_tent_modification(self, modification, time: float) -> None:
        """Apply one envelope intervention and announce it on the bus."""
        self.tent.apply_modification(modification, time)
        if self.bus is not None:
            self.bus.publish(
                TentModified(
                    time=time, letter=modification.letter, modification=modification
                )
            )

    # ------------------------------------------------------------------
    # Time advance
    # ------------------------------------------------------------------
    def start_ticking(self, start: float) -> None:
        """Begin the periodic advance loop at simulated time ``start``."""
        if self._tick_handle is not None:
            raise RuntimeError("fleet already ticking")
        self.register_keys(self.sim)
        self._tick_handle = self.sim.every_key(
            self.config.tick_interval_s, "fleet.tick", start=start, label="fleet-tick"
        )

    def stop_ticking(self) -> None:
        """Stop the advance loop."""
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    def _tick(self) -> None:
        now = self.sim.now
        dt = self.config.tick_interval_s
        # 1. Heat budgets: each enclosure dissipates its hosts' average draw.
        loads: Dict[int, float] = {}
        for enclosure in self.enclosures:
            loads[id(enclosure)] = 0.0
        for host in self.hosts.values():
            if host.enclosure is not None and host.running:
                key = id(host.enclosure)
                if key in loads:
                    loads[key] += host.average_power_w
        for enclosure in self.enclosures:
            enclosure.set_it_load(loads[id(enclosure)])
            enclosure.advance(now)
        # 2. Hosts age, sensors chill, hazards strike.
        if self.columns is not None:
            self._tick_hosts_columnar(now, dt)
        else:
            for host_id in self._sorted_ids:
                self.hosts[host_id].tick(dt, now, self.fault_log)
        # 3. Switches age; new deaths get logged once.
        for switch in self._powered_switches:
            switch.tick(dt, now)
            if not switch.operational and switch.name not in self._switch_failures_logged:
                self._switch_failures_logged.add(switch.name)
                died_at = switch.failed_at if switch.failed_at is not None else now
                if self.bus is not None:
                    self.bus.publish(SwitchDied(time=died_at, switch_name=switch.name))
                else:
                    self.fault_log.record(
                        FaultEvent(
                            time=died_at,
                            kind=FaultKind.SWITCH,
                            host_id=None,
                            detail=switch.name,
                        )
                    )

    def _tick_hosts_columnar(self, now: float, dt: float) -> None:
        """Phase 2 of the tick on the columnar backend.

        The deterministic math -- intake gather, power selection, case and
        die temperatures, uptime accrual -- runs as whole-fleet array
        expressions (each elementwise op is IEEE-identical to its scalar
        counterpart, so the object backend's numbers are reproduced
        bit-for-bit).  The stochastic tail (hazard draws, latch events,
        failures) then runs per host in host-id order via
        :meth:`~repro.hardware.host.Host.tick_from_columns`, preserving
        the exact draw and event sequence.
        """
        cols = self.columns
        n = cols.n_hosts
        running = cols.host_state[:n] == HOST_STATE_RUNNING_CODE
        if not running.any():
            return
        intake = cols.intake_temp_c[:n]
        precip = cols.intake_precip_mm_h[:n]
        for host_id in self._sorted_ids:
            host = self.hosts[host_id]
            if host.enclosure is not None:
                index = host._column_index
                intake[index] = host.enclosure.intake_temp_c
                precip[index] = getattr(host.enclosure, "intake_precip_mm_h", 0.0)
        busy = cols.cpu_busy[:n]
        host_power = np.where(busy, cols.active_power_w[:n], cols.idle_power_w[:n])
        case = intake + cols.case_rise_k_per_w[:n] * host_power
        cpu_power = np.where(busy, cols.cpu_active_power_w[:n], cols.cpu_idle_power_w[:n])
        cpu_temp = case + cols.cpu_theta_k_per_w[:n] * cpu_power
        cols.case_temp_c[:n] = case
        cols.cpu_temp_c[:n] = cpu_temp
        cols.uptime_s[:n][running] += dt
        for host_id in self._sorted_ids:
            host = self.hosts[host_id]
            if not host.running:
                continue
            index = host._column_index
            host.tick_from_columns(
                dt,
                now,
                self.fault_log,
                float(case[index]),
                float(intake[index]),
                float(cpu_temp[index]),
                float(precip[index]),
            )

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def register_keys(self, sim: Simulator) -> None:
        """Bind the fleet's tick key on ``sim`` (archivers bind their own)."""
        sim.register("fleet.tick", self._tick)

    def _all_switches(self) -> List[NetworkSwitch]:
        return (
            self.tent_switches
            + [self.spare_switch]
            + self.basement_switches
            + self._replacement_switches
        )

    def _enclosure_by_name(self) -> Dict[str, Enclosure]:
        return {e.name: e for e in self.enclosures}

    def state_dict(self) -> Dict[str, Any]:
        """Everything physical: enclosures, switches, hosts, workload.

        Replacement switches are recorded by count and reconstructed by
        name on load (their RNG stream position rides in the campaign's
        RNG snapshot); host-to-enclosure links are recorded by enclosure
        name and re-resolved against the rebuilt enclosures.
        """
        return {
            "version": _STATE_VERSION,
            "enclosures": {e.name: e.state_dict() for e in self.enclosures},
            "replacement_counter": self._replacement_counter,
            "switches": {s.name: s.state_dict() for s in self._all_switches()},
            "active_tent_switches": [s.name for s in self.active_tent_switches],
            "powered_switches": [s.name for s in self._powered_switches],
            "basement_switch_rr": self._basement_switch_rr,
            "tent_switch_rr": self._tent_switch_rr,
            "switch_failures_logged": sorted(self._switch_failures_logged),
            "hosts": {
                str(host_id): self.hosts[host_id].state_dict()
                for host_id in sorted(self.hosts)
            },
            "ledger": self.ledger.state_dict(),
            "archivers": {
                str(host_id): self.archivers[host_id].state_dict()
                for host_id in sorted(self.archivers)
            },
            "tick_task_id": (
                self._tick_handle.task_id if self._tick_handle is not None else None
            ),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("fleet", state, _STATE_VERSION)
        enclosures = self._enclosure_by_name()
        for name, enclosure_state in state["enclosures"].items():
            if name not in enclosures:
                raise StateError(f"snapshot names unknown enclosure {name!r}")
            enclosures[name].load_state_dict(enclosure_state)
        # Replacement switches were provisioned at runtime: re-provision
        # the same count (same names, same shared RNG stream) then load
        # every switch's recorded state over the fresh objects.
        self._replacement_counter = 0
        self._replacement_switches = []
        self._powered_switches = list(self.basement_switches)
        for _ in range(int(state["replacement_counter"])):
            self.provision_replacement_switch()
        switches = {s.name: s for s in self._all_switches()}
        for name, switch_state in state["switches"].items():
            if name not in switches:
                raise StateError(f"snapshot names unknown switch {name!r}")
            switches[name].load_state_dict(switch_state)
        self.active_tent_switches = [
            switches[name] for name in state["active_tent_switches"]
        ]
        self._powered_switches = [
            switches[name] for name in state["powered_switches"]
        ]
        self._basement_switch_rr = int(state["basement_switch_rr"])
        self._tent_switch_rr = int(state["tent_switch_rr"])
        self._switch_failures_logged = set(state["switch_failures_logged"])
        for host_id_str, host_state in state["hosts"].items():
            host = self.host(int(host_id_str))
            host.load_state_dict(host_state)
            enclosure_name = host_state["enclosure"]
            host.enclosure = (
                None if enclosure_name is None else enclosures[enclosure_name]
            )
        self.ledger.load_state_dict(state["ledger"])
        for host_id_str, archiver_state in sorted(
            state["archivers"].items(), key=lambda kv: int(kv[0])
        ):
            host_id = int(host_id_str)
            if host_id not in self.archivers:
                self.archivers[host_id] = ArchiverProcess(
                    self.sim,
                    self.host(host_id),
                    self.ledger,
                    tree=self.tree,
                    fault_log=self.fault_log,
                )
            self.archivers[host_id].load_state_dict(archiver_state)
        self._restore_task_id = state["tick_task_id"]

    def rebind(self, sim: Simulator) -> None:
        """Re-link tick and archiver sleeps after the engine's state loads."""
        if self._restore_task_id is not None:
            self._tick_handle = sim.periodic_task(int(self._restore_task_id))
            self._restore_task_id = None
        for host_id in sorted(self.archivers):
            self.archivers[host_id].rebind(sim)
