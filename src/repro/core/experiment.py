"""The two-phase experiment driver.

Phase 1 (Section 3.1): a generic PC between two plastic boxes over the
Feb 12-15 weekend -- "a prototype test was undertaken to ascertain that a
real measurement was worth the trouble".

Phase 2: the tent campaign -- staged pairwise installs, the 10-minute
synthetic load, 20-minute collection rounds, the Lascar logger (late
arrival, download trips), the Technoline meter on the tent's power feed,
scheduled tent modifications, and the operator policy reacting to faults.

:class:`Experiment` is a thin facade: the wiring lives in
:class:`repro.core.builder.CampaignBuilder`, which assembles a
:class:`~repro.core.builder.Campaign` around the campaign event bus.
The facade keeps the historical attribute surface (``exp.fleet``,
``exp.sim``, ...) and the run-once contract.

Usage::

    exp = Experiment(ExperimentConfig(seed=7))
    results = exp.run()
    print(results.summary())

Campaigns needing composition (dropped or extra instruments, bus
subscribers) should use :class:`~repro.core.builder.CampaignBuilder`
directly.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from repro.core.builder import Campaign, CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.core.results import ExperimentResults, PrototypeResult


class Experiment:
    """One complete, deterministic reproduction run.

    Parameters
    ----------
    config:
        The campaign description; defaults to the paper's own.
    """

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.campaign: Campaign = CampaignBuilder(config).build()
        c = self.campaign
        self.config = c.config
        self.clock = c.clock
        self.sim = c.sim
        self.streams = c.streams
        self.weather = c.weather
        self.bus = c.bus
        self.fault_log = c.fault_log
        self.recorder = c.recorder
        self.station = c.station
        self.fleet = c.fleet
        self.policy = c.policy
        self.transfers = c.transfers
        self.monitoring = c.monitoring
        self.lascar = c.lascar
        self.powermeter = c.powermeter
        self.webcam = c.webcam

    @property
    def prototype_result(self) -> Optional[PrototypeResult]:
        """Phase-1 outcome (None before :meth:`run`)."""
        return self.campaign.prototype_result

    @property
    def _snapshot(self):
        return self.campaign._snapshot

    @property
    def _ran(self) -> bool:
        return self.campaign._ran

    def __repr__(self) -> str:
        state = "finished" if self._ran else "ready"
        return f"Experiment(seed={self.config.seed}, {state})"

    def run(self, until: Optional[_dt.datetime] = None) -> ExperimentResults:
        """Run prototype + campaign and return the results.

        ``until`` truncates the campaign (tests use short horizons); the
        default runs to ``config.end_date``.
        """
        return self.campaign.run(until)
