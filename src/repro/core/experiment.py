"""The two-phase experiment driver.

Phase 1 (Section 3.1): a generic PC between two plastic boxes over the
Feb 12-15 weekend -- "a prototype test was undertaken to ascertain that a
real measurement was worth the trouble".

Phase 2: the tent campaign -- staged pairwise installs, the 10-minute
synthetic load, 20-minute collection rounds, the Lascar logger (late
arrival, download trips), the Technoline meter on the tent's power feed,
scheduled tent modifications, and the operator policy reacting to faults.

Usage::

    exp = Experiment(ExperimentConfig(seed=7))
    results = exp.run()
    print(results.summary())
"""

from __future__ import annotations

import datetime as _dt
from typing import List, Optional

from repro.climate.generator import WeatherGenerator
from repro.climate.station import WeatherStation
from repro.core.config import ExperimentConfig
from repro.core.deployment import Fleet
from repro.core.protocol import OperatorPolicy
from repro.core.results import ExperimentResults, PrototypeResult, take_snapshot
from repro.hardware.faults import FaultLog
from repro.hardware.host import Host
from repro.hardware.vendors import VENDOR_A
from repro.monitoring.collector import MonitoringHost
from repro.monitoring.datalogger import LascarDataLogger
from repro.monitoring.powermeter import TechnolineCostControl
from repro.monitoring.transport import TransferLedger
from repro.monitoring.webcam import TerraceWebcam
from repro.sim.clock import DAY, MINUTE, SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.thermal.enclosure import PlasticBoxShelter


class Experiment:
    """One complete, deterministic reproduction run.

    Parameters
    ----------
    config:
        The campaign description; defaults to the paper's own.
    """

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config if config is not None else ExperimentConfig()
        self.clock = SimClock()
        self.sim = Simulator(self.clock)
        self.streams = RngStreams(self.config.seed)
        self.weather = WeatherGenerator(self.config.climate, self.streams, self.clock)
        self.fault_log = FaultLog()

        self.station = WeatherStation(self.weather, self.streams)
        self.fleet = Fleet(self.sim, self.config, self.streams, self.weather, self.fault_log)
        self.policy = OperatorPolicy(self.sim, self.config, self.fleet, self.fault_log)
        self.transfers = TransferLedger()
        self.monitoring = MonitoringHost(
            self.sim,
            on_down_host=self.policy.on_down_host,
            on_unreachable=self.policy.on_unreachable,
            on_sensor_anomaly=self.policy.on_sensor_anomaly,
            transport=self.transfers,
            workload_ledger=self.fleet.ledger,
        )
        self.policy.bind_monitoring(self.monitoring)

        self.lascar = LascarDataLogger(
            self.fleet.tent,
            self.streams,
            arrival_time=self.clock.to_seconds(self.config.lascar_arrival),
        )
        self.powermeter = TechnolineCostControl([], self.streams)
        self.webcam = TerraceWebcam(self.weather, self.streams)

        self.prototype_result: Optional[PrototypeResult] = None
        self._snapshot = None
        self._ran = False

    def __repr__(self) -> str:
        state = "finished" if self._ran else "ready"
        return f"Experiment(seed={self.config.seed}, {state})"

    # ------------------------------------------------------------------
    # Public driver
    # ------------------------------------------------------------------
    def run(self, until: Optional[_dt.datetime] = None) -> ExperimentResults:
        """Run prototype + campaign and return the results.

        ``until`` truncates the campaign (tests use short horizons); the
        default runs to ``config.end_date``.
        """
        if self._ran:
            raise RuntimeError("an Experiment instance runs exactly once")
        self._ran = True
        end_date = until if until is not None else self.config.end_date
        end = self.clock.to_seconds(end_date)
        proto_end = self.clock.to_seconds(self.config.prototype_end)
        if end < proto_end:
            raise ValueError("campaign end precedes the prototype weekend")

        self.station.attach(self.sim, start=self.clock.to_seconds(self.config.prototype_start))
        self.prototype_result = self._run_prototype()
        self._schedule_campaign(end)
        self.sim.run_until(end)
        return self._build_results(end)

    # ------------------------------------------------------------------
    # Phase 1: the plastic-box weekend
    # ------------------------------------------------------------------
    def _run_prototype(self) -> PrototypeResult:
        start = self.clock.to_seconds(self.config.prototype_start)
        end = self.clock.to_seconds(self.config.prototype_end)
        shelter = PlasticBoxShelter("plastic-boxes", self.weather)
        proto_host = Host(
            host_id=0,
            spec=VENDOR_A,
            streams=self.streams,
            transient_model=self.config.transient_model,
            memory_fault_ratio=self.config.memory_model.page_fault_ratio,
        )
        cpu_temps: List[float] = []
        dt = self.config.tick_interval_s

        def tick() -> None:
            now = self.sim.now
            if now == start:
                proto_host.install(shelter, now)
            shelter.set_it_load(proto_host.average_power_w)
            shelter.advance(now)
            if proto_host.running:
                proto_host.tick(dt, now, self.fault_log)
            if proto_host.running:
                cpu_temps.append(proto_host.cpu_temp_c())

        handle = self.sim.every(dt, tick, start=start, label="prototype-tick")
        self.sim.run_until(end)
        handle.cancel()
        survived = proto_host.running
        if proto_host.running:
            proto_host.retire(end)  # the borrowed boxes had to be returned

        window = [r for r in self.station.readings if start <= r.time <= end]
        temps = [r.temp_c for r in window]
        return PrototypeResult(
            start=start,
            end=end,
            outside_min_c=min(temps) if temps else float("nan"),
            outside_mean_c=sum(temps) / len(temps) if temps else float("nan"),
            cpu_min_c=min(cpu_temps) if cpu_temps else float("nan"),
            survived=survived,
        )

    # ------------------------------------------------------------------
    # Phase 2: the campaign
    # ------------------------------------------------------------------
    def _schedule_campaign(self, end: float) -> None:
        test_start = self.clock.to_seconds(self.config.test_start)

        def erect_tent() -> None:
            self.fleet.power_tent_switches()

        self.sim.schedule_at(test_start, erect_tent, label="erect-tent")
        self.fleet.start_ticking(test_start)

        for plan in self.config.host_plans:
            if plan.install_date is None:
                continue
            self.sim.schedule_datetime(
                plan.install_date,
                lambda p=plan: self._install(p.host_id, p.group),
                label=f"install.host{plan.host_id:02d}",
            )

        for mod_plan in self.config.modification_plans:
            when = self.clock.to_seconds(mod_plan.date)
            if when > end:
                continue
            self.sim.schedule_at(
                when,
                lambda m=mod_plan.modification, t=when: self.fleet.tent.apply_modification(m, t),
                label=f"tent-mod.{mod_plan.modification.letter}",
            )

        self.sim.schedule_at(test_start, lambda: self.lascar.attach(self.sim), label="lascar")
        trip = self.lascar.arrival_time + self.config.logger_download_interval_days * DAY
        while trip < end:
            self.lascar.schedule_download_trip(
                trip, duration_s=self.config.logger_download_duration_min * MINUTE
            )
            trip += self.config.logger_download_interval_days * DAY

        self.sim.schedule_at(
            test_start, lambda: self.powermeter.attach(self.sim), label="powermeter"
        )
        self.sim.schedule_at(
            test_start, lambda: self.webcam.attach(self.sim), label="webcam"
        )
        self.sim.schedule_at(
            test_start + 10 * MINUTE, lambda: self.monitoring.attach(), label="collector"
        )
        # Weekly lab review: triage new wrong hashes with S.M.A.R.T. runs.
        self.sim.every(
            7 * DAY, self.policy.weekly_review, start=test_start + 7 * DAY,
            label="weekly-review",
        )

        snapshot_t = self.clock.to_seconds(self.config.snapshot_date)
        if snapshot_t <= end:
            self.sim.schedule_at(
                snapshot_t,
                lambda: setattr(
                    self,
                    "_snapshot",
                    take_snapshot(self.config, self.fleet.ledger, self.fault_log, snapshot_t),
                ),
                label="paper-snapshot",
            )

    def _install(self, host_id: int, group: str) -> None:
        now = self.sim.now
        enclosure = self.fleet.enclosure_for_group(group)
        host = self.fleet.install(host_id, enclosure, now)
        if group == "tent":
            chain = [self.fleet.next_tent_switch()]
            self.powermeter.plug_in(host)
        else:
            chain = [self.fleet.next_basement_switch()]
        self.monitoring.register(host, chain)

    # ------------------------------------------------------------------
    def _build_results(self, end: float) -> ExperimentResults:
        return ExperimentResults(
            config=self.config,
            clock=self.clock,
            fleet=self.fleet,
            station=self.station,
            lascar=self.lascar,
            powermeter=self.powermeter,
            monitoring=self.monitoring,
            policy=self.policy,
            webcam=self.webcam,
            fault_log=self.fault_log,
            prototype=self.prototype_result,
            snapshot=self._snapshot,
            end_time=end,
        )
