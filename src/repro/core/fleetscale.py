"""Fleet-scale batch cohorts: the paper's campaign at ``--hosts N``.

The columnar backend keeps the 19-host paper run byte-identical while
storing fleet state in numpy columns.  This module is the second half of
the scale story: a *batch* simulator that replays the paper's hardware
mix, tent physics, and fault models over an arbitrarily large cohort --
pods of 19 hosts, each pod a replica of the paper's vendor lineup under
its own tent -- using pure vector arithmetic per tick.

It is an explicitly *approximate* mode and is not draw-compatible with
the per-object engine:

- RNG draws are pooled (`Generator.random(n)` per hazard family per
  tick) instead of one named stream per host subsystem.
- The archiver's two-phase state machine is replaced by its duty cycle:
  a host is "bursting" for ``burst/600`` of every cycle, so heat uses
  the duty-averaged power and the cold-latch hazard uses the idle-CPU
  die temperature (the coldest point of the cycle, i.e. the
  conservative latch estimate).
- Install staggering, the two-failures-then-indoors policy, and
  per-host SMART ledgers are dropped; failures repair after the
  operator inspection delay and rejoin the fleet.
- Vendor C's mirror+RAID5 pair is approximated as "survives one disk
  loss" (the true layout survives one always and some second losses).

What it preserves: the vendor power/thermal coefficients, the two-node
tent envelope with the R/I/B/F/door modification schedule applied fleet
wide, the shared weather realisation, the transient/memory/disk/sensor
hazard rates, and the basement control group.  The point is cohort
statistics (failure counts, thermal envelopes, energy) at 100k hosts,
not event-for-event reproduction -- ``docs/architecture.md`` spells out
the contract.

The per-tick system pass runs in a fixed order on one engine heap entry
(weather -> thermal -> hazards -> workload), mirroring the batched
``every_key_group`` dispatch the paper config uses.
"""

from __future__ import annotations

import datetime as _dt
import math
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.climate.generator import WeatherGenerator
from repro.core.config import ExperimentConfig
from repro.hardware.vendors import vendor
from repro.plant.faults import FEED_GROUP_PODS, PlantFaultPlan
from repro.plant.fleet import FleetPlant
from repro.plant.trip import ThermalTripPolicy
from repro.sim import events as ev
from repro.sim.clock import SimClock
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.thermal.vectorized import TwoNodeTentBank
from repro.workload.kernel_tree import KernelSourceTree

POD_SIZE = 19
CYCLE_PERIOD_S = 600.0
MONITOR_PERIOD_S = 1200.0

# Host state codes (int8 column).
STAGED = 0
RUNNING = 1
FAILED = 2
SHED = 3  # powered down by the plant chaos plane (trip or feed drop)

# shed_reason codes (why a SHED host is down).
_SHED_NONE = 0
_SHED_TRIP = 1
_SHED_FEED = 2

_DISK_TOLERANCE = {"A": 1, "B": 0, "C": 1}


class FleetScaleCampaign:
    """Vectorized cohort simulation of ``n_hosts`` paper-style servers.

    Hosts are laid out in pods of 19: each pod replicates the paper's
    host plan (9 tent hosts, 9 basement twins, 1 staged spare) with the
    same vendor mix.  A partial final pod truncates that lineup.

    Parameters
    ----------
    n_hosts:
        Cohort size.  ``19`` gives one pod -- the paper's fleet shape.
    config:
        Campaign parameters; defaults to the paper configuration.
    tick_interval_s:
        Batch step, default three archiver cycles (1800 s).  Must be a
        whole number of 600 s cycles.  The exponential hazards integrate
        exactly over any step and the tent integrator picks its own
        stability substeps, so a coarser tick trades only monitoring
        granularity for speed.
    record_series:
        Opt into the fleet observatory: per-pod
        :class:`~repro.telemetry.timeseries.SeriesRecorder` signals
        (tent/basement temperature, humidity, cumulative failures by
        class, energy, throughput) captured each frame.  Off by default;
        recording draws no randomness, so the census stays identical
        either way.
    series_capacity:
        Stored samples per signal before the recorder's 2:1 fold
        (default 512; memory is bounded whatever the horizon).
    telemetry:
        Optional :class:`~repro.telemetry.hub.Telemetry` hub.  When set,
        every frame phase (weather/thermal/hazards/workload/observe) is
        timed into a ``fleetscale.*`` span and the run records engine
        health gauges -- the ``repro telemetry --hosts N`` profile.
    plant_faults:
        Optional :class:`~repro.plant.faults.PlantFaultPlan`.  An empty
        (or absent) plan with no trip policy constructs no plant at all:
        the frame list, RNG draw sequence, and census stay byte-identical
        to a plain campaign.
    trip_policy:
        Optional :class:`~repro.plant.trip.ThermalTripPolicy` arming
        per-pod intake-overtemp trips with staged load shedding.
    """

    def __init__(
        self,
        n_hosts: int,
        config: Optional[ExperimentConfig] = None,
        tick_interval_s: float = 3 * CYCLE_PERIOD_S,
        record_series: bool = False,
        series_capacity: int = 512,
        telemetry: Optional["Telemetry"] = None,
        plant_faults: Optional[PlantFaultPlan] = None,
        trip_policy: Optional[ThermalTripPolicy] = None,
    ) -> None:
        if n_hosts <= 0:
            raise ValueError("need at least one host")
        if tick_interval_s <= 0 or tick_interval_s % CYCLE_PERIOD_S:
            raise ValueError("tick must be a positive multiple of the 600 s cycle")
        self.config = config if config is not None else ExperimentConfig()
        self.n_hosts = int(n_hosts)
        self.tick_interval_s = float(tick_interval_s)
        self.telemetry = telemetry
        #: Optional :class:`~repro.telemetry.progress.ProgressMeter`;
        #: assign one before driving to stream heartbeats per frame.
        self.progress: Optional["ProgressMeter"] = None
        self.clock = SimClock()
        self.sim = Simulator(self.clock)
        streams = RngStreams(self.config.seed)
        self.weather = WeatherGenerator(self.config.climate, streams, self.clock)
        self._rng = streams.stream("fleetscale.pool")
        self._start_s = self.clock.to_seconds(self.config.test_start)

        self._build_cohort()
        self._build_thermal()
        self._build_plant(plant_faults, trip_policy)
        self._build_series(record_series, series_capacity)
        self._install_frame()

        # Tick-constant hazard probabilities (exact over any step).
        dt_h = self.tick_interval_s / 3600.0
        self._p_latch = 1.0 - math.exp(-0.035 * dt_h)
        self._p_disk = 1.0 - math.exp(-dt_h / 500_000.0)
        self._p_wrong_dt = 1.0 - (1.0 - self.p_wrong_per_cycle) ** (
            self.tick_interval_s / CYCLE_PERIOD_S
        )

        # Census counters.
        self.transient_failures = 0
        self.storage_failures = 0
        self.sensor_latches = 0
        self.wrong_hashes = 0
        self.repairs = 0
        self.workload_runs = 0.0
        self.energy_kwh = 0.0
        self.monitor_rounds = 0
        self._tent_temp_min = math.inf
        self._tent_temp_max = -math.inf
        self._tent_temp_sum = 0.0
        self._ticks = 0

    # ------------------------------------------------------------------
    # Cohort layout
    # ------------------------------------------------------------------
    def _build_cohort(self) -> None:
        n = self.n_hosts
        plans = sorted(self.config.host_plans, key=lambda p: p.host_id)[:POD_SIZE]
        slot = np.arange(n) % len(plans)
        self.pod = np.arange(n) // POD_SIZE
        self.n_pods = int(self.pod[-1]) + 1

        vendor_ids = np.array([p.vendor_id for p in plans])[slot]
        self.vendor_ids = vendor_ids
        groups = np.array([p.group for p in plans])[slot]
        self.tent_mask = groups == "tent"
        self.basement_mask = groups == "basement"

        def per_vendor(attr: str) -> np.ndarray:
            table = {v: float(getattr(vendor(v), attr)) for v in ("A", "B", "C")}
            return np.vectorize(table.__getitem__, otypes=[np.float64])(vendor_ids)

        self.idle_power_w = per_vendor("idle_power_w")
        self.active_power_w = per_vendor("active_power_w")
        self.cpu_idle_power_w = per_vendor("cpu_idle_power_w")
        self.case_rise_k_per_w = per_vendor("case_rise_k_per_w")
        self.cpu_theta_k_per_w = per_vendor("cpu_theta_k_per_w")
        self.compress_mb_per_s = per_vendor("compress_mb_per_s")
        self.defective = np.vectorize(
            {v: vendor(v).defective_series for v in ("A", "B", "C")}.__getitem__,
            otypes=[np.bool_],
        )(vendor_ids)
        self.ecc = np.vectorize(
            {v: vendor(v).ecc_memory for v in ("A", "B", "C")}.__getitem__,
            otypes=[np.bool_],
        )(vendor_ids)
        self.n_disks = np.vectorize(
            {v: vendor(v).disk_layout.disk_count for v in ("A", "B", "C")}.__getitem__,
            otypes=[np.int64],
        )(vendor_ids)
        self.disk_tolerance = np.vectorize(
            _DISK_TOLERANCE.__getitem__, otypes=[np.int64]
        )(vendor_ids)

        tree = KernelSourceTree()
        burst_s = (tree.total_bytes / 1e6) / self.compress_mb_per_s
        self.duty = burst_s / CYCLE_PERIOD_S
        self.avg_power_w = self.idle_power_w + self.duty * (
            self.active_power_w - self.idle_power_w
        )
        self.page_ops_per_cycle = tree.page_ops_per_cycle()
        ratio = self.config.memory_model.page_fault_ratio
        # P(>=1 flip) across one cycle's page ops, non-ECC banks only.
        self.p_wrong_per_cycle = 1.0 - (1.0 - ratio) ** self.page_ops_per_cycle

        model = self.config.transient_model
        self.frailty = self._rng.lognormal(
            mean=0.0, sigma=model.frailty_sigma, size=n
        )
        self.base_rate_per_hour = np.where(
            self.defective, model.defective_rate_per_hour, model.base_rate_per_hour
        ) * self.frailty

        # Dynamic state columns.
        self.state = np.where(groups == "spare", STAGED, RUNNING).astype(np.int8)
        self.uptime_s = np.zeros(n, dtype=np.float64)
        self.sensor_latched = np.zeros(n, dtype=np.bool_)
        self.disks_failed = np.zeros(n, dtype=np.int64)
        self.repair_at = np.full(n, np.inf, dtype=np.float64)

    def _build_thermal(self) -> None:
        first = self.weather.sample(self._start_s)
        self.tents = TwoNodeTentBank(self.n_pods, first.temp_c)
        cfg = self.config
        for plan in cfg.modification_plans:
            when = self.clock.to_seconds(plan.date)
            if when <= self._start_s:
                self.tents.apply_modification(plan.modification)
                continue
            self.sim.schedule_at(
                when,
                lambda mod=plan.modification: self.tents.apply_modification(mod),
                label=f"fleetscale.mod.{plan.modification.name}",
            )
        self._sample = first
        self._basement_c = 21.0
        self.intake_temp_c = np.full(self.n_hosts, first.temp_c, dtype=np.float64)

    def _build_plant(
        self,
        plant_faults: Optional[PlantFaultPlan],
        trip_policy: Optional[ThermalTripPolicy],
    ) -> None:
        """The chaos plane -- only constructed when actually armed.

        ``self.plant is None`` is the global fast-path gate: no extra
        frame callbacks, no extra columns, no extra RNG draws, so an
        unarmed campaign is byte-identical to one built before the plant
        existed.
        """
        armed = bool(plant_faults) or trip_policy is not None
        self.plant: Optional[FleetPlant] = None
        self.plant_events: Optional[ev.EventRecorder] = None
        self.shed_reason: Optional[np.ndarray] = None
        self._n_shed = 0
        if not armed:
            return
        bus = ev.EventBus()
        self.plant_events = ev.EventRecorder()
        self.plant_events.attach(bus)
        self.plant = FleetPlant(
            plant_faults, trip_policy, self.n_pods, self._start_s, bus=bus
        )
        self.shed_reason = np.zeros(self.n_hosts, dtype=np.int8)

    def _build_series(self, record_series: bool, series_capacity: int) -> None:
        """The observatory's recorder and per-pod cumulative tallies."""
        self.series = None
        self._pod_transient = None
        self._pod_storage = None
        self._pod_latches = None
        self._pod_wrong = None
        self._pod_energy = None
        self._pod_cycles = None
        self._pod_running = None
        self._pod_power = None
        self._pod_shed = (
            np.zeros(self.n_pods, dtype=np.float64)
            if (self.plant is not None or record_series)
            else None
        )
        if not record_series:
            return
        from repro.telemetry.timeseries import SeriesRecorder

        pods = self.n_pods
        self.series = SeriesRecorder(
            {
                "tent_air_c": pods,
                "basement_c": 1,
                "outside_temp_c": 1,
                "outside_rh_pct": 1,
                "hosts_running": pods,
                "failures_transient": pods,
                "failures_storage": pods,
                "sensor_latches": pods,
                "wrong_hashes": pods,
                "energy_kwh": pods,
                "workload_cycles": pods,
                "hosts_shed": pods,
            },
            capacity=series_capacity,
        )
        self._pod_transient = np.zeros(pods, dtype=np.float64)
        self._pod_storage = np.zeros(pods, dtype=np.float64)
        self._pod_latches = np.zeros(pods, dtype=np.float64)
        self._pod_wrong = np.zeros(pods, dtype=np.float64)
        self._pod_energy = np.zeros(pods, dtype=np.float64)
        self._pod_cycles = np.zeros(pods, dtype=np.float64)
        # Per-pod running census and running power draw, maintained
        # incrementally at the (rare) state transitions so the per-frame
        # recording path never rescans the whole host axis.
        running = self.state == RUNNING
        idx = np.flatnonzero(running)
        self._pod_running = np.bincount(
            self.pod[idx], minlength=pods
        ).astype(np.float64)
        self._pod_power = np.bincount(
            self.pod[idx], weights=self.avg_power_w[idx], minlength=pods
        )

    def _install_frame(self) -> None:
        dt = self.tick_interval_s
        if self.plant is not None:
            # Chaos-plane frame: plant faults advance after weather (so
            # strikes see this frame's sample) and trips evaluate right
            # after thermal (so they see this frame's intake).
            callbacks: List[Callable[[], None]] = [
                self._frame_weather,
                self._frame_plant,
                self._frame_thermal,
                self._frame_trip,
                self._frame_hazards,
                self._frame_workload,
            ]
            names = ["weather", "plant", "thermal", "trip", "hazards", "workload"]
        else:
            callbacks = [
                self._frame_weather,
                self._frame_thermal,
                self._frame_hazards,
                self._frame_workload,
            ]
            names = ["weather", "thermal", "hazards", "workload"]
        if self.series is not None:
            callbacks.append(self._frame_observe)
            names.append("observe")
        if self.telemetry is not None:
            tracer = self.telemetry.spans
            callbacks = [
                self._timed(tracer, f"fleetscale.{name}", frame)
                for name, frame in zip(names, callbacks)
            ]
        self.sim.every_key_group(
            dt,
            "fleetscale.frame",
            tuple(callbacks),
            start=self._start_s + dt,
            label="fleetscale frame",
        )
        self.sim.every_key_group(
            MONITOR_PERIOD_S,
            "fleetscale.monitor",
            (self._monitor_round,),
            start=self._start_s + MONITOR_PERIOD_S,
            label="fleetscale monitoring",
        )

    @staticmethod
    def _timed(
        tracer: Any, label: str, frame: Callable[[], None]
    ) -> Callable[[], None]:
        """Wrap one frame phase in a span (only built when telemetry is on)."""

        def timed_frame() -> None:
            started = perf_counter()
            try:
                frame()
            finally:
                tracer.record(label, perf_counter() - started)

        return timed_frame

    # ------------------------------------------------------------------
    # The per-tick system pass (fixed order, one heap entry)
    # ------------------------------------------------------------------
    def _frame_weather(self) -> None:
        self._sample = self.weather.sample(self.sim.now)

    def _frame_plant(self) -> None:
        """Advance the chaos plane (only installed when armed).

        Fault strikes/repairs land here; feed transitions power whole
        feed groups down or up before thermal sees their load.
        """
        plant = self.plant
        plant.advance(self.sim.now, self.tick_interval_s, self._sample.temp_c)
        for feed in plant.feed_dropped_now:
            self._drop_feed(feed)
        for feed in plant.feed_restored_now:
            self._restore_feed(feed)

    def _frame_thermal(self) -> None:
        dt = self.tick_interval_s
        s = self._sample
        running = self.state == RUNNING
        tent_on = running & self.tent_mask
        pod_load = np.bincount(
            self.pod[tent_on],
            weights=self.avg_power_w[tent_on],
            minlength=self.n_pods,
        )
        ua_factor = None
        if self.plant is not None and self.plant.degraded:
            ua_factor = self.plant.ua_factor
        self.tents.step(
            dt, pod_load, s.temp_c, s.wind_ms, s.solar_wm2, ua_factor=ua_factor
        )

        # Basement CRAC: setpoint plus the same diurnal wiggle as the
        # object model's BasementMachineRoom.
        day_frac = (self.sim.now % 86_400.0) / 86_400.0
        basement_c = 21.0 + 0.4 * math.sin(2.0 * math.pi * day_frac)
        if self.plant is not None:
            basement_c = self.plant.basement_temp(
                self.sim.now, dt, self._basement_c, basement_c, s.temp_c
            )
        self._basement_c = basement_c
        self.intake_temp_c = np.where(
            self.tent_mask, self.tents.intake_temp_c[self.pod], basement_c
        )
        air = self.tents.air_temp_c
        self._tent_temp_min = min(self._tent_temp_min, float(air.min()))
        self._tent_temp_max = max(self._tent_temp_max, float(air.max()))
        self._tent_temp_sum += float(air.mean())
        self._ticks += 1

    def _frame_trip(self) -> None:
        """Protective-trip pass (only installed when the plant is armed)."""
        dt = self.tick_interval_s
        now = self.sim.now
        plant = self.plant
        shed, restore = plant.evaluate(now, dt, self.tents.intake_temp_c)
        for pod, stage, fraction in shed:
            self._shed_pod(pod, stage, fraction, now)
        for pod in restore:
            self._restore_pod(pod, now)
        if self._n_shed:
            plant.host_hours_shed += self._n_shed * dt / 3600.0

    # -- chaos-plane host transitions ----------------------------------
    def _apply_shed(self, idx: np.ndarray, reason: int) -> None:
        """Power the hosts at ``idx`` down (they draw nothing, run nothing)."""
        self.state[idx] = SHED
        self.shed_reason[idx] = reason
        self._n_shed += len(idx)
        self.plant.hosts_shed += len(idx)
        if self._pod_shed is not None:
            self._pod_shed += np.bincount(self.pod[idx], minlength=self.n_pods)
        if self._pod_running is not None:
            self._pod_running -= np.bincount(self.pod[idx], minlength=self.n_pods)
            self._pod_power -= np.bincount(
                self.pod[idx], weights=self.avg_power_w[idx], minlength=self.n_pods
            )

    def _apply_restore(self, idx: np.ndarray) -> None:
        self.state[idx] = RUNNING
        self.shed_reason[idx] = _SHED_NONE
        self._n_shed -= len(idx)
        self.plant.hosts_restored += len(idx)
        if self._pod_shed is not None:
            self._pod_shed -= np.bincount(self.pod[idx], minlength=self.n_pods)
        if self._pod_running is not None:
            self._pod_running += np.bincount(self.pod[idx], minlength=self.n_pods)
            self._pod_power += np.bincount(
                self.pod[idx], weights=self.avg_power_w[idx], minlength=self.n_pods
            )

    def _feed_slice(self, feed: int) -> slice:
        span = FEED_GROUP_PODS * POD_SIZE
        return slice(feed * span, min(self.n_hosts, (feed + 1) * span))

    def _drop_feed(self, feed: int) -> None:
        seg = self._feed_slice(feed)
        idx = np.flatnonzero(self.state[seg] == RUNNING) + seg.start
        if not len(idx):
            return
        self._apply_shed(idx, _SHED_FEED)
        now = self.sim.now
        pods, counts = np.unique(self.pod[idx], return_counts=True)
        for pod, count in zip(pods, counts):
            self.plant._publish(
                ev.LoadShed(
                    time=now, pod=int(pod), hosts=int(count), stage=0, reason="feed"
                )
            )

    def _restore_feed(self, feed: int) -> None:
        seg = self._feed_slice(feed)
        mask = (self.state[seg] == SHED) & (self.shed_reason[seg] == _SHED_FEED)
        idx = np.flatnonzero(mask) + seg.start
        if not len(idx):
            return
        self._apply_restore(idx)
        now = self.sim.now
        pods, counts = np.unique(self.pod[idx], return_counts=True)
        for pod, count in zip(pods, counts):
            self.plant._publish(
                ev.LoadRestored(
                    time=now, pod=int(pod), hosts=int(count), reason="feed"
                )
            )

    def _shed_pod(self, pod: int, stage: int, fraction: float, now: float) -> None:
        """Bring the pod's tent group down to its stage's shed fraction.

        Lowest host index first, so serial and ``--jobs N`` runs shed
        the same hosts.
        """
        lo = pod * POD_SIZE
        seg = slice(lo, min(self.n_hosts, lo + POD_SIZE))
        tent = self.tent_mask[seg]
        target = int(math.ceil(fraction * int(tent.sum())))
        already = int(
            ((self.state[seg] == SHED) & (self.shed_reason[seg] == _SHED_TRIP)).sum()
        )
        need = target - already
        if need <= 0:
            return
        candidates = np.flatnonzero(tent & (self.state[seg] == RUNNING)) + lo
        idx = candidates[:need]
        if not len(idx):
            return
        self._apply_shed(idx, _SHED_TRIP)
        self.plant._publish(
            ev.LoadShed(
                time=now, pod=int(pod), hosts=int(len(idx)), stage=int(stage),
                reason="trip",
            )
        )

    def _restore_pod(self, pod: int, now: float) -> None:
        lo = pod * POD_SIZE
        seg = slice(lo, min(self.n_hosts, lo + POD_SIZE))
        mask = (self.state[seg] == SHED) & (self.shed_reason[seg] == _SHED_TRIP)
        idx = np.flatnonzero(mask) + lo
        if not len(idx):
            return
        self._apply_restore(idx)
        self.plant._publish(
            ev.LoadRestored(time=now, pod=int(pod), hosts=int(len(idx)), reason="trip")
        )

    def _frame_hazards(self) -> None:
        dt = self.tick_interval_s
        now = self.sim.now
        model = self.config.transient_model
        running = self.state == RUNNING
        n = self.n_hosts

        case = self.intake_temp_c + self.case_rise_k_per_w * self.avg_power_w
        cpu_idle = case + self.cpu_theta_k_per_w * self.cpu_idle_power_w

        # Sensor cold-latch: healthy chips below the threshold accrue
        # the same 0.035/h hazard as SensorChip.exposure_step.
        exposed = running & ~self.sensor_latched & (cpu_idle < -3.0)
        if exposed.any():
            latched = exposed & (self._rng.random(n) < self._p_latch)
            self.sensor_latched |= latched
            self.sensor_latches += int(latched.sum())
            if self._pod_latches is not None and latched.any():
                self._pod_latches += np.bincount(
                    self.pod[latched], minlength=self.n_pods
                )

        # Transient system failures: TransientFaultModel.rate_per_hour,
        # vectorized (frailty folded into base_rate_per_hour at build).
        rate = self.base_rate_per_hour
        hot = case > model.temp_reference_c
        cold = model.cold_multiplier != 1.0
        if hot.any() or cold:
            rate = rate.copy()
            if hot.any():
                rate[hot] *= 2.0 ** (
                    (case[hot] - model.temp_reference_c) / model.temp_doubling_c
                )
            if cold:
                rate[self.intake_temp_c < 0.0] *= model.cold_multiplier
        p_fail = 1.0 - np.exp(rate * (-dt / 3600.0))
        struck = running & (self._rng.random(n) < p_fail)

        # Disk attrition: 500k-hour MTBF per healthy drive, doubling
        # every 15 degC of case air above 45 degC (Disk.tick).
        disk_hot = case > 45.0
        if disk_hot.any():
            disk_rate = np.full(n, 1.0 / 500_000.0)
            disk_rate[disk_hot] *= 2.0 ** ((case[disk_hot] - 45.0) / 15.0)
            p_disk = 1.0 - np.exp(disk_rate * (-dt / 3600.0))
        else:
            p_disk = self._p_disk
        healthy_disks = np.where(running, self.n_disks - self.disks_failed, 0)
        new_losses = self._rng.binomial(healthy_disks, p_disk)
        self.disks_failed += new_losses
        storage_dead = running & (self.disks_failed > self.disk_tolerance)

        self.transient_failures += int((struck & ~storage_dead).sum())
        self.storage_failures += int(storage_dead.sum())
        down = struck | storage_dead
        if down.any():
            if self._pod_running is not None:
                idx = np.flatnonzero(down)
                pods_down = self.pod[idx]
                is_storage = storage_dead[idx]
                self._pod_transient += np.bincount(
                    pods_down[~is_storage], minlength=self.n_pods
                )
                self._pod_storage += np.bincount(
                    pods_down[is_storage], minlength=self.n_pods
                )
                self._pod_running -= np.bincount(
                    pods_down, minlength=self.n_pods
                )
                self._pod_power -= np.bincount(
                    pods_down, weights=self.avg_power_w[idx], minlength=self.n_pods
                )
            if self.plant is not None:
                # Survival census: failures inside an active incident
                # (fault, trip, or shed in force) count as hosts lost.
                incident = self.plant.incident_pods(now)
                if incident.any():
                    self.plant.hosts_lost += int(
                        incident[self.pod[np.flatnonzero(down)]].sum()
                    )
            self.state[down] = FAILED
            self.repair_at[down] = now + self.config.inspection_delay_hours * 3600.0
            # A repair swaps the dead drives too.
            self.disks_failed[storage_dead] = 0

        due = (self.state == FAILED) & (self.repair_at <= now)
        if due.any():
            if self._pod_running is not None:
                idx = np.flatnonzero(due)
                pods_due = self.pod[idx]
                self._pod_running += np.bincount(
                    pods_due, minlength=self.n_pods
                )
                self._pod_power += np.bincount(
                    pods_due, weights=self.avg_power_w[idx], minlength=self.n_pods
                )
            self.state[due] = RUNNING
            self.repair_at[due] = np.inf
            self.repairs += int(due.sum())

    def _frame_workload(self) -> None:
        dt = self.tick_interval_s
        running = self.state == RUNNING
        n_run = int(running.sum())
        cycles = dt / CYCLE_PERIOD_S
        self.uptime_s[running] += dt
        self.workload_runs += n_run * cycles
        self.energy_kwh += float(self.avg_power_w[running].sum()) * dt / 3.6e6
        if self._pod_energy is not None:
            # The incremental gauges already hold this frame's running
            # census and power draw (hazards ran earlier in the frame).
            self._pod_energy += self._pod_power * (dt / 3.6e6)
            self._pod_cycles += self._pod_running * cycles

        flippable = running & ~self.ecc
        if flippable.any():
            wrong = flippable & (self._rng.random(self.n_hosts) < self._p_wrong_dt)
            self.wrong_hashes += int(wrong.sum())
            if self._pod_wrong is not None and wrong.any():
                self._pod_wrong += np.bincount(
                    self.pod[wrong], minlength=self.n_pods
                )
        if self.progress is not None:
            self.progress.tick(self.sim.now)

    def _frame_observe(self) -> None:
        """Fold the frame's signals into the observatory recorder.

        Runs last in the frame group (only installed with
        ``record_series=True``); it reads state, draws no randomness,
        and schedules nothing, so the census is identical either way.
        """
        s = self._sample
        self.series.record(
            self.sim.now,
            {
                "tent_air_c": self.tents.air_temp_c,
                "basement_c": self._basement_c,
                "outside_temp_c": s.temp_c,
                "outside_rh_pct": s.rh_percent,
                "hosts_running": self._pod_running,
                "failures_transient": self._pod_transient,
                "failures_storage": self._pod_storage,
                "sensor_latches": self._pod_latches,
                "wrong_hashes": self._pod_wrong,
                "energy_kwh": self._pod_energy,
                "workload_cycles": self._pod_cycles,
                "hosts_shed": self._pod_shed,
            },
        )

    def _monitor_round(self) -> None:
        self.monitor_rounds += 1
        self._reachable_last = int((self.state == RUNNING).sum())

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(self, days: float) -> Dict[str, Any]:
        """Advance the cohort ``days`` simulated days and return a census."""
        if days <= 0:
            raise ValueError("need a positive horizon")
        end = min(
            self._start_s + days * 86_400.0,
            self.clock.to_seconds(self.config.end_date),
        )
        try:
            self.sim.run_until(end)
        finally:
            # A raising campaign still owes its final: true heartbeat so
            # tail -f consumers see the run close.
            if self.progress is not None:
                self.progress.finish(self.sim.now)
        self._record_run_metrics()
        return self.summary()

    def _record_run_metrics(self) -> None:
        """End-of-run health gauges (mirrors ``Campaign._record_run_metrics``)."""
        if self.telemetry is None:
            return
        metrics = self.telemetry.metrics
        metrics.gauge("engine.events_fired").set(self.sim.events_fired)
        metrics.gauge("engine.heap_compactions").set(self.sim.heap_compactions)
        metrics.gauge("engine.pending").set(self.sim.pending_count)
        metrics.gauge("fleet.hosts").set(self.n_hosts)
        metrics.gauge("fleet.pods").set(self.n_pods)
        metrics.gauge("fleet.frames").set(self._ticks)
        metrics.gauge("fleet.transient_failures").set(self.transient_failures)
        metrics.gauge("fleet.storage_failures").set(self.storage_failures)
        metrics.gauge("fleet.sensor_latches").set(self.sensor_latches)
        metrics.gauge("fleet.wrong_hashes").set(self.wrong_hashes)

    def step_days(self, days: float) -> None:
        """Advance by ``days`` from wherever the clock stands (for benches)."""
        base = max(self.sim.now, self._start_s)
        self.sim.run_until(base + days * 86_400.0)

    def plant_census(self) -> Optional[Dict[str, Any]]:
        """The survival census (None when the chaos plane is unarmed)."""
        if self.plant is None:
            return None
        p = self.plant
        return {
            "faults_injected": p.faults_injected,
            "faults_repaired": p.faults_repaired,
            "trips": p.trips,
            "trip_clears": p.trip_clears,
            "hosts_shed": p.hosts_shed,
            "hosts_restored": p.hosts_restored,
            "hosts_shed_now": self._n_shed,
            "host_hours_shed": round(p.host_hours_shed, 3),
            "excursion_minutes": round(p.excursion_minutes, 3),
            "hosts_lost": p.hosts_lost,
        }

    def summary(self) -> Dict[str, Any]:
        mean_tent = self._tent_temp_sum / self._ticks if self._ticks else math.nan
        census = {
            "hosts": self.n_hosts,
            "pods": self.n_pods,
            "simulated_s": max(0.0, self.sim.now - self._start_s),
            "ticks": self._ticks,
            "running": int((self.state == RUNNING).sum()),
            "transient_failures": self.transient_failures,
            "storage_failures": self.storage_failures,
            "sensor_latches": self.sensor_latches,
            "wrong_hashes": self.wrong_hashes,
            "repairs": self.repairs,
            "workload_runs": int(round(self.workload_runs)),
            "energy_kwh": round(self.energy_kwh, 3),
            "monitor_rounds": self.monitor_rounds,
            "tent_air_c": {
                "min": round(self._tent_temp_min, 3) if self._ticks else None,
                "mean": round(mean_tent, 3) if self._ticks else None,
                "max": round(self._tent_temp_max, 3) if self._ticks else None,
            },
            "engine": {
                "events_fired": self.sim.events_fired,
                "pending": self.sim.pending_count,
                "heap_compactions": self.sim.heap_compactions,
                "frames": self._ticks,
            },
        }
        if self.plant is not None:
            census["plant"] = self.plant_census()
        return census

    # ------------------------------------------------------------------
    # Observatory access
    # ------------------------------------------------------------------
    def pod_series(self, signal: str, pod: int):
        """One pod's recorded timeline (needs ``record_series=True``)."""
        if self.series is None:
            raise ValueError(
                "per-pod series were not recorded; build the campaign "
                "with record_series=True"
            )
        return self.series.series(signal, row=pod)

    def format_summary(self) -> str:
        s = self.summary()
        when = self.clock.to_datetime(self.sim.now)
        tent = s["tent_air_c"]
        lines = [
            f"fleet-scale cohort: {s['hosts']} hosts in {s['pods']} pods "
            f"(through {when:%Y-%m-%d %H:%M})",
            f"  running {s['running']}  repairs {s['repairs']}",
            f"  failures: {s['transient_failures']} transient, "
            f"{s['storage_failures']} storage, {s['sensor_latches']} sensor latches, "
            f"{s['wrong_hashes']} wrong hashes",
            f"  workload: {s['workload_runs']} archive cycles, "
            f"{s['energy_kwh']:.1f} kWh",
            f"  engine: {s['engine']['events_fired']} events over "
            f"{s['engine']['frames']} frames, "
            f"{s['engine']['heap_compactions']} heap compactions",
        ]
        if tent["mean"] is not None:
            lines.append(
                f"  tent air: {tent['min']:.1f} .. {tent['mean']:.1f} .. "
                f"{tent['max']:.1f} degC"
            )
        plant = s.get("plant")
        if plant is not None:
            lines.append(
                f"  plant: {plant['faults_injected']} faults "
                f"({plant['faults_repaired']} repaired), {plant['trips']} trips, "
                f"{plant['hosts_shed']} hosts shed "
                f"({plant['host_hours_shed']:.1f} host-hours), "
                f"{plant['excursion_minutes']:.0f} excursion minutes, "
                f"{plant['hosts_lost']} hosts lost"
            )
        return "\n".join(lines)
