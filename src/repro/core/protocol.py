"""The operator playbook: what the experimenters did when things broke.

Section 4.2.1, turned into policy:

- a **down host** is inspected on the next working visit (the paper found
  the Saturday-04:40 failure "on the following Monday").  The first
  failure earns a reset in place and a "transient" mark; reaching the
  configured failure budget (two, like host #15) gets the host taken
  indoors, memtested, and left to run in the office -- and, if it was a
  tent host, a spare is installed in its stead;
- a **sensor anomaly** (-111 degC readings) gets a re-detection attempt --
  which, as in the paper, makes the chip vanish -- followed a week later
  by a warm reboot that recovers it;
- an **unreachable host** points at a dead switch: the operator re-cables
  its hosts (to the surviving tent switch, or to a healthy replacement
  from stock), and -- the first time -- bench-tests the never-deployed
  spare, which manifests the identical inherent failure.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.config import ExperimentConfig
from repro.core.deployment import Fleet
from repro.hardware.faults import FaultEvent, FaultKind, FaultLog
from repro.hardware.host import Host, HostState
from repro.hardware.sensors import SensorState
from repro.hardware.switch import NetworkSwitch
from repro.monitoring.collector import MonitoringHost, NetworkPath
from repro.sim.clock import DAY, HOUR
from repro.sim.engine import Simulator
from repro.sim.events import EventBus, HostReplaced, SwitchRepaired
from repro.state.protocol import check_version

_STATE_VERSION = 1


class OperatorPolicy:
    """Reactive maintenance, wired to the monitoring host's callbacks.

    Construct it, then build the :class:`MonitoringHost` with this
    object's ``on_*`` methods, then call :meth:`bind_monitoring`.
    """

    def __init__(
        self,
        sim: Simulator,
        config: ExperimentConfig,
        fleet: Fleet,
        fault_log: FaultLog,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.fleet = fleet
        self.fault_log = fault_log
        self.bus = bus
        self.monitoring: Optional[MonitoringHost] = None

        self.failure_counts: Dict[int, int] = {}
        self.memtest_verdicts: Dict[int, bool] = {}
        #: host id -> all S.M.A.R.T. long self-tests passed (wrong-hash triage).
        self.smart_verdicts: Dict[int, bool] = {}
        self._reviewed_fault_count = 0
        #: ``(time, failed_host_id, replacement_host_id)``
        self.replacements: List[Tuple[float, int, int]] = []
        #: ``(time, dead_switch_name, new_switch_name)``
        self.switch_repairs: List[Tuple[float, str, str]] = []
        self.spare_bench_result: Optional[bool] = None

        self._inspections_pending: Set[int] = set()
        self._sensor_handling: Set[int] = set()
        self._switch_repairs_pending: Set[str] = set()
        self.register_keys(sim)

    def __repr__(self) -> str:
        return (
            f"OperatorPolicy(inspections={sum(self.failure_counts.values())}, "
            f"replacements={len(self.replacements)}, "
            f"switch_repairs={len(self.switch_repairs)})"
        )

    def bind_monitoring(self, monitoring: MonitoringHost) -> None:
        """Attach the monitoring host whose topology the policy repairs."""
        self.monitoring = monitoring

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def register_keys(self, sim: Simulator) -> None:
        """Bind the playbook's one-shot action keys on ``sim``.

        Every delayed action the policy schedules is keyed with plain
        host-id/switch-name arguments, so pending interventions survive a
        checkpoint: the engine re-materializes them against these keys.
        """
        sim.register("policy.inspect", self._inspect_host_id)
        sim.register("policy.finish_boot", self._finish_boot)
        sim.register("policy.install_spare", self._install_spare)
        sim.register("policy.handle_sensor", self._handle_sensor_id)
        sim.register("policy.warm_reboot", self._warm_reboot)
        sim.register("policy.repair_switch", self._repair_switch_name)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "failure_counts": {
                str(k): v for k, v in sorted(self.failure_counts.items())
            },
            "memtest_verdicts": {
                str(k): v for k, v in sorted(self.memtest_verdicts.items())
            },
            "smart_verdicts": {
                str(k): v for k, v in sorted(self.smart_verdicts.items())
            },
            "reviewed_fault_count": self._reviewed_fault_count,
            "replacements": [list(r) for r in self.replacements],
            "switch_repairs": [list(r) for r in self.switch_repairs],
            "spare_bench_result": self.spare_bench_result,
            "inspections_pending": sorted(self._inspections_pending),
            "sensor_handling": sorted(self._sensor_handling),
            "switch_repairs_pending": sorted(self._switch_repairs_pending),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("operator_policy", state, _STATE_VERSION)
        self.failure_counts = {
            int(k): int(v) for k, v in state["failure_counts"].items()
        }
        self.memtest_verdicts = {
            int(k): bool(v) for k, v in state["memtest_verdicts"].items()
        }
        self.smart_verdicts = {
            int(k): bool(v) for k, v in state["smart_verdicts"].items()
        }
        self._reviewed_fault_count = int(state["reviewed_fault_count"])
        self.replacements = [
            (float(t), int(failed), int(spare))
            for t, failed, spare in state["replacements"]
        ]
        self.switch_repairs = [
            (float(t), str(dead), str(new))
            for t, dead, new in state["switch_repairs"]
        ]
        self.spare_bench_result = state["spare_bench_result"]
        self._inspections_pending = {int(i) for i in state["inspections_pending"]}
        self._sensor_handling = {int(i) for i in state["sensor_handling"]}
        self._switch_repairs_pending = set(state["switch_repairs_pending"])

    # ------------------------------------------------------------------
    # Down hosts
    # ------------------------------------------------------------------
    def on_down_host(self, time: float, host: Host) -> None:
        """Collection round found a host not answering SSH."""
        if host.host_id in self._inspections_pending:
            return
        if host.state is not HostState.FAILED:
            return
        self._inspections_pending.add(host.host_id)
        delay = self.config.inspection_delay_hours * HOUR
        self.sim.schedule_key(
            delay,
            "policy.inspect",
            args=(host.host_id,),
            label=f"inspect.{host.hostname}",
        )

    def _inspect_host_id(self, host_id: int) -> None:
        host = self.fleet.host(host_id)
        time = self.sim.now
        self._inspections_pending.discard(host.host_id)
        if host.state is not HostState.FAILED:
            return
        count = self.failure_counts.get(host.host_id, 0) + 1
        self.failure_counts[host.host_id] = count
        if count < self.config.failures_before_indoors:
            # "The failure was initially marked as transient and the host
            # resumed normal operations in the tent."  The power cycle
            # itself takes a few minutes of BIOS and OS bring-up.
            host.begin_boot(time)
            self.sim.schedule_key(
                self.config.boot_duration_min * 60.0,
                "policy.finish_boot",
                args=(host.host_id,),
                label=f"boot.{host.hostname}",
            )
            return
        self._take_indoors(host, time)

    def _finish_boot(self, host_id: int) -> None:
        self.fleet.host(host_id).finish_boot(self.sim.now)

    def _take_indoors(self, host: Host, time: float) -> None:
        was_tent_host = host.enclosure is self.fleet.tent
        host.move_to(self.fleet.indoors, time)
        host.reset(time)
        survived = host.run_memtest(4.0, time)
        self.memtest_verdicts[host.host_id] = survived
        if not survived:
            self.fault_log.record(
                FaultEvent(
                    time=time,
                    kind=FaultKind.MEMTEST,
                    host_id=host.host_id,
                    detail="Memtest86+ caused a system failure within hours",
                )
            )
            # "After this, the host was left to operate in an indoors
            # environment."  The crash ends the memtest, not the host.
        if was_tent_host:
            self._replace_in_tent(host, time)

    def _replace_in_tent(self, failed_host: Host, time: float) -> None:
        spare = self._find_spare(failed_host.spec.vendor_id)
        if spare is None:
            return
        install_at = time + 1 * DAY
        self.sim.schedule_at_key(
            install_at,
            "policy.install_spare",
            args=(failed_host.host_id, spare.host_id),
            label=f"replace.{failed_host.hostname}",
        )

    def _install_spare(self, failed_host_id: int, spare_host_id: int) -> None:
        now = self.sim.now
        spare = self.fleet.host(spare_host_id)
        self.fleet.install(spare.host_id, self.fleet.tent, now)
        if self.monitoring is not None:
            self.monitoring.register(spare, [self.fleet.next_tent_switch()])
        self.replacements.append((now, failed_host_id, spare.host_id))
        if self.bus is not None:
            self.bus.publish(
                HostReplaced(
                    time=now,
                    failed_host_id=failed_host_id,
                    replacement_host_id=spare.host_id,
                )
            )

    def _find_spare(self, vendor_id: str) -> Optional[Host]:
        for plan in self.config.plans_by_group("spare"):
            host = self.fleet.host(plan.host_id)
            if host.state is HostState.STAGED and plan.vendor_id == vendor_id:
                return host
        return None

    # ------------------------------------------------------------------
    # Weekly lab review (the Section 4.2.2 diagnostic chain)
    # ------------------------------------------------------------------
    def weekly_review(self) -> None:
        """Triage fault-log entries accumulated since the last review.

        For every new wrong-hash event the operators run the affected
        host's S.M.A.R.T. long self-tests -- the step that, in the paper,
        ruled the disks out and left non-ECC memory as "the current
        conjecture of a failure cause".
        """
        time = self.sim.now
        new_events = self.fault_log.events[self._reviewed_fault_count :]
        self._reviewed_fault_count = len(self.fault_log.events)
        for event in new_events:
            if event.kind is not FaultKind.WRONG_HASH or event.host_id is None:
                continue
            host = self.fleet.host(event.host_id)
            if not host.running:
                continue
            passed = host.storage.run_long_self_tests(time)
            previous = self.smart_verdicts.get(event.host_id, True)
            self.smart_verdicts[event.host_id] = previous and passed

    def memory_conjecture_holds(self) -> bool:
        """The paper's conclusion: every triaged drive passed its long
        test, so the corruption must come from (non-ECC) memory."""
        return all(self.smart_verdicts.values()) if self.smart_verdicts else False

    # ------------------------------------------------------------------
    # Sensor anomalies
    # ------------------------------------------------------------------
    def on_sensor_anomaly(self, time: float, host: Host) -> None:
        """Collection round pulled a -111 degC reading (or a vanished chip)."""
        if host.host_id in self._sensor_handling:
            return
        self._sensor_handling.add(host.host_id)
        delay = self.config.inspection_delay_hours * HOUR
        self.sim.schedule_key(
            delay,
            "policy.handle_sensor",
            args=(host.host_id,),
            label=f"sensor.{host.hostname}",
        )

    def _handle_sensor_id(self, host_id: int) -> None:
        # "we tried to redetect the sensor chip ... Instead, the opposite
        # resulted, and the sensor chip ceased to be detected at all."
        host = self.fleet.host(host_id)
        if host.sensor.state is SensorState.ERRATIC:
            host.sensor.redetect()
        if host.sensor.state is SensorState.UNDETECTED:
            delay = self.config.sensor_reboot_delay_days * DAY
            self.sim.schedule_key(
                delay,
                "policy.warm_reboot",
                args=(host.host_id,),
                label=f"warm-reboot.{host.hostname}",
            )
        else:
            self._sensor_handling.discard(host.host_id)

    def _warm_reboot(self, host_id: int) -> None:
        host = self.fleet.host(host_id)
        if host.running:
            host.warm_reboot(self.sim.now)
        self._sensor_handling.discard(host.host_id)

    # ------------------------------------------------------------------
    # Network repairs
    # ------------------------------------------------------------------
    def on_unreachable(self, time: float, path: NetworkPath) -> None:
        """Collection round could not reach a host: suspect the switch chain."""
        dead = [s for s in path.switches if not s.operational]
        for switch in dead:
            if switch.name in self._switch_repairs_pending:
                continue
            self._switch_repairs_pending.add(switch.name)
            self.sim.schedule_key(
                self.config.inspection_delay_hours * HOUR,
                "policy.repair_switch",
                args=(switch.name,),
                label=f"repair.{switch.name}",
            )

    def _repair_switch_name(self, switch_name: str) -> None:
        by_name = {s.name: s for s in self.fleet._all_switches()}
        self._repair_switch(by_name[switch_name])

    def _repair_switch(self, dead_switch: NetworkSwitch) -> None:
        time = self.sim.now
        replacement = self._pick_replacement_switch(dead_switch)
        self.fleet.swap_tent_switch(dead_switch, replacement)
        if self.monitoring is not None:
            for path in self.monitoring.paths.values():
                if dead_switch in path.switches:
                    new_chain = [
                        replacement if s is dead_switch else s for s in path.switches
                    ]
                    path.reroute(new_chain)
        self.switch_repairs.append((time, dead_switch.name, replacement.name))
        self._switch_repairs_pending.discard(dead_switch.name)
        if self.bus is not None:
            self.bus.publish(
                SwitchRepaired(
                    time=time,
                    dead_switch=dead_switch.name,
                    replacement_switch=replacement.name,
                )
            )
        if self.spare_bench_result is None:
            # First failure prompts the post-mortem: a long soak test of the
            # never-deployed spare ("after some testing, the remaining
            # switch ... manifested an identical failure state").
            self.spare_bench_result = self.fleet.spare_switch.bench_test(
                duration_hours=500.0, time=time
            )
            if not self.spare_bench_result:
                self.fault_log.record(
                    FaultEvent(
                        time=time,
                        kind=FaultKind.SWITCH,
                        host_id=None,
                        detail=f"{self.fleet.spare_switch.name} (bench test: identical failure)",
                    )
                )

    def _pick_replacement_switch(self, dead_switch: NetworkSwitch) -> NetworkSwitch:
        # A dead *tent* switch: prefer the surviving tent switch while it
        # has free ports (the paper's operators re-cabled before sourcing
        # a replacement).  Any other switch goes straight to stock -- the
        # basement never borrows tent gear.
        was_tent_switch = (
            dead_switch in self.fleet.tent_switches
            or dead_switch in self.fleet.active_tent_switches
        )
        if was_tent_switch:
            for candidate in self.fleet.active_tent_switches:
                if candidate is dead_switch or not candidate.operational:
                    continue
                spare_ports = NetworkSwitch.PORT_COUNT - len(candidate.connected())
                displaced = len(dead_switch.connected())
                if spare_ports >= displaced:
                    return candidate
        return self.fleet.provision_replacement_switch()
