"""Paper-style textual reports.

Each function renders one slice of Section 4/5 from an
:class:`~repro.core.results.ExperimentResults`, in the voice of the
paper's own summary sentences.  The benchmarks print these next to the
paper's numbers so EXPERIMENTS.md can record paper-vs-measured.
"""

from __future__ import annotations

from typing import List

from repro.analysis.failures import (
    INTEL_FAILURE_RATE_PERCENT,
    failures_by_host,
    find_common_cause_clusters,
)
from repro.analysis.memory_errors import paper_estimate
from repro.analysis.pue import paper_breakdown
from repro.core.results import ExperimentResults
from repro.hardware.faults import FaultKind
from repro.workload.bzip2 import bzip2recover


def prototype_report(results: ExperimentResults) -> str:
    """Section 3.1: the plastic-box weekend."""
    if results.prototype is None:
        return "prototype phase not run"
    p = results.prototype
    lines = [
        "== Prototype weekend (plastic boxes, Feb 12-15) ==",
        p.describe(),
        f"  paper: outside as low as -10.2 degC, average -9.2 degC; "
        f"CPU operating as low as -4 degC; prototype survived",
    ]
    return "\n".join(lines)


def conditions_report(results: ExperimentResults) -> str:
    """Section 4.1: temperatures and humidities."""
    outside_t = results.outside_temperature()
    outside_rh = results.outside_humidity()
    inside_t = results.inside_temperature_raw()
    inside_rh = results.inside_humidity_raw()
    lines = ["== Conditions (Section 4.1) =="]
    lines.append(
        f"outside: {outside_t.min():.1f} .. {outside_t.max():.1f} degC, "
        f"RH {outside_rh.min():.0f} .. {outside_rh.max():.0f} %"
    )
    if not inside_t.empty:
        lines.append(
            f"tent:    {inside_t.min():.1f} .. {inside_t.max():.1f} degC, "
            f"RH {inside_rh.min():.0f} .. {inside_rh.max():.0f} % "
            f"(from Lascar arrival onward)"
        )
        lines.append(
            f"tent RH spread {inside_rh.std():.1f} % vs outside {outside_rh.std():.1f} % "
            f"(the tent retains more stable humidities)"
        )
    mods = results.tent.modification_times()
    if mods:
        marks = ", ".join(
            f"{letter}@{results.clock.format(t)}" for letter, t in sorted(mods.items(), key=lambda kv: kv[1])
        )
        lines.append(f"tent modifications: {marks}")
    return "\n".join(lines)


def faults_report(results: ExperimentResults) -> str:
    """Section 4.2: the failure census."""
    lines = ["== Faults encountered (Section 4.2) =="]
    snapshot = results.snapshot
    if snapshot is not None:
        lines.append(
            f"at the paper snapshot: {len(snapshot.failed_host_ids)} of "
            f"{snapshot.initially_installed} initially installed hosts failed "
            f"({snapshot.failure_rate_percent:.1f} %; paper: 5.6 %, Intel: "
            f"{INTEL_FAILURE_RATE_PERCENT} %)"
        )
    per_host = failures_by_host(results.fault_log.events)
    for host_id in sorted(per_host):
        host = results.fleet.host(host_id)
        lines.append(
            f"  host #{host_id:02d} (vendor {host.spec.vendor_id}): "
            f"{per_host[host_id]} system failure(s), "
            f"{host.reset_count} reset(s)"
        )
    sensor_hosts = [
        h for h in results.fleet.hosts.values() if h.sensor.ever_latched
    ]
    for host in sensor_hosts:
        lines.append(
            f"  host #{host.host_id:02d}: sensor chip latched at "
            f"{results.clock.format(host.sensor.latch_time)} "
            f"({host.sensor.erroneous_reading_count()} readings of -111 degC)"
        )
    switch_events = results.fault_log.of_kind(FaultKind.SWITCH)
    for event in switch_events:
        lines.append(f"  switch: {event.detail} at {results.clock.format(event.time)}")
    clusters = find_common_cause_clusters(results.fault_log.events)
    lines.append(
        f"common-cause clusters (>=2 hosts, same kind, 48 h): {len(clusters)} "
        f"(paper expected and found none attributable to the environment)"
    )
    return "\n".join(lines)


def wrong_hash_report(results: ExperimentResults) -> str:
    """Section 4.2.2: wrong hashes and the memory-error arithmetic."""
    ledger = results.ledger
    lines = ["== Wrong hashes (Section 4.2.2) =="]
    lines.append(
        f"{ledger.total_wrong_hashes} wrong md5sums in {ledger.total_runs} runs "
        f"(paper: 5 in 27,627)"
    )
    for host_id in ledger.hosts_with_wrong_hashes():
        host = results.fleet.host(host_id)
        group = "tent" if host.enclosure is results.fleet.tent else host.enclosure.name
        ecc = "ECC" if host.spec.ecc_memory else "non-ECC"
        lines.append(
            f"  host #{host_id:02d} ({ecc}, {group}): {ledger.wrong_per_host[host_id]}"
        )
    archive = ledger.most_recent_stored_archive()
    if archive is not None:
        report = bzip2recover(archive)
        lines.append(f"  bzip2recover on the most recent stored tarball: {report.summary()}")
        lines.append("  paper: 'only a single one of the 396 bzip2 compression blocks'")
    if results.policy.smart_verdicts:
        all_passed = results.policy.memory_conjecture_holds()
        verdict = (
            "all drives passed their S.M.A.R.T. long test runs -- the memory "
            "conjecture holds" if all_passed else "some drives FAILED their long tests"
        )
        lines.append(f"  weekly triage: {verdict}")
    estimate = results.memory_error_estimate()
    lines.append(estimate.describe())
    lines.append(f"paper's own estimate: {paper_estimate().describe()}")
    return "\n".join(lines)


def reliability_report(results: ExperimentResults) -> str:
    """Beyond the paper: confidence intervals and survival analysis."""
    from repro.analysis.reliability import (
        kaplan_meier,
        lifetimes_from_results,
        rates_are_consistent,
        wilson_interval,
    )
    from repro.sim.clock import DAY

    lines = ["== Reliability statistics (extension) =="]
    snapshot = results.snapshot
    if snapshot is not None:
        failed = len(snapshot.failed_host_ids)
        lo, hi = wilson_interval(failed, snapshot.initially_installed)
        lines.append(
            f"snapshot census {failed}/{snapshot.initially_installed}: "
            f"95 % CI {100 * lo:.1f}-{100 * hi:.1f} % "
            f"(contains Intel's 4.46 %: "
            f"{'yes' if lo <= 0.0446 <= hi else 'no'})"
        )
        consistent = rates_are_consistent(
            failed, snapshot.initially_installed, 40, 896
        )
        lines.append(
            f"two-proportion test vs Intel-scale trial: "
            f"{'consistent' if consistent else 'different'} at 95 %"
        )
    lifetimes = lifetimes_from_results(results)
    points = kaplan_meier(lifetimes)
    if points:
        for point in points:
            lines.append(
                f"  survival {point.survival:.2f} after "
                f"{point.time_s / DAY:.1f} days ({point.at_risk} at risk)"
            )
    else:
        lines.append("  no host failures: survival curve flat at 1.0")
    return "\n".join(lines)


def heat_budget_report(results: ExperimentResults) -> str:
    """Beyond the paper: the tent's envelope recovered from telemetry."""
    from repro.analysis.heatbudget import estimate_ua_by_era, summarize

    estimates = estimate_ua_by_era(results)
    lines = ["== Empirical heat budget (extension) =="]
    if not estimates:
        lines.append("no tent-internal data (run ended before the Lascar arrived)")
        return "\n".join(lines)
    lines.append(summarize(estimates, results.clock))
    lines.append(
        "each airflow intervention shows up as a conductance step -- the "
        "quantitative version of the paper's Fig. 3 event marks"
    )
    return "\n".join(lines)


def pue_report() -> str:
    """Section 5: the cluster's PUE arithmetic (static, no run needed)."""
    breakdown = paper_breakdown()
    lines = ["== PUE of the new cluster (Section 5) =="]
    lines.append(breakdown.conventional.describe())
    lines.append(breakdown.free_air.describe())
    lines.append(
        f"cooling energy saved by free air: "
        f"{100 * breakdown.conventional.cooling_energy_savings_vs(breakdown.free_air):.0f} % "
        f"(HP/Intel claim 40-67 % total-energy savings)"
    )
    return "\n".join(lines)


def full_report(results: ExperimentResults) -> str:
    """Everything, in paper order."""
    sections: List[str] = [
        prototype_report(results),
        conditions_report(results),
        faults_report(results),
        wrong_hash_report(results),
        reliability_report(results),
        heat_budget_report(results),
        pue_report(),
    ]
    return "\n\n".join(sections)
