"""What a finished run exposes.

:class:`ExperimentResults` bundles every live record store (weather
station, Lascar logger, power meter, monitoring archive, workload ledger,
fault log, the fleet itself) plus the two derived artefacts the paper
reports from: the :class:`PrototypeResult` of the plastic-box weekend and
the :class:`SnapshotCensus` taken at "the time of writing".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.failures import FailureCensus, census_from_events
from repro.analysis.memory_errors import MemoryErrorEstimate, estimate_memory_error_ratio
from repro.analysis.series import TimeSeries
from repro.core.config import ExperimentConfig
from repro.core.deployment import Fleet
from repro.core.protocol import OperatorPolicy
from repro.hardware.faults import FaultKind, FaultLog
from repro.monitoring.collector import MonitoringHost
from repro.monitoring.datalogger import LascarDataLogger
from repro.monitoring.powermeter import TechnolineCostControl
from repro.sim.clock import SimClock
from repro.climate.station import WeatherStation
from repro.workload.archiver import WorkloadLedger


@dataclass(frozen=True)
class PrototypeResult:
    """Outcome of the Feb 12-15 plastic-box weekend (Section 3.1)."""

    start: float
    end: float
    outside_min_c: float
    outside_mean_c: float
    cpu_min_c: float
    survived: bool

    def describe(self) -> str:
        """Paper-style summary sentence."""
        verdict = "remained operational for the whole weekend" if self.survived else "FAILED"
        return (
            f"prototype {verdict}; outside min {self.outside_min_c:.1f} degC, "
            f"mean {self.outside_mean_c:.1f} degC; CPU as low as {self.cpu_min_c:.1f} degC"
        )


@dataclass(frozen=True)
class SnapshotCensus:
    """The paper's "current knowledge" numbers, frozen at the snapshot date."""

    time: float
    total_runs: int
    wrong_hashes: int
    wrong_hash_hosts: Tuple[int, ...]
    failed_host_ids: Tuple[int, ...]
    tent_failed: int
    basement_failed: int
    initially_installed: int

    @property
    def failure_rate_percent(self) -> float:
        """Failed hosts over initially installed hosts (the paper's 5.6 %)."""
        if self.initially_installed == 0:
            return 0.0
        return 100.0 * len(self.failed_host_ids) / self.initially_installed


def take_snapshot(
    config: ExperimentConfig,
    ledger: WorkloadLedger,
    fault_log: FaultLog,
    time: float,
) -> SnapshotCensus:
    """Freeze the paper-style census from live experiment state at ``time``."""
    tent_ids = [p.host_id for p in config.plans_by_group("tent")]
    basement_ids = [p.host_id for p in config.plans_by_group("basement")]
    events = [e for e in fault_log.events if e.time <= time]
    tent = census_from_events("tent", tent_ids, events)
    basement = census_from_events("basement", basement_ids, events)
    overall = census_from_events("all installed", tent_ids + basement_ids, events)
    failed = tuple(sorted({e.host_id for e in overall.failure_events if e.host_id}))
    return SnapshotCensus(
        time=time,
        total_runs=ledger.total_runs,
        wrong_hashes=ledger.total_wrong_hashes,
        wrong_hash_hosts=tuple(ledger.hosts_with_wrong_hashes()),
        failed_host_ids=failed,
        tent_failed=tent.hosts_failed,
        basement_failed=basement.hosts_failed,
        initially_installed=overall.hosts_total,
    )


class ExperimentResults:
    """Everything a finished (or snapshot-interrupted) run produced."""

    def __init__(
        self,
        config: ExperimentConfig,
        clock: SimClock,
        fleet: Fleet,
        station: WeatherStation,
        lascar: LascarDataLogger,
        powermeter: TechnolineCostControl,
        monitoring: MonitoringHost,
        policy: OperatorPolicy,
        fault_log: FaultLog,
        prototype: Optional[PrototypeResult],
        snapshot: Optional[SnapshotCensus],
        end_time: float,
        webcam=None,
        bus=None,
        recorder=None,
        telemetry=None,
    ) -> None:
        self.config = config
        self.clock = clock
        self.fleet = fleet
        self.station = station
        self.lascar = lascar
        self.powermeter = powermeter
        self.monitoring = monitoring
        self.policy = policy
        self.fault_log = fault_log
        self.prototype = prototype
        self.snapshot = snapshot
        self.end_time = end_time
        #: The terrace webcam (None for runs built without one).
        self.webcam = webcam
        #: The campaign event bus (None for pre-bus construction paths).
        self.bus = bus
        #: The run's :class:`~repro.sim.events.EventRecorder` (or None).
        self.recorder = recorder
        #: The run's :class:`~repro.telemetry.hub.Telemetry` -- metrics
        #: registry and span tracer -- or None for a run built without
        #: ``CampaignBuilder.with_telemetry``.
        self.telemetry = telemetry

    def __repr__(self) -> str:
        return (
            f"ExperimentResults(runs={self.ledger.total_runs}, "
            f"faults={len(self.fault_log)}, end={self.clock.format(self.end_time)})"
        )

    # ------------------------------------------------------------------
    # Shortcuts
    # ------------------------------------------------------------------
    @property
    def ledger(self) -> WorkloadLedger:
        """The fleet-wide workload census."""
        return self.fleet.ledger

    @property
    def tent(self):
        """The tent enclosure."""
        return self.fleet.tent

    @property
    def transfers(self):
        """The monitoring host's rsync traffic ledger (None if not wired)."""
        return self.monitoring.transport

    @property
    def events(self):
        """Recorded bus events in publish order ([] without a recorder)."""
        return self.recorder.events if self.recorder is not None else []

    def event_counts(self) -> Dict[str, int]:
        """Recorded-event tally per event class name ({} without a recorder)."""
        return self.recorder.counts() if self.recorder is not None else {}

    def tent_host_ids(self) -> List[int]:
        """Initially-installed tent host ids (excludes the spare)."""
        return [p.host_id for p in self.config.plans_by_group("tent")]

    def basement_host_ids(self) -> List[int]:
        """Control-group host ids."""
        return [p.host_id for p in self.config.plans_by_group("basement")]

    # ------------------------------------------------------------------
    # Series
    # ------------------------------------------------------------------
    def outside_temperature(self) -> TimeSeries:
        """SMEAR III-style outside temperature record."""
        return TimeSeries(self.station.times(), self.station.temperatures())

    def outside_humidity(self) -> TimeSeries:
        """Outside relative humidity record."""
        return TimeSeries(self.station.times(), self.station.humidities())

    def inside_temperature_raw(self) -> TimeSeries:
        """Tent-internal temperature, outliers included."""
        return TimeSeries(self.lascar.times(), self.lascar.temperatures())

    def inside_humidity_raw(self) -> TimeSeries:
        """Tent-internal relative humidity, outliers included."""
        return TimeSeries(self.lascar.times(), self.lascar.humidities())

    # ------------------------------------------------------------------
    # Censuses
    # ------------------------------------------------------------------
    def _events_until(self, until: Optional[float]):
        if until is None:
            return list(self.fault_log.events)
        return [e for e in self.fault_log.events if e.time <= until]

    def tent_census(self, until: Optional[float] = None) -> FailureCensus:
        """System-failure census of the tent group."""
        return census_from_events("tent", self.tent_host_ids(), self._events_until(until))

    def basement_census(self, until: Optional[float] = None) -> FailureCensus:
        """System-failure census of the control group."""
        return census_from_events(
            "basement", self.basement_host_ids(), self._events_until(until)
        )

    def overall_census(self, until: Optional[float] = None) -> FailureCensus:
        """The paper's headline census over all 18 initially installed hosts."""
        ids = self.tent_host_ids() + self.basement_host_ids()
        return census_from_events("all installed", ids, self._events_until(until))

    def memory_error_estimate(self) -> MemoryErrorEstimate:
        """Section 4.2.2's page-op arithmetic over this run."""
        return estimate_memory_error_ratio(self.ledger, self.fleet.tree)

    def build_snapshot(self, time: float) -> SnapshotCensus:
        """Freeze the paper-style census at ``time`` (uses current state)."""
        return take_snapshot(self.config, self.ledger, self.fault_log, time)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Multi-line run overview (the quickstart example prints this)."""
        lines = [
            f"Campaign {self.clock.format(0.0)} .. {self.clock.format(self.end_time)}",
        ]
        if self.prototype is not None:
            lines.append(f"Prototype: {self.prototype.describe()}")
        outside = self.outside_temperature()
        if not outside.empty:
            lines.append(
                f"Outside: min {outside.min():.1f} degC, mean {outside.mean():.1f} degC"
            )
        inside = self.inside_temperature_raw()
        if not inside.empty:
            lines.append(
                f"Tent: min {inside.min():.1f} degC, max {inside.max():.1f} degC "
                f"(raw, incl. download-trip outliers)"
            )
        lines.append(
            f"Workload: {self.ledger.total_runs} runs, "
            f"{self.ledger.total_wrong_hashes} wrong hashes "
            f"on hosts {self.ledger.hosts_with_wrong_hashes() or 'none'}"
        )
        census = self.overall_census()
        lines.append(census.describe())
        switch_failures = self.fault_log.of_kind(FaultKind.SWITCH)
        lines.append(f"Switch failures: {len(switch_failures)}")
        if self.snapshot is not None:
            lines.append(
                f"Paper-snapshot ({self.clock.format(self.snapshot.time)}): "
                f"{self.snapshot.failure_rate_percent:.1f} % host failure rate, "
                f"{self.snapshot.wrong_hashes}/{self.snapshot.total_runs} wrong hashes"
            )
        return "\n".join(lines)
