"""Canned experiment scenarios.

The paper's campaign is one point in a space of believable what-ifs; these
constructors package the ones the text itself raises:

- :func:`paper_campaign` -- the default, exactly as published;
- :func:`no_modifications` -- the operators never fight the tent's heat
  retention (no R/I/B/F): "the tent proved surprisingly good at retaining
  heat", so what would have happened had they left it sealed?
- :func:`extended_year` -- the Section 6 future work: run into November
  under the full-year profile;
- :func:`conditioned_tent` -- a tent that starts fully opened up (all
  modifications pre-applied), approximating a purpose-built free-air
  shelter rather than an improvised camping tent;
- :func:`harsher_winter` -- the same campaign with a deeper, longer cold
  snap, probing the "much more extreme conditions occur in the Northern
  parts" remark.

Each returns an :class:`~repro.core.config.ExperimentConfig`; run it with
:class:`~repro.core.experiment.Experiment`.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import Optional, Tuple

from repro.climate.profiles import ClimateProfile, ColdSnap, HELSINKI_2010
from repro.climate.sites import HELSINKI_FULL_YEAR
from repro.core.config import ExperimentConfig, TentModificationPlan
from repro.thermal.tent import Modification


def paper_campaign(seed: int = 7) -> ExperimentConfig:
    """The campaign exactly as the paper describes it."""
    return ExperimentConfig(seed=seed)


def no_modifications(seed: int = 7) -> ExperimentConfig:
    """The sealed-tent counterfactual: nobody cuts, covers, or fans.

    The tent keeps its factory envelope all spring.  Expect higher inside
    temperatures, hotter cases, and more vendor-B failures -- the outcome
    the paper's operators were visibly working to avoid.
    """
    return dataclasses.replace(ExperimentConfig(seed=seed), modification_plans=())


def conditioned_tent(seed: int = 7) -> ExperimentConfig:
    """Every modification applied on day one: a purpose-built shelter.

    Approximates the "outside storage shed with only minimal cover" the
    paper names as the ideal construction it could not afford.
    """
    config = ExperimentConfig(seed=seed)
    day_one = config.test_start + _dt.timedelta(hours=1)
    plans = tuple(
        TentModificationPlan(day_one + _dt.timedelta(minutes=i), mod)
        for i, mod in enumerate(Modification)
    )
    return dataclasses.replace(config, modification_plans=plans)


def extended_year(seed: int = 7, until: Optional[_dt.datetime] = None) -> ExperimentConfig:
    """Section 6's future work: the fleet runs Feb through October."""
    end = until if until is not None else _dt.datetime(2010, 11, 1)
    return dataclasses.replace(
        ExperimentConfig(seed=seed), climate=HELSINKI_FULL_YEAR, end_date=end
    )


def harsher_winter(seed: int = 7, extra_depth_c: float = 6.0) -> ExperimentConfig:
    """A Northern-Finland analogue: the February snap digs deeper.

    "While these measurements were taken in Southern Finland, much more
    extreme conditions occur in the Northern parts."
    """
    if extra_depth_c < 0:
        raise ValueError("extra depth is a magnitude")
    base = HELSINKI_2010
    deepened: Tuple[ColdSnap, ...] = tuple(
        ColdSnap(
            peak=snap.peak,
            depth_c=snap.depth_c + extra_depth_c,
            sigma_days=snap.sigma_days * 1.3,
        )
        for snap in base.cold_snaps
    )
    climate = dataclasses.replace(
        base, name=f"{base.name}-harsher", cold_snaps=deepened
    )
    return dataclasses.replace(ExperimentConfig(seed=seed), climate=climate)


#: Named scenarios for sweeps and the CLI: name -> ``factory(seed)``.
SCENARIOS = {
    "paper": paper_campaign,
    "no-modifications": no_modifications,
    "conditioned-tent": conditioned_tent,
    "extended-year": extended_year,
    "harsher-winter": harsher_winter,
}


def scenario_config(name: str, seed: int = 7) -> ExperimentConfig:
    """Build a named scenario's configuration."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {', '.join(sorted(SCENARIOS))}"
        ) from None
    return factory(seed=seed)
