"""Machine-room substrate: hosts, components, sensors, storage, switches.

The paper's fleet (Section 3.4) is 19 computers in three form factors:

- vendor **A** -- small-shop "clone" desktops in medium tower cases, two
  hard drives in a Linux md software mirror,
- vendor **B** -- mass-manufactured small-form-factor workstations, one
  drive, *known-unreliable series with bad airflow*,
- vendor **C** -- 2U rack servers with five drives (hardware mirror plus a
  three-drive stripe set with parity).

This package models each host down to the component level the paper's
fault census touches: the lm-sensors chip (including its cold-induced
-111 degC failure mode), non-ECC memory that flips bits roughly once per
570 million page operations, S.M.A.R.T.-reporting disks in RAID layouts,
and the defective 8-port switches that shared the tent's network.
"""

from repro.hardware.components import Cpu, MemoryBank, PowerSupply
from repro.hardware.faults import (
    FaultEvent,
    FaultKind,
    MemoryFaultModel,
    TransientFaultModel,
    hazard_probability,
)
from repro.hardware.host import Host, HostState
from repro.hardware.memtest import MemtestReport, MemtestSession
from repro.hardware.sensors import SensorChip, SensorState
from repro.hardware.smart import SmartAttribute, SmartTable
from repro.hardware.storage import (
    Disk,
    HardwareMirror,
    MdSoftwareMirror,
    StorageSubsystem,
    StripeWithParity,
)
from repro.hardware.switch import NetworkSwitch, SwitchState
from repro.hardware.vendors import VENDOR_A, VENDOR_B, VENDOR_C, FormFactor, VendorSpec

__all__ = [
    "VendorSpec",
    "FormFactor",
    "VENDOR_A",
    "VENDOR_B",
    "VENDOR_C",
    "Cpu",
    "MemoryBank",
    "PowerSupply",
    "SensorChip",
    "SensorState",
    "SmartAttribute",
    "SmartTable",
    "Disk",
    "MdSoftwareMirror",
    "HardwareMirror",
    "StripeWithParity",
    "StorageSubsystem",
    "NetworkSwitch",
    "SwitchState",
    "Host",
    "HostState",
    "MemtestSession",
    "MemtestReport",
    "FaultKind",
    "FaultEvent",
    "TransientFaultModel",
    "MemoryFaultModel",
    "hazard_probability",
]
