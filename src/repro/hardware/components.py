"""Host components: CPU, memory bank, power supply.

Only the behaviour the paper's fault census exercises is modelled:

- the CPU contributes power and a temperature (the quantity lm-sensors logs
  and the one that reached -4 degC in the tent),
- the memory bank turns page operations into occasional bit flips -- the
  root cause the paper conjectures for its five wrong md5sums -- unless it
  has error-correcting parity,
- the power supply converts load into heat dissipated inside the enclosure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.hardware.vendors import VendorSpec
from repro.sim.columns import ColumnAttr
from repro.state.codec import (
    pack_bools,
    pack_floats,
    pack_ints,
    unpack_bools,
    unpack_floats,
    unpack_ints,
)
from repro.state.protocol import check_version

_STATE_VERSION = 1

#: The paper's estimated memory fault ratio: "around one in 570 million"
#: page operations (Section 4.2.2).
PAPER_PAGE_FAULT_RATIO = 1.0 / 570e6


class Cpu:
    """CPU package: a power draw and a temperature.

    The temperature model is the stacked-rise form used throughout the
    reproduction: intake air + case rise + package rise, each proportional
    to the relevant power.
    """

    #: Column-backed when the owning host is bound to a fleet's
    #: :class:`~repro.sim.columns.FleetColumns`; plain attribute otherwise.
    busy = ColumnAttr("cpu_busy", bool)

    def __init__(self, spec: VendorSpec) -> None:
        self.spec = spec
        self.busy = False

    def __repr__(self) -> str:
        state = "busy" if self.busy else "idle"
        return f"Cpu(vendor={self.spec.vendor_id}, {state})"

    @property
    def power_w(self) -> float:
        """Current package power draw."""
        return self.spec.cpu_active_power_w if self.busy else self.spec.cpu_idle_power_w

    def temperature_c(self, intake_c: float, host_power_w: float) -> float:
        """Die temperature given intake air and total host power."""
        return self.spec.cpu_temp_c(intake_c, host_power_w, self.power_w)


@dataclass
class MemoryFaultRecord:
    """One uncorrected (or, on ECC machines, corrected) memory fault."""

    time: float
    page_index: int
    corrected: bool


class MemoryBank:
    """Installed RAM: page-operation accounting and bit-flip faults.

    Parameters
    ----------
    spec:
        The vendor spec (size and ECC flag).
    rng:
        Fault draw stream for this bank.
    fault_ratio:
        Probability of a fault per page operation.  Defaults to the paper's
        estimate of one in 570 million.
    """

    page_ops_total = ColumnAttr("page_ops_total", int)

    def __init__(
        self,
        spec: VendorSpec,
        rng: np.random.Generator,
        fault_ratio: float = PAPER_PAGE_FAULT_RATIO,
    ) -> None:
        if fault_ratio < 0 or fault_ratio >= 1:
            raise ValueError("fault_ratio must be in [0, 1)")
        self.spec = spec
        self.fault_ratio = fault_ratio
        self._rng = rng
        self.page_ops_total = 0
        self.faults: "list[MemoryFaultRecord]" = []

    def __repr__(self) -> str:
        ecc = "ECC" if self.spec.ecc_memory else "non-ECC"
        return (
            f"MemoryBank({self.spec.memory_mib} MiB {ecc}, "
            f"{self.page_ops_total} page ops, {len(self.faults)} faults)"
        )

    def perform_page_ops(self, count: int, time: float) -> int:
        """Account ``count`` page operations at ``time``.

        Returns the number of *uncorrected* faults incurred.  ECC banks
        still record faults (as corrected) so the ablation benchmark can
        compare; non-ECC banks return them to the caller, which propagates
        the corruption into the archive block being processed.
        """
        if count < 0:
            raise ValueError("page-op count cannot be negative")
        self.page_ops_total += count
        if count == 0 or self.fault_ratio == 0.0:
            return 0
        n_faults = int(self._rng.binomial(count, self.fault_ratio))
        if n_faults == 0:
            return 0
        corrected = self.spec.ecc_memory
        for _ in range(n_faults):
            page = int(self._rng.integers(0, max(1, count)))
            self.faults.append(MemoryFaultRecord(time=time, page_index=page, corrected=corrected))
        return 0 if corrected else n_faults

    @property
    def uncorrected_fault_count(self) -> int:
        """Faults that escaped into data."""
        return sum(1 for f in self.faults if not f.corrected)

    @property
    def corrected_fault_count(self) -> int:
        """Faults the ECC machinery absorbed."""
        return sum(1 for f in self.faults if f.corrected)

    def observed_fault_ratio(self) -> Optional[float]:
        """Empirical faults-per-page-op, or ``None`` before any ops."""
        if self.page_ops_total == 0:
            return None
        return len(self.faults) / self.page_ops_total

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "page_ops_total": self.page_ops_total,
            "faults": {
                "time": pack_floats([f.time for f in self.faults]),
                "page_index": pack_ints([f.page_index for f in self.faults]),
                "corrected": pack_bools([f.corrected for f in self.faults]),
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("memory", state, _STATE_VERSION)
        self.page_ops_total = int(state["page_ops_total"])
        faults = state["faults"]
        self.faults = [
            MemoryFaultRecord(time=t, page_index=p, corrected=c)
            for t, p, c in zip(
                unpack_floats(faults["time"]),
                unpack_ints(faults["page_index"]),
                unpack_bools(faults["corrected"]),
            )
        ]


@dataclass(frozen=True)
class PowerSupply:
    """PSU: turns DC load into wall draw; all of it ends up as heat.

    ``efficiency`` is the DC/AC ratio; the heat an enclosure receives is
    the full wall draw (conversion loss included), which is why the tent's
    heat balance uses wall watts directly.
    """

    rated_w: float = 300.0
    efficiency: float = 0.82

    def __post_init__(self) -> None:
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError("efficiency must be in (0, 1]")
        if self.rated_w <= 0:
            raise ValueError("rated power must be positive")

    def wall_power_w(self, dc_load_w: float) -> float:
        """AC draw needed to supply ``dc_load_w`` downstream."""
        if dc_load_w < 0:
            raise ValueError("load cannot be negative")
        return dc_load_w / self.efficiency
