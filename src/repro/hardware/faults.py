"""Fault models: the stochastic machinery behind the failure census.

Every fault family in the paper gets a hazard-rate model:

- :class:`TransientFaultModel` -- whole-system transient failures (host #15
  suffered two).  The rate has a per-host *frailty* multiplier, so a
  known-bad series (vendor B) concentrates its failures on one or two
  lemons rather than spreading them uniformly -- exactly the census shape
  the paper reports (one bad host, its twin and the rest clean).
- :class:`MemoryFaultModel` -- parameters for page-op bit flips (the
  mechanics live in :class:`repro.hardware.components.MemoryBank`).
- :func:`hazard_probability` -- the shared exponential-hazard arithmetic.

Temperature dependence follows the classic 10-degree doubling rule above a
reference case temperature, and -- deliberately -- *no* cold penalty: the
paper's central finding is that sub-zero intake air is "not a certified
cause for server failures".
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.sim.events import EventBus, HostFailed, SwitchDied, WrongHash
from repro.state.protocol import check_version

_STATE_VERSION = 1


def hazard_probability(rate_per_hour: float, dt_s: float) -> float:
    """Probability of at least one event in ``dt_s`` at ``rate_per_hour``."""
    if rate_per_hour < 0:
        raise ValueError("hazard rate cannot be negative")
    if dt_s < 0:
        raise ValueError("dt cannot be negative")
    return 1.0 - math.exp(-rate_per_hour * dt_s / 3600.0)


class FaultKind(enum.Enum):
    """Categories used by the census (Section 4.2)."""

    TRANSIENT_SYSTEM = "transient system failure"
    SENSOR_CHIP = "sensor chip malfunction"
    WRONG_HASH = "wrong md5sum hash"
    DISK = "disk failure"
    SWITCH = "network switch failure"
    MEMTEST = "memtest failure"
    WATER_INGRESS = "water ingress short circuit"


@dataclass(frozen=True)
class FaultEvent:
    """One entry in a host's (or the experiment's) fault log."""

    time: float
    kind: FaultKind
    host_id: Optional[int]
    detail: str = ""

    def __str__(self) -> str:
        where = f"host #{self.host_id:02d}" if self.host_id is not None else "infrastructure"
        return f"[{self.time:>12.0f}s] {where}: {self.kind.value} {self.detail}".rstrip()


@dataclass
class TransientFaultModel:
    """Hazard model for whole-system transient failures.

    Parameters
    ----------
    base_rate_per_hour:
        Healthy-population rate (very low: commodity hosts run months
        without a hang).
    defective_rate_per_hour:
        Rate for the known-unreliable series before frailty scaling.
    frailty_sigma:
        Log-normal sigma of the per-host frailty multiplier.  Large sigma
        concentrates failures on a few lemons.
    temp_reference_c / temp_doubling_c:
        Above the reference case temperature the rate doubles every
        ``temp_doubling_c`` degrees (bad airflow killing SFF boxes).
    cold_multiplier:
        Rate multiplier for sub-zero intake.  The paper found none, so the
        default is 1.0; the ablation benchmarks sweep it.
    """

    base_rate_per_hour: float = 1.0 / (24.0 * 2000.0)
    defective_rate_per_hour: float = 1.0 / (24.0 * 80.0)
    frailty_sigma: float = 1.1
    temp_reference_c: float = 40.0
    temp_doubling_c: float = 10.0
    cold_multiplier: float = 1.0

    def draw_frailty(self, rng: np.random.Generator) -> float:
        """Per-host lemon factor: log-normal with median 1."""
        return float(rng.lognormal(mean=0.0, sigma=self.frailty_sigma))

    def rate_per_hour(
        self, defective_series: bool, frailty: float, case_temp_c: float, intake_temp_c: float
    ) -> float:
        """Instantaneous hazard for one host."""
        rate = self.defective_rate_per_hour if defective_series else self.base_rate_per_hour
        rate *= frailty
        if case_temp_c > self.temp_reference_c:
            rate *= 2.0 ** ((case_temp_c - self.temp_reference_c) / self.temp_doubling_c)
        if intake_temp_c < 0.0:
            rate *= self.cold_multiplier
        return rate

    def sample_failure(
        self,
        rng: np.random.Generator,
        dt_s: float,
        defective_series: bool,
        frailty: float,
        case_temp_c: float,
        intake_temp_c: float,
    ) -> bool:
        """Whether a transient failure strikes during ``dt_s``."""
        rate = self.rate_per_hour(defective_series, frailty, case_temp_c, intake_temp_c)
        return rng.random() < hazard_probability(rate, dt_s)


@dataclass(frozen=True)
class MemoryFaultModel:
    """Parameters for memory bit flips.

    ``page_fault_ratio`` is the per-page-operation fault probability for
    banks without error-correcting parity; the paper's estimate is one in
    570 million.  ECC banks log but correct.
    """

    page_fault_ratio: float = 1.0 / 570e6

    def __post_init__(self) -> None:
        if not 0.0 <= self.page_fault_ratio < 1.0:
            raise ValueError("page_fault_ratio must be in [0, 1)")


@dataclass
class FaultLog:
    """Append-only fault census shared across the experiment.

    In a bus-wired campaign the log is a *subscriber*: producers publish
    :class:`~repro.sim.events.HostFailed`,
    :class:`~repro.sim.events.WrongHash`, and
    :class:`~repro.sim.events.SwitchDied` events, and :meth:`attach_bus`
    converts each into the :class:`FaultEvent` the census runs on.
    Components built without a bus keep calling :meth:`record` directly.
    """

    events: List[FaultEvent] = field(default_factory=list)

    def record(self, event: FaultEvent) -> None:
        """Append ``event`` (times must be non-decreasing per producer)."""
        self.events.append(event)

    # ------------------------------------------------------------------
    # Event-bus subscription
    # ------------------------------------------------------------------
    def attach_bus(self, bus: EventBus) -> None:
        """Subscribe to the fault-bearing event types on ``bus``."""
        bus.subscribe(HostFailed, self._on_host_failed)
        bus.subscribe(WrongHash, self._on_wrong_hash)
        bus.subscribe(SwitchDied, self._on_switch_died)

    def _on_host_failed(self, event: HostFailed) -> None:
        self.record(
            FaultEvent(
                time=event.time,
                kind=event.kind,
                host_id=event.host_id,
                detail=event.detail,
            )
        )

    def _on_wrong_hash(self, event: WrongHash) -> None:
        self.record(
            FaultEvent(
                time=event.time,
                kind=FaultKind.WRONG_HASH,
                host_id=event.host_id,
                detail=f"{event.corrupted_blocks} corrupted block(s)",
            )
        )

    def _on_switch_died(self, event: SwitchDied) -> None:
        self.record(
            FaultEvent(
                time=event.time,
                kind=FaultKind.SWITCH,
                host_id=None,
                detail=event.switch_name,
            )
        )

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "events": [
                [e.time, e.kind.name, e.host_id, e.detail] for e in self.events
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("fault_log", state, _STATE_VERSION)
        self.events = [
            FaultEvent(
                time=float(t),
                kind=FaultKind[k],
                host_id=None if h is None else int(h),
                detail=str(d),
            )
            for t, k, h, d in state["events"]
        ]

    def of_kind(self, kind: FaultKind) -> List[FaultEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind is kind]

    def for_host(self, host_id: int) -> List[FaultEvent]:
        """All events attributed to one host."""
        return [e for e in self.events if e.host_id == host_id]

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
