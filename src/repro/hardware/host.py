"""A complete host: the unit of the paper's fleet.

A :class:`Host` composes a vendor spec with a CPU, a memory bank, a sensor
chip, and a storage subsystem, draws intake air from whatever
:class:`~repro.thermal.enclosure.Enclosure` it currently sits in, and can

- suffer transient system failures (hazard scaled by its personal frailty
  and its case temperature),
- be reset, warm-rebooted, moved indoors, or retired by the operator --
  the actions Section 4.2.1 narrates for host #15 and the sensor-chip
  host,
- run a Memtest86+ session, which is what finally condemned host #15.

The host does not schedule itself; the fleet in :mod:`repro.core` ticks it
and the workload drives its duty cycle.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Tuple

from repro.hardware.components import Cpu, MemoryBank, PowerSupply
from repro.hardware.faults import (
    FaultEvent,
    FaultKind,
    FaultLog,
    TransientFaultModel,
    hazard_probability,
)
from repro.hardware.sensors import SensorChip, SensorReading, SensorState
from repro.hardware.storage import StorageSubsystem
from repro.hardware.vendors import VendorSpec
from repro.sim.columns import ColumnAttr, EnumColumnAttr, FleetColumns, bind_object
from repro.sim.events import EventBus, HostFailed, SensorLatched
from repro.sim.rng import RngStreams
from repro.state.protocol import check_version
from repro.thermal.enclosure import Enclosure

_STATE_VERSION = 1

#: Water-ingress hazard per (mm/h of precipitation reaching the case) per
#: hour of powered operation.  A bare host in steady snowfall dies within
#: days; a sheltered one never sees the term.
WATER_INGRESS_RATE_PER_MM = 0.12

#: Stress multiplier a Memtest86+ run applies to the transient hazard.
#: Memtest hammers exactly the subsystem the defective series is weak in,
#: so the factor is large: a lemon that has already failed twice "causes
#: another system failure within a few hours", while a sound host sails
#: through (its base hazard is four orders of magnitude lower).
_MEMTEST_STRESS_FACTOR = 40.0


class HostState(enum.Enum):
    """Lifecycle of a host within the experiment."""

    STAGED = "staged"  # procured, not yet installed
    RUNNING = "running"
    BOOTING = "booting"  # power-cycled, BIOS + OS still coming up
    FAILED = "failed"  # down, awaiting operator attention
    RETIRED = "retired"  # withdrawn from the experiment
    SHED = "shed"  # deliberately powered down (load-shed / feed drop)


#: Small-int codes for the ``host_state`` fleet column.  RUNNING is 1 so a
#: running-host mask is a single array comparison.
_HOST_STATE_CODES = {
    HostState.STAGED: 0,
    HostState.RUNNING: 1,
    HostState.BOOTING: 2,
    HostState.FAILED: 3,
    HostState.RETIRED: 4,
    HostState.SHED: 5,
}
HOST_STATE_RUNNING_CODE = _HOST_STATE_CODES[HostState.RUNNING]
HOST_STATE_SHED_CODE = _HOST_STATE_CODES[HostState.SHED]


class Host:
    """One computer of the fleet.

    Parameters
    ----------
    host_id:
        The paper's server number (1-19).
    spec:
        Vendor specification.
    streams:
        Parent RNG family; the host spawns its own child family so fleets
        of any size stay draw-for-draw reproducible.
    transient_model:
        Shared hazard parameters for transient system failures.
    memory_fault_ratio:
        Per-page-op bit-flip probability for the memory bank.
    bus:
        Optional campaign event bus.  When set, failures and sensor
        latch-ups are *published* (:class:`~repro.sim.events.HostFailed`,
        :class:`~repro.sim.events.SensorLatched`) and the subscribed
        fault log records them; without a bus the host falls back to
        recording into the ``fault_log`` passed to :meth:`tick`.
    """

    # Tick-hot attributes; column-backed once the fleet calls
    # ``bind_columns``, plain per-instance storage otherwise (prototype
    # host, unit tests).
    state = EnumColumnAttr("host_state", _HOST_STATE_CODES)
    uptime_s = ColumnAttr("uptime_s", float)
    frailty = ColumnAttr("frailty", float)
    reset_count = ColumnAttr("reset_count", int)

    def __init__(
        self,
        host_id: int,
        spec: VendorSpec,
        streams: RngStreams,
        transient_model: Optional[TransientFaultModel] = None,
        memory_fault_ratio: float = 1.0 / 570e6,
        bus: Optional[EventBus] = None,
    ) -> None:
        self.host_id = host_id
        self.hostname = f"host{host_id:02d}"
        self.spec = spec
        self._streams = streams.spawn(f"host.{host_id:02d}")
        self.transient_model = (
            transient_model if transient_model is not None else TransientFaultModel()
        )
        self.frailty = self.transient_model.draw_frailty(self._streams.stream("frailty"))

        self.cpu = Cpu(spec)
        self.memory = MemoryBank(spec, self._streams.stream("memory"), memory_fault_ratio)
        self.psu = PowerSupply()
        self.sensor = SensorChip(self._streams.stream("sensor"))
        self.storage = StorageSubsystem(self.hostname, spec, self._streams.stream("storage"))
        self._fault_rng = self._streams.stream("transient")
        self.bus = bus

        self.state = HostState.STAGED
        self.enclosure: Optional[Enclosure] = None
        self.installed_at: Optional[float] = None
        self.retired_at: Optional[float] = None
        self.uptime_s = 0.0
        self.reset_count = 0
        #: ``(time, note)`` operator log, mirroring the paper's narrative.
        self.event_log: List[Tuple[float, str]] = []

    def __repr__(self) -> str:
        where = self.enclosure.name if self.enclosure is not None else "nowhere"
        return (
            f"Host(#{self.host_id:02d} vendor {self.spec.vendor_id}, "
            f"{self.state.value} in {where})"
        )

    # ------------------------------------------------------------------
    # Placement and lifecycle
    # ------------------------------------------------------------------
    def install(self, enclosure: Enclosure, time: float) -> None:
        """Place the host in an enclosure and power it on."""
        if self.state is HostState.RETIRED:
            raise RuntimeError(f"{self.hostname} is retired")
        self.enclosure = enclosure
        if self.installed_at is None:
            self.installed_at = time
        self.state = HostState.RUNNING
        self.storage.record_power_cycle()
        self.event_log.append((time, f"installed in {enclosure.name}"))

    def move_to(self, enclosure: Enclosure, time: float) -> None:
        """Relocate a host (e.g. taken indoors after repeated failures)."""
        if self.enclosure is None:
            raise RuntimeError(f"{self.hostname} was never installed")
        self.event_log.append(
            (time, f"moved from {self.enclosure.name} to {enclosure.name}")
        )
        self.enclosure = enclosure

    def reset(self, time: float) -> None:
        """Operator reset after a failure; the host resumes immediately.

        The zero-downtime convenience form of :meth:`begin_boot` +
        :meth:`finish_boot`, used where boot latency is irrelevant
        (bench work, tests).  Only valid from the FAILED state.
        """
        if self.state is not HostState.FAILED:
            raise RuntimeError(
                f"{self.hostname} is not failed (state={self.state.value})"
            )
        self.begin_boot(time)
        self.finish_boot(time)

    def begin_boot(self, time: float) -> None:
        """Start a power cycle: the host goes dark while BIOS/OS come up.

        Valid from FAILED (an operator reset) or RUNNING (a deliberate
        restart).  The host answers nothing until :meth:`finish_boot`.
        """
        if self.state not in (HostState.FAILED, HostState.RUNNING):
            raise RuntimeError(
                f"{self.hostname} cannot boot from state {self.state.value}"
            )
        was_failed = self.state is HostState.FAILED
        self.state = HostState.BOOTING
        self.cpu.busy = False
        if was_failed:
            self.reset_count += 1
            self.event_log.append((time, "reset after failure (booting)"))
        else:
            self.event_log.append((time, "restart (booting)"))

    def finish_boot(self, time: float) -> None:
        """Boot completes; the host is back in service."""
        if self.state is not HostState.BOOTING:
            raise RuntimeError(
                f"{self.hostname} is not booting (state={self.state.value})"
            )
        self.state = HostState.RUNNING
        self.storage.record_power_cycle()
        self.event_log.append((time, "boot complete"))

    def warm_reboot(self, time: float) -> None:
        """Warm reboot: recovers the sensor chip, keeps everything running."""
        self.sensor.warm_reboot()
        self.storage.record_power_cycle()
        self.event_log.append((time, "warm reboot (sensor chip recovered)"))

    def power_down(self, time: float, reason: str = "load shed") -> None:
        """Deliberately power off a healthy host (trip shed, feed drop).

        Unlike a failure, a shed host is *intact*: the plant layer
        powers it back up with :meth:`power_up` once conditions allow,
        and the operator playbook leaves it alone (it is not FAILED).
        Only valid from RUNNING.
        """
        if self.state is not HostState.RUNNING:
            raise RuntimeError(
                f"{self.hostname} cannot be shed from state {self.state.value}"
            )
        self.state = HostState.SHED
        self.cpu.busy = False
        self.event_log.append((time, f"powered down ({reason})"))

    def power_up(self, time: float) -> None:
        """Power a shed host back up after cool-down / feed restoration."""
        if self.state is not HostState.SHED:
            raise RuntimeError(
                f"{self.hostname} is not shed (state={self.state.value})"
            )
        self.state = HostState.RUNNING
        self.storage.record_power_cycle()
        self.event_log.append((time, "powered up after shed"))

    def retire(self, time: float) -> None:
        """Withdraw the host from the experiment permanently."""
        self.state = HostState.RETIRED
        self.retired_at = time
        self.cpu.busy = False
        self.event_log.append((time, "retired"))

    @property
    def running(self) -> bool:
        """Whether the host is powered and working."""
        return self.state is HostState.RUNNING

    # ------------------------------------------------------------------
    # Thermal and power
    # ------------------------------------------------------------------
    @property
    def power_w(self) -> float:
        """Instantaneous wall draw (0 when down)."""
        if not self.running:
            return 0.0
        return self.spec.active_power_w if self.cpu.busy else self.spec.idle_power_w

    @property
    def average_power_w(self) -> float:
        """Duty-cycle average draw used for enclosure heat budgets."""
        if not self.running:
            return 0.0
        return self.spec.average_power_w()

    def intake_temp_c(self) -> float:
        """Current intake air temperature from the enclosure."""
        if self.enclosure is None:
            raise RuntimeError(f"{self.hostname} has no enclosure")
        return self.enclosure.intake_temp_c

    def case_temp_c(self) -> float:
        """Case-interior air temperature."""
        return self.spec.case_temp_c(self.intake_temp_c(), self.power_w)

    def cpu_temp_c(self) -> float:
        """True die temperature (what a healthy sensor would report)."""
        return self.cpu.temperature_c(self.intake_temp_c(), self.power_w)

    def sensor_poll(self, time: float) -> SensorReading:
        """Poll the lm-sensors chip, as the 20-minute collection round does."""
        return self.sensor.read(self.cpu_temp_c(), time)

    # ------------------------------------------------------------------
    # Time advance
    # ------------------------------------------------------------------
    def tick(self, dt_s: float, time: float, fault_log: Optional[FaultLog] = None) -> None:
        """Advance ``dt_s`` seconds of operation.

        Accrues uptime, exposes the sensor chip to the current die
        temperature, ticks the disks, and samples the transient-failure
        hazard.  A strike powers the host down and logs the event.
        """
        if not self.running:
            return
        self.uptime_s += dt_s
        case = self.case_temp_c()
        intake = self.intake_temp_c()
        sensor_was_ok = self.sensor.state is SensorState.OK
        self.sensor.exposure_step(self.cpu_temp_c(), dt_s, time)
        if (
            sensor_was_ok
            and self.sensor.state is SensorState.ERRATIC
            and self.bus is not None
        ):
            self.bus.publish(SensorLatched(time=time, host_id=self.host_id))
        self.storage.tick(dt_s, case, time)
        if not self.storage.operational:
            self._fail(time, fault_log, FaultKind.DISK, "storage array lost")
            return
        # Water reaching a powered chassis (unsheltered or leaky enclosure)
        # melts, pools, and eventually shorts something.
        precip = getattr(self.enclosure, "intake_precip_mm_h", 0.0)
        if precip > 0.0:
            rate = WATER_INGRESS_RATE_PER_MM * precip
            if self._fault_rng.random() < hazard_probability(rate, dt_s):
                self._fail(
                    time, fault_log, FaultKind.WATER_INGRESS,
                    f"{precip:.1f} mm/h reaching the case",
                )
                return
        struck = self.transient_model.sample_failure(
            self._fault_rng,
            dt_s,
            self.spec.defective_series,
            self.frailty,
            case,
            intake,
        )
        if struck:
            self._fail(time, fault_log, FaultKind.TRANSIENT_SYSTEM, "")

    def tick_from_columns(
        self,
        dt_s: float,
        time: float,
        fault_log: Optional[FaultLog],
        case: float,
        intake: float,
        cpu_temp: float,
        precip: float,
    ) -> None:
        """The stochastic tail of :meth:`tick`, with the thermal reads done.

        The columnar fleet tick computes uptime, case, intake, and die
        temperatures for the whole fleet in one vectorized pass, then calls
        this per host (in host-id order) for the parts that must stay
        scalar: RNG draws, threshold latches, and failure events.  The
        draw and event sequence is exactly :meth:`tick`'s.
        """
        sensor_was_ok = self.sensor.state is SensorState.OK
        self.sensor.exposure_step(cpu_temp, dt_s, time)
        if (
            sensor_was_ok
            and self.sensor.state is SensorState.ERRATIC
            and self.bus is not None
        ):
            self.bus.publish(SensorLatched(time=time, host_id=self.host_id))
        self.storage.tick(dt_s, case, time)
        if not self.storage.operational:
            self._fail(time, fault_log, FaultKind.DISK, "storage array lost")
            return
        if precip > 0.0:
            rate = WATER_INGRESS_RATE_PER_MM * precip
            if self._fault_rng.random() < hazard_probability(rate, dt_s):
                self._fail(
                    time, fault_log, FaultKind.WATER_INGRESS,
                    f"{precip:.1f} mm/h reaching the case",
                )
                return
        struck = self.transient_model.sample_failure(
            self._fault_rng,
            dt_s,
            self.spec.defective_series,
            self.frailty,
            case,
            intake,
        )
        if struck:
            self._fail(time, fault_log, FaultKind.TRANSIENT_SYSTEM, "")

    def bind_columns(self, columns: FleetColumns) -> int:
        """Re-home this host's hot state into a fleet column store.

        Registers the host (and its disks) with ``columns``, copies the
        static vendor parameters into the per-host parameter columns, and
        rebinds every columnized attribute value-preservingly.  Returns
        the host's column index.
        """
        index, disk_start = columns.add_host(self.host_id, len(self.storage.disks))
        columns.idle_power_w[index] = self.spec.idle_power_w
        columns.active_power_w[index] = self.spec.active_power_w
        columns.cpu_idle_power_w[index] = self.spec.cpu_idle_power_w
        columns.cpu_active_power_w[index] = self.spec.cpu_active_power_w
        columns.case_rise_k_per_w[index] = self.spec.case_rise_k_per_w
        columns.cpu_theta_k_per_w[index] = self.spec.cpu_theta_k_per_w
        columns.average_power_w[index] = self.spec.average_power_w()
        columns.defective_series[index] = self.spec.defective_series
        bind_object(self, columns, index)
        bind_object(self.cpu, columns, index)
        bind_object(self.sensor, columns, index)
        bind_object(self.memory, columns, index)
        self.storage.bind_columns(columns, disk_start)
        return index

    def _fail(self, time: float, fault_log: Optional[FaultLog], kind: FaultKind, detail: str) -> None:
        self.state = HostState.FAILED
        self.cpu.busy = False
        self.event_log.append((time, f"FAILED: {kind.value} {detail}".rstrip()))
        if self.bus is not None:
            # The subscribed fault log (and anyone else listening) hears it.
            self.bus.publish(
                HostFailed(time=time, host_id=self.host_id, kind=kind, detail=detail)
            )
        elif fault_log is not None:
            fault_log.record(FaultEvent(time=time, kind=kind, host_id=self.host_id, detail=detail))

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Lifecycle, frailty, operator log, and every component's state.

        The enclosure reference is stored by name; the fleet resolves it
        against the reconstructed enclosures on restore.  RNG positions
        are *not* here -- the host's streams are children of the campaign
        family and ride in its snapshot.
        """
        return {
            "version": _STATE_VERSION,
            "state": self.state.value,
            "enclosure": self.enclosure.name if self.enclosure is not None else None,
            "installed_at": self.installed_at,
            "retired_at": self.retired_at,
            "uptime_s": self.uptime_s,
            "reset_count": self.reset_count,
            "frailty": self.frailty,
            "event_log": [[t, note] for t, note in self.event_log],
            "cpu_busy": self.cpu.busy,
            "memory": self.memory.state_dict(),
            "sensor": self.sensor.state_dict(),
            "storage": self.storage.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore everything except the enclosure link (fleet-resolved)."""
        check_version(self.hostname, state, _STATE_VERSION)
        self.state = HostState(state["state"])
        self.installed_at = (
            None if state["installed_at"] is None else float(state["installed_at"])
        )
        self.retired_at = (
            None if state["retired_at"] is None else float(state["retired_at"])
        )
        self.uptime_s = float(state["uptime_s"])
        self.reset_count = int(state["reset_count"])
        self.frailty = float(state["frailty"])
        self.event_log = [(float(t), str(note)) for t, note in state["event_log"]]
        self.cpu.busy = bool(state["cpu_busy"])
        self.memory.load_state_dict(state["memory"])
        self.sensor.load_state_dict(state["sensor"])
        self.storage.load_state_dict(state["storage"])

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def run_memtest(self, duration_hours: float, time: float) -> bool:
        """Run Memtest86+ for ``duration_hours``; True if the host survives.

        The paper: "A standard Memtest86+ run caused another system failure
        within a few hours" on host #15.  Memtest stresses the memory
        subsystem, multiplying the transient hazard; lemons rarely survive.
        """
        if duration_hours < 0:
            raise ValueError("duration cannot be negative")
        rate = self.transient_model.rate_per_hour(
            self.spec.defective_series, self.frailty, case_temp_c=45.0, intake_temp_c=21.0
        )
        p_fail = hazard_probability(rate * _MEMTEST_STRESS_FACTOR, duration_hours * 3600.0)
        survived = self._fault_rng.random() >= p_fail
        verdict = "passed" if survived else "failed"
        self.event_log.append((time, f"memtest {verdict} ({duration_hours:.0f}h)"))
        return survived
