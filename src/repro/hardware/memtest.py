"""A Memtest86+ session model.

Host #15's death certificate reads: "A standard Memtest86+ run caused
another system failure within a few hours."  The one-line hazard in
:meth:`repro.hardware.host.Host.run_memtest` keeps the campaign cheap;
this module models the session itself for the diagnostics-minded user:
the classic test patterns in order, per-pass timing derived from the
installed memory and platform speed, and -- on a failing host -- *which*
pattern was running when the machine died.

The two models agree by construction: :class:`MemtestSession` consumes
the same hazard arithmetic, just spread over the pattern schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware.faults import hazard_probability

#: The classic Memtest86+ pattern sequence (name, relative duration).
#: Relative durations follow the tool's real pass profile: moving
#: inversions dominate; the bit-fade test at the end is a long soak.
PATTERNS: Tuple[Tuple[str, float], ...] = (
    ("address walking ones", 0.03),
    ("own address", 0.05),
    ("moving inversions, ones & zeros", 0.12),
    ("moving inversions, 8-bit pattern", 0.14),
    ("moving inversions, random pattern", 0.18),
    ("block move, 64-byte blocks", 0.12),
    ("moving inversions, 32-bit shifting", 0.16),
    ("random number sequence", 0.10),
    ("modulo 20, ones & zeros", 0.10),
)

#: Scan throughput of an era platform, MiB of RAM tested per second per
#: pattern unit; sets the wall-clock of one pass.
_SCAN_MIB_PER_S = 180.0


@dataclass(frozen=True)
class PatternResult:
    """One pattern's outcome within a pass."""

    pass_number: int
    pattern: str
    duration_s: float
    crashed: bool


@dataclass(frozen=True)
class MemtestReport:
    """A finished (or fatally interrupted) Memtest86+ session."""

    host_id: int
    memory_mib: int
    passes_requested: int
    results: Tuple[PatternResult, ...]

    @property
    def survived(self) -> bool:
        """Whether the host completed every requested pass."""
        return not any(r.crashed for r in self.results)

    @property
    def crash_point(self) -> Optional[PatternResult]:
        """The pattern in flight when the system failed, if any."""
        for result in self.results:
            if result.crashed:
                return result
        return None

    @property
    def elapsed_s(self) -> float:
        """Total session wall-clock."""
        return sum(r.duration_s for r in self.results)

    def describe(self) -> str:
        """The operator's one-line summary."""
        if self.survived:
            passes = self.results[-1].pass_number if self.results else 0
            return (
                f"host{self.host_id:02d}: {passes} pass(es) over "
                f"{self.memory_mib} MiB completed without error"
            )
        crash = self.crash_point
        hours = self.elapsed_s / 3600.0
        return (
            f"host{self.host_id:02d}: system failure after {hours:.1f} h, "
            f"during '{crash.pattern}' (pass {crash.pass_number})"
        )


def pass_duration_s(memory_mib: int) -> float:
    """Wall-clock of one full pass over ``memory_mib`` of RAM."""
    if memory_mib <= 0:
        raise ValueError("memory size must be positive")
    return memory_mib / _SCAN_MIB_PER_S * sum(w for _, w in PATTERNS) * 60.0


class MemtestSession:
    """Run Memtest86+ against a host's hazard profile.

    Parameters
    ----------
    host:
        The machine under test (supplies memory size, hazard profile, and
        its fault RNG stream, so sessions are deterministic per host).
    stress_factor:
        Hazard multiplier while the test hammers memory; matches the
        campaign's :data:`~repro.hardware.host._MEMTEST_STRESS_FACTOR`.
    """

    def __init__(self, host, stress_factor: float = 40.0) -> None:
        if stress_factor <= 0:
            raise ValueError("stress factor must be positive")
        self.host = host
        self.stress_factor = stress_factor

    def run(self, passes: int = 1, time: float = 0.0) -> MemtestReport:
        """Execute ``passes`` full passes (or die trying)."""
        if passes < 1:
            raise ValueError("need at least one pass")
        host = self.host
        rate = host.transient_model.rate_per_hour(
            host.spec.defective_series,
            host.frailty,
            case_temp_c=45.0,
            intake_temp_c=21.0,
        ) * self.stress_factor
        rng = host._streams.stream("memtest")
        total_weight = sum(w for _, w in PATTERNS)
        pass_s = pass_duration_s(host.spec.memory_mib)

        results: List[PatternResult] = []
        for pass_number in range(1, passes + 1):
            for pattern, weight in PATTERNS:
                duration = pass_s * weight / total_weight
                crashed = bool(rng.random() < hazard_probability(rate, duration))
                results.append(
                    PatternResult(
                        pass_number=pass_number,
                        pattern=pattern,
                        duration_s=duration,
                        crashed=crashed,
                    )
                )
                if crashed:
                    return MemtestReport(
                        host_id=host.host_id,
                        memory_mib=host.spec.memory_mib,
                        passes_requested=passes,
                        results=tuple(results),
                    )
        return MemtestReport(
            host_id=host.host_id,
            memory_mib=host.spec.memory_mib,
            passes_requested=passes,
            results=tuple(results),
        )
