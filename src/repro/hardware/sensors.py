"""The lm-sensors motherboard sensor chip and its cold failure mode.

Section 4.2.1 documents a precise failure sequence on the longest-running
tent host after its -22 degC episode:

1. the chip reports plausible sub-zero CPU temperatures (below -4 degC),
2. then "clearly erroneous readings of -111 degC",
3. an attempted re-detection makes the chip disappear from the bus,
4. a *warm reboot* a week later restores it, with no recurrence.

:class:`SensorChip` is that state machine.  Cold exposure below a latch
threshold accrues a hazard of entering the ERRATIC state; re-detection from
ERRATIC transitions to UNDETECTED (exactly the paper's "the opposite
resulted"); a warm reboot always recovers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.hardware.faults import hazard_probability
from repro.sim.columns import ColumnAttr, EnumColumnAttr
from repro.state.codec import (
    pack_floats,
    pack_ints,
    pack_optional_floats,
    unpack_floats,
    unpack_ints,
    unpack_optional_floats,
)
from repro.state.protocol import check_version

_STATE_VERSION = 1

#: Readings at/below this are physically implausible for a powered CPU and
#: mark the chip as erratic in the monitoring pipeline.
ERRONEOUS_READING_C = -111.0


class SensorState(enum.Enum):
    """Lifecycle of the sensor chip."""

    OK = "ok"
    ERRATIC = "erratic"  # reports -111 degC
    UNDETECTED = "undetected"  # gone from the bus after re-detection


#: Stable small-int codes for packing reading histories into checkpoints.
_STATE_CODES = {
    SensorState.OK: 0,
    SensorState.ERRATIC: 1,
    SensorState.UNDETECTED: 2,
}
_STATES_BY_CODE = {code: state for state, code in _STATE_CODES.items()}


@dataclass(frozen=True)
class SensorReading:
    """One polled value, or ``None`` if the chip is off the bus."""

    time: float
    cpu_temp_c: Optional[float]
    state: SensorState

    @property
    def plausible(self) -> bool:
        """False for the -111 degC erratic readings and for absent chips."""
        return self.cpu_temp_c is not None and self.cpu_temp_c > -60.0


class SensorChip:
    """Motherboard sensor chip with a cold-latch failure mode.

    Parameters
    ----------
    rng:
        This chip's fault stream.
    latch_threshold_c:
        Die temperatures below this accrue latch-up hazard.  The paper's
        chip failed after logging "below -4 degC", so the default threshold
        sits just under that.
    latch_rate_per_hour:
        Hazard rate while below the threshold.
    noise_std_c:
        Gaussian read noise of a healthy chip.
    """

    # Column-backed once the owning host binds to a FleetColumns store;
    # the codes reuse the packed-history encoding above.
    state = EnumColumnAttr("sensor_state", _STATE_CODES)
    cold_exposure_s = ColumnAttr("cold_exposure_s", float)

    def __init__(
        self,
        rng: np.random.Generator,
        latch_threshold_c: float = -3.0,
        latch_rate_per_hour: float = 0.035,
        noise_std_c: float = 0.5,
    ) -> None:
        self._rng = rng
        self.latch_threshold_c = latch_threshold_c
        self.latch_rate_per_hour = latch_rate_per_hour
        self.noise_std_c = noise_std_c
        self.state = SensorState.OK
        self.cold_exposure_s = 0.0
        self.history: List[SensorReading] = []
        self.latch_time: Optional[float] = None

    def __repr__(self) -> str:
        return (
            f"SensorChip(state={self.state.value}, "
            f"cold_exposure={self.cold_exposure_s / 3600.0:.1f}h)"
        )

    # ------------------------------------------------------------------
    # Exposure and failure dynamics
    # ------------------------------------------------------------------
    def exposure_step(self, die_temp_c: float, dt_s: float, time: float) -> None:
        """Advance ``dt_s`` seconds of operation at ``die_temp_c``.

        While healthy and below the latch threshold, the chip may latch
        into the ERRATIC state.
        """
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        if self.state is not SensorState.OK:
            return
        if die_temp_c < self.latch_threshold_c:
            self.cold_exposure_s += dt_s
            p = hazard_probability(self.latch_rate_per_hour, dt_s)
            if self._rng.random() < p:
                self.state = SensorState.ERRATIC
                self.latch_time = time

    def read(self, true_cpu_temp_c: float, time: float) -> SensorReading:
        """Poll the chip (what the 20-minute monitoring round does)."""
        if self.state is SensorState.OK:
            value: Optional[float] = true_cpu_temp_c + self._rng.normal(0.0, self.noise_std_c)
        elif self.state is SensorState.ERRATIC:
            value = ERRONEOUS_READING_C
        else:
            value = None
        reading = SensorReading(time=time, cpu_temp_c=value, state=self.state)
        self.history.append(reading)
        return reading

    # ------------------------------------------------------------------
    # Operator actions
    # ------------------------------------------------------------------
    def redetect(self) -> SensorState:
        """Try to re-detect the chip on the bus.

        The paper: "we tried to redetect the sensor chip with hopes of
        resetting its internal readings.  Instead, the opposite resulted,
        and the sensor chip ceased to be detected at all."  Re-detecting an
        erratic chip therefore always loses it; re-detecting a healthy or
        absent chip changes nothing.
        """
        if self.state is SensorState.ERRATIC:
            self.state = SensorState.UNDETECTED
        return self.state

    def warm_reboot(self) -> SensorState:
        """A warm system reboot restores the chip (as it did in the paper)."""
        self.state = SensorState.OK
        self.cold_exposure_s = 0.0
        return self.state

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Latch state plus the full reading history as packed columns.

        The history is the biggest per-host series in a checkpoint (one
        row per 20-minute poll), hence the columnar encoding.
        """
        return {
            "version": _STATE_VERSION,
            "state": self.state.value,
            "cold_exposure_s": self.cold_exposure_s,
            "latch_time": self.latch_time,
            "history": {
                "time": pack_floats([r.time for r in self.history]),
                "cpu_temp_c": pack_optional_floats(
                    [r.cpu_temp_c for r in self.history]
                ),
                "state": pack_ints([_STATE_CODES[r.state] for r in self.history]),
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("sensor", state, _STATE_VERSION)
        self.state = SensorState(state["state"])
        self.cold_exposure_s = float(state["cold_exposure_s"])
        self.latch_time = (
            None if state["latch_time"] is None else float(state["latch_time"])
        )
        history = state["history"]
        self.history = [
            SensorReading(time=t, cpu_temp_c=v, state=_STATES_BY_CODE[code])
            for t, v, code in zip(
                unpack_floats(history["time"]),
                unpack_optional_floats(history["cpu_temp_c"]),
                unpack_ints(history["state"]),
            )
        ]

    # ------------------------------------------------------------------
    # Census helpers
    # ------------------------------------------------------------------
    @property
    def ever_latched(self) -> bool:
        """Whether the chip entered the erratic state at any point."""
        return self.latch_time is not None

    def erroneous_reading_count(self) -> int:
        """Number of logged -111 degC readings."""
        return sum(
            1
            for r in self.history
            if r.cpu_temp_c is not None and r.cpu_temp_c <= ERRONEOUS_READING_C + 1e-9
        )
