"""S.M.A.R.T. attribute tables and self-tests.

Both the prototype test and the main campaign watched hard-drive
S.M.A.R.T. readings, and Section 4.2.2 notes that after the wrong-hash
incidents "the hard drives have passed their S.M.A.R.T. long test runs" --
evidence pointing at memory, not storage.  The table here models the
handful of attributes that analysis consumes: temperature, power-on hours,
reallocated sectors, and the long self-test verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.state.protocol import check_version

_STATE_VERSION = 1

# Canonical attribute ids (subset of the ATA standard set).
ATTR_REALLOCATED_SECTORS = 5
ATTR_POWER_ON_HOURS = 9
ATTR_POWER_CYCLES = 12
ATTR_TEMPERATURE = 194
ATTR_PENDING_SECTORS = 197


@dataclass
class SmartAttribute:
    """One S.M.A.R.T. attribute row.

    ``value`` is the normalised health value (bigger is better, fails at
    ``threshold``); ``raw`` is the vendor raw counter the analysis reads.
    """

    attr_id: int
    name: str
    value: int = 100
    worst: int = 100
    threshold: int = 0
    raw: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 255:
            raise ValueError("normalised value must be in [0, 255]")

    @property
    def failing(self) -> bool:
        """True when the normalised value has crossed the threshold."""
        return self.threshold > 0 and self.value <= self.threshold


@dataclass(frozen=True)
class SelfTestResult:
    """Outcome of a S.M.A.R.T. long self-test."""

    time: float
    passed: bool
    detail: str = ""


class SmartTable:
    """The attribute table of one drive.

    The owning :class:`~repro.hardware.storage.Disk` advances it: power-on
    hours accrue with uptime, temperature tracks case air, reallocations
    accrue with media wear events.
    """

    def __init__(self) -> None:
        self._attrs: Dict[int, SmartAttribute] = {}
        for attr_id, name in (
            (ATTR_REALLOCATED_SECTORS, "Reallocated_Sector_Ct"),
            (ATTR_POWER_ON_HOURS, "Power_On_Hours"),
            (ATTR_POWER_CYCLES, "Power_Cycle_Count"),
            (ATTR_TEMPERATURE, "Temperature_Celsius"),
            (ATTR_PENDING_SECTORS, "Current_Pending_Sector"),
        ):
            threshold = 36 if attr_id == ATTR_REALLOCATED_SECTORS else 0
            self._attrs[attr_id] = SmartAttribute(attr_id, name, threshold=threshold)
        self.self_tests: List[SelfTestResult] = []
        # Optional fleet-column backing for the two tick-hot raw counters
        # (power-on hours, temperature); see ``bind_columns``.
        self._columns = None
        self._column_index = -1

    def bind_columns(self, columns, index: int) -> None:
        """Back the tick-hot raw counters with fleet disk columns.

        Power-on hours and temperature are the only attributes written on
        every fleet tick; once bound, those raws live in
        ``columns.disk_power_on_hours[index]`` / ``disk_temp_c[index]`` so
        the vectorized disk pass can update the whole fleet at once.  The
        attribute *rows* stay authoritative for everything else and are
        re-synced from the columns before any read.
        """
        columns.disk_power_on_hours[index] = self._attrs[ATTR_POWER_ON_HOURS].raw
        columns.disk_temp_c[index] = self._attrs[ATTR_TEMPERATURE].raw
        self._columns = columns
        self._column_index = index

    def _sync_from_columns(self) -> None:
        if self._columns is not None:
            self._attrs[ATTR_POWER_ON_HOURS].raw = float(
                self._columns.disk_power_on_hours[self._column_index]
            )
            self._attrs[ATTR_TEMPERATURE].raw = float(
                self._columns.disk_temp_c[self._column_index]
            )

    def __repr__(self) -> str:
        hours = self.attribute(ATTR_POWER_ON_HOURS).raw
        return f"SmartTable(power_on={hours:.0f}h, attrs={len(self._attrs)})"

    def attribute(self, attr_id: int) -> SmartAttribute:
        """Fetch one attribute row."""
        self._sync_from_columns()
        try:
            return self._attrs[attr_id]
        except KeyError:
            raise KeyError(f"no S.M.A.R.T. attribute {attr_id}") from None

    def attributes(self) -> List[SmartAttribute]:
        """All rows, ordered by id (smartctl-style listing)."""
        self._sync_from_columns()
        return [self._attrs[k] for k in sorted(self._attrs)]

    # ------------------------------------------------------------------
    # Updates driven by the owning disk
    # ------------------------------------------------------------------
    def accrue_uptime(self, dt_s: float) -> None:
        """Add running time to the power-on-hours counter."""
        if dt_s < 0:
            raise ValueError("dt must be non-negative")
        if self._columns is not None:
            self._columns.disk_power_on_hours[self._column_index] += dt_s / 3600.0
        else:
            self._attrs[ATTR_POWER_ON_HOURS].raw += dt_s / 3600.0

    def record_power_cycle(self) -> None:
        """Count one spin-up (reboot or replacement)."""
        self._attrs[ATTR_POWER_CYCLES].raw += 1

    def set_temperature(self, temp_c: float) -> None:
        """Update the drive temperature attribute."""
        if self._columns is not None:
            self._columns.disk_temp_c[self._column_index] = temp_c
        else:
            self._attrs[ATTR_TEMPERATURE].raw = temp_c

    def add_reallocated_sectors(self, count: int) -> None:
        """Media wear: reallocations reduce the normalised health value."""
        if count < 0:
            raise ValueError("sector count cannot be negative")
        attr = self._attrs[ATTR_REALLOCATED_SECTORS]
        attr.raw += count
        # Vendor curves vary; one point of normalised health per 20 sectors
        # is a common shape.
        attr.value = max(1, 100 - int(attr.raw // 20))
        attr.worst = min(attr.worst, attr.value)

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Mutable attribute rows and the self-test history."""
        return {
            "version": _STATE_VERSION,
            "attrs": {
                str(a.attr_id): [a.value, a.worst, a.raw] for a in self.attributes()
            },
            "self_tests": [[r.time, r.passed, r.detail] for r in self.self_tests],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("smart", state, _STATE_VERSION)
        for attr_id, (value, worst, raw) in state["attrs"].items():
            attr = self._attrs[int(attr_id)]
            attr.value = int(value)
            attr.worst = int(worst)
            attr.raw = float(raw)
        if self._columns is not None:
            self._columns.disk_power_on_hours[self._column_index] = self._attrs[
                ATTR_POWER_ON_HOURS
            ].raw
            self._columns.disk_temp_c[self._column_index] = self._attrs[
                ATTR_TEMPERATURE
            ].raw
        self.self_tests = [
            SelfTestResult(time=float(t), passed=bool(p), detail=str(d))
            for t, p, d in state["self_tests"]
        ]

    # ------------------------------------------------------------------
    def run_long_self_test(self, time: float, media_healthy: bool) -> SelfTestResult:
        """Run a long self-test; passes iff the media is healthy.

        In the paper every drive involved in a wrong-hash incident passed,
        which is what implicated the (non-ECC) memory instead.
        """
        result = SelfTestResult(
            time=time,
            passed=media_healthy and not self.attribute(ATTR_REALLOCATED_SECTORS).failing,
            detail="completed without error" if media_healthy else "read failure",
        )
        self.self_tests.append(result)
        return result
