"""Disks and RAID layouts.

Section 3.4: vendor A pairs two drives in a Linux md software mirror,
vendor B fits a single drive, vendor C runs five -- a hardware mirror for
the system plus a three-drive stripe set with parity.  The arrays matter to
the reproduction because they determine when a disk fault becomes a *host*
fault: a mirror absorbs one loss, the parity stripe absorbs one of three,
the lone SFF drive absorbs nothing.
"""

from __future__ import annotations

import abc
import enum
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.faults import hazard_probability
from repro.hardware.smart import SmartTable
from repro.hardware.vendors import DiskLayout, VendorSpec
from repro.sim.columns import EnumColumnAttr, bind_object
from repro.state.protocol import StateError, check_version

_STATE_VERSION = 1


class DiskState(enum.Enum):
    """Health of a physical drive."""

    HEALTHY = "healthy"
    FAILED = "failed"


#: Small-int codes for the ``disk_state`` fleet column.
_DISK_STATE_CODES = {DiskState.HEALTHY: 0, DiskState.FAILED: 1}


class Disk:
    """One physical hard drive with a S.M.A.R.T. table.

    Parameters
    ----------
    serial:
        Drive identifier, e.g. ``"host03-sda"``.
    rng:
        Fault stream.
    mtbf_hours:
        Mean time between failures while spinning.  Commodity drives of
        the era quoted ~500k hours; the census expects few or no disk
        losses over a three-month campaign, matching the paper.
    """

    # Column-backed (flat disk index) once the owning fleet binds columns.
    state = EnumColumnAttr("disk_state", _DISK_STATE_CODES)

    def __init__(
        self, serial: str, rng: np.random.Generator, mtbf_hours: float = 500_000.0
    ) -> None:
        if mtbf_hours <= 0:
            raise ValueError("MTBF must be positive")
        self.serial = serial
        self.state = DiskState.HEALTHY
        self.smart = SmartTable()
        self.failed_at: Optional[float] = None
        self._rng = rng
        self._rate_per_hour = 1.0 / mtbf_hours

    def __repr__(self) -> str:
        return f"Disk({self.serial!r}, {self.state.value})"

    @property
    def healthy(self) -> bool:
        """Whether the drive still responds."""
        return self.state is DiskState.HEALTHY

    def tick(self, dt_s: float, case_temp_c: float, time: float) -> None:
        """Advance running time; may fail, with a mild heat penalty."""
        if not self.healthy:
            return
        self.smart.accrue_uptime(dt_s)
        self.smart.set_temperature(case_temp_c + 4.0)  # drives run above case air
        rate = self._rate_per_hour
        if case_temp_c > 45.0:
            rate *= 2.0 ** ((case_temp_c - 45.0) / 15.0)
        if self._rng.random() < hazard_probability(rate, dt_s):
            self.fail(time)

    def fail(self, time: float) -> None:
        """Hard-fail the drive."""
        self.state = DiskState.FAILED
        self.failed_at = time

    def run_long_self_test(self, time: float):
        """S.M.A.R.T. long self-test (passes while the media is healthy)."""
        return self.smart.run_long_self_test(time, media_healthy=self.healthy)

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "state": self.state.value,
            "failed_at": self.failed_at,
            "smart": self.smart.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version(f"disk.{self.serial}", state, _STATE_VERSION)
        self.state = DiskState(state["state"])
        self.failed_at = (
            None if state["failed_at"] is None else float(state["failed_at"])
        )
        self.smart.load_state_dict(state["smart"])


class RaidArray(abc.ABC):
    """A set of member drives with a redundancy rule."""

    def __init__(self, name: str, members: Sequence[Disk]) -> None:
        if len(members) < self.min_members():
            raise ValueError(
                f"{type(self).__name__} needs >= {self.min_members()} members, "
                f"got {len(members)}"
            )
        self.name = name
        self.members: List[Disk] = list(members)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, {self.status()})"

    @classmethod
    @abc.abstractmethod
    def min_members(cls) -> int:
        """Fewest drives the layout accepts."""

    @abc.abstractmethod
    def max_tolerated_failures(self) -> int:
        """Drive losses the array survives."""

    @property
    def failed_members(self) -> int:
        """Count of dead member drives."""
        return sum(1 for d in self.members if not d.healthy)

    @property
    def operational(self) -> bool:
        """Whether the array still serves data."""
        return self.failed_members <= self.max_tolerated_failures()

    @property
    def degraded(self) -> bool:
        """Operational but with reduced redundancy."""
        return self.operational and self.failed_members > 0

    def status(self) -> str:
        """Human-readable state: ``optimal`` / ``degraded`` / ``failed``."""
        if not self.operational:
            return "failed"
        return "degraded" if self.degraded else "optimal"


class MdSoftwareMirror(RaidArray):
    """Linux multiple-devices (md) two-way software mirror (vendor A)."""

    @classmethod
    def min_members(cls) -> int:
        return 2

    def max_tolerated_failures(self) -> int:
        return len(self.members) - 1


class HardwareMirror(RaidArray):
    """Controller-managed two-way mirror (vendor C system volume)."""

    @classmethod
    def min_members(cls) -> int:
        return 2

    def max_tolerated_failures(self) -> int:
        return len(self.members) - 1


class StripeWithParity(RaidArray):
    """Three-drive stripe set with parity (vendor C data volume)."""

    @classmethod
    def min_members(cls) -> int:
        return 3

    def max_tolerated_failures(self) -> int:
        return 1


class SingleDisk(RaidArray):
    """Degenerate "array": the lone SFF drive; any loss is fatal."""

    @classmethod
    def min_members(cls) -> int:
        return 1

    def max_tolerated_failures(self) -> int:
        return 0


class StorageSubsystem:
    """A host's full storage stack, built from its vendor's layout.

    Exposes the aggregate questions the host asks: is storage still
    operational, did every drive pass its long self-test, and the ticking
    of member drives.
    """

    def __init__(self, host_label: str, spec: VendorSpec, rng: np.random.Generator) -> None:
        self.spec = spec
        self.disks: List[Disk] = [
            Disk(f"{host_label}-sd{chr(ord('a') + i)}", rng)
            for i in range(spec.disk_layout.disk_count)
        ]
        self.arrays: List[RaidArray] = self._build_arrays(host_label)

    def _build_arrays(self, host_label: str) -> List[RaidArray]:
        layout = self.spec.disk_layout
        if layout is DiskLayout.MD_SOFTWARE_MIRROR:
            return [MdSoftwareMirror(f"{host_label}-md0", self.disks)]
        if layout is DiskLayout.SINGLE_DISK:
            return [SingleDisk(f"{host_label}-sda", self.disks)]
        if layout is DiskLayout.MIRROR_PLUS_RAID5:
            return [
                HardwareMirror(f"{host_label}-sys", self.disks[:2]),
                StripeWithParity(f"{host_label}-data", self.disks[2:]),
            ]
        raise AssertionError(f"unhandled layout {layout}")  # pragma: no cover

    def __repr__(self) -> str:
        states = ", ".join(a.status() for a in self.arrays)
        return f"StorageSubsystem({len(self.disks)} disks; {states})"

    @property
    def operational(self) -> bool:
        """All arrays still serving data."""
        return all(a.operational for a in self.arrays)

    @property
    def degraded(self) -> bool:
        """Any array running without full redundancy."""
        return any(a.degraded for a in self.arrays)

    def tick(self, dt_s: float, case_temp_c: float, time: float) -> None:
        """Advance every member drive."""
        for disk in self.disks:
            disk.tick(dt_s, case_temp_c, time)

    def bind_columns(self, columns, disk_start: int) -> None:
        """Re-home per-disk health and SMART wear into fleet columns.

        Disk ``i`` of this subsystem owns flat disk row ``disk_start + i``.
        """
        for offset, disk in enumerate(self.disks):
            bind_object(disk, columns, disk_start + offset)
            disk.smart.bind_columns(columns, disk_start + offset)

    def run_long_self_tests(self, time: float) -> bool:
        """Run the long test on every drive; True iff all pass."""
        return all(d.run_long_self_test(time).passed for d in self.disks)

    def record_power_cycle(self) -> None:
        """Note a host power cycle on every drive."""
        for disk in self.disks:
            disk.smart.record_power_cycle()

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Per-disk state in member order (layouts are config-fixed)."""
        return {
            "version": _STATE_VERSION,
            "disks": [d.state_dict() for d in self.disks],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("storage", state, _STATE_VERSION)
        if len(state["disks"]) != len(self.disks):
            raise StateError(
                f"storage: snapshot has {len(state['disks'])} disks, "
                f"this subsystem has {len(self.disks)}"
            )
        for disk, disk_state in zip(self.disks, state["disks"]):
            disk.load_state_dict(disk_state)
