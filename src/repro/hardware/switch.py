"""The tent's 8-port network switches.

Section 4.2.1: "we employed two 8-port network switches known to contain
cosmetic errors, i.e., an annoying whining sound during normal operation.
Both of the switches encountered a failure after a week or so of tent
operation.  After some testing, the remaining switch that had never been
used for this test manifested an identical failure state.  We can
therefore conclude that the problem is inherent in these individual
switches and existed even before we began our test."

The model: a switch with the inherent defect fails after an exponential
powered-on time with a mean of about a week *wherever it runs* -- the
bench test of the never-deployed spare reveals the same latent fault.
Healthy switches have an effectively unbounded MTBF on campaign scales.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Optional, Set

import numpy as np

from repro.hardware.faults import hazard_probability
from repro.state.protocol import check_version

_STATE_VERSION = 1


class SwitchState(enum.Enum):
    """Operational state of a switch."""

    OK = "ok"
    FAILED = "failed"


class NetworkSwitch:
    """An 8-port Ethernet switch, possibly with the latent whine defect.

    Parameters
    ----------
    name:
        Label, e.g. ``"tent-sw1"``.
    rng:
        Fault stream.
    inherent_defect:
        The individuals used in (and spared from) the tent all had it.
    defect_mean_life_hours:
        Mean powered-on time to failure for defective units (~a week).
    healthy_mtbf_hours:
        MTBF for sound units (decades).
    """

    PORT_COUNT = 8

    def __init__(
        self,
        name: str,
        rng: np.random.Generator,
        inherent_defect: bool = False,
        defect_mean_life_hours: float = 190.0,
        healthy_mtbf_hours: float = 200_000.0,
    ) -> None:
        self.name = name
        self.inherent_defect = inherent_defect
        #: The cosmetic symptom that flagged these individuals: the whine.
        self.whines = inherent_defect
        self.state = SwitchState.OK
        self.failed_at: Optional[float] = None
        self.powered_hours = 0.0
        self._rng = rng
        self._rate_per_hour = (
            1.0 / defect_mean_life_hours if inherent_defect else 1.0 / healthy_mtbf_hours
        )
        self._ports: Set[str] = set()

    def __repr__(self) -> str:
        defect = " defective" if self.inherent_defect else ""
        return f"NetworkSwitch({self.name!r}, {self.state.value}{defect})"

    # ------------------------------------------------------------------
    # Port management
    # ------------------------------------------------------------------
    def connect(self, endpoint: str) -> None:
        """Attach an endpoint (host or uplink) to a free port."""
        if endpoint in self._ports:
            return
        if len(self._ports) >= self.PORT_COUNT:
            raise ValueError(f"{self.name}: all {self.PORT_COUNT} ports in use")
        self._ports.add(endpoint)

    def disconnect(self, endpoint: str) -> None:
        """Detach an endpoint; unknown endpoints are ignored."""
        self._ports.discard(endpoint)

    def connected(self) -> List[str]:
        """Endpoints currently attached, sorted."""
        return sorted(self._ports)

    def carries(self, endpoint: str) -> bool:
        """Whether traffic for ``endpoint`` flows (port attached, switch up)."""
        return self.state is SwitchState.OK and endpoint in self._ports

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def operational(self) -> bool:
        """Whether the switch forwards frames."""
        return self.state is SwitchState.OK

    def tick(self, dt_s: float, time: float) -> None:
        """Accrue powered-on time; defective units may die."""
        if not self.operational:
            return
        self.powered_hours += dt_s / 3600.0
        if self._rng.random() < hazard_probability(self._rate_per_hour, dt_s):
            self.fail(time)

    def fail(self, time: float) -> None:
        """Hard failure: all ports go dark."""
        self.state = SwitchState.FAILED
        self.failed_at = time

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Lifecycle, port map, and the defect parameters.

        Defect flags and the failure rate are serialised too: a
        replacement switch is created mid-campaign with non-default
        arguments, and restore rebuilds it generically before loading.
        """
        return {
            "version": _STATE_VERSION,
            "state": self.state.value,
            "failed_at": self.failed_at,
            "powered_hours": self.powered_hours,
            "inherent_defect": self.inherent_defect,
            "whines": self.whines,
            "rate_per_hour": self._rate_per_hour,
            "ports": sorted(self._ports),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version(f"switch.{self.name}", state, _STATE_VERSION)
        self.state = SwitchState(state["state"])
        self.failed_at = (
            None if state["failed_at"] is None else float(state["failed_at"])
        )
        self.powered_hours = float(state["powered_hours"])
        self.inherent_defect = bool(state["inherent_defect"])
        self.whines = bool(state["whines"])
        self._rate_per_hour = float(state["rate_per_hour"])
        self._ports = set(state["ports"])

    def bench_test(self, duration_hours: float, time: float) -> bool:
        """Power the unit on a bench for ``duration_hours``.

        Returns True if it survives.  This is the paper's post-mortem on
        the never-deployed spare, which "manifested an identical failure
        state" -- proving the defect inherent, not cold-induced.
        """
        if duration_hours < 0:
            raise ValueError("duration cannot be negative")
        if not self.operational:
            return False
        p_fail = hazard_probability(self._rate_per_hour, duration_hours * 3600.0)
        if self._rng.random() < p_fail:
            self.fail(time)
            return False
        self.powered_hours += duration_hours
        return True
