"""Vendor specifications for the three form factors of Section 3.4.

A :class:`VendorSpec` is everything that differs between the paper's three
hardware populations: case and disk layout, ECC or not, power envelope, and
how well the case moves air (the vendor-B series' known defect is elevated
hardware temperatures "due to bad air flow circulation").

Power and thermal coefficients are calibrated so that

- the tent's nine hosts dissipate roughly 0.9 kW,
- a vendor-A CPU at idle sits ~5 degC above intake air (which is how the
  paper's prototype could log a -4 degC CPU during a -9 degC weekend),
- a vendor-B case runs ~10 degC hotter than a vendor-A case at like load.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class FormFactor(enum.Enum):
    """Case style of a host."""

    MEDIUM_TOWER = "medium tower"
    SMALL_FORM_FACTOR = "small form factor"
    RACK_2U = "2U rack"


class DiskLayout(enum.Enum):
    """Storage arrangement, matching Section 3.4 exactly."""

    #: Two drives in a Linux multiple-devices (md) software mirror.
    MD_SOFTWARE_MIRROR = "md software mirror (2 disks)"
    #: A single drive (the SFF case fits no more).
    SINGLE_DISK = "single disk"
    #: Five drives: two in a hardware mirror, three in a stripe set with parity.
    MIRROR_PLUS_RAID5 = "hw mirror (2) + stripe with parity (3)"

    @property
    def disk_count(self) -> int:
        """Number of physical drives in the layout."""
        return {
            DiskLayout.MD_SOFTWARE_MIRROR: 2,
            DiskLayout.SINGLE_DISK: 1,
            DiskLayout.MIRROR_PLUS_RAID5: 5,
        }[self]


@dataclass(frozen=True)
class VendorSpec:
    """Hardware population description.

    Attributes
    ----------
    vendor_id:
        ``"A"``, ``"B"``, or ``"C"``.
    description:
        The paper's characterisation of the vendor.
    form_factor / disk_layout:
        Physical build.
    ecc_memory:
        Whether the memory has error-correcting parity.  The paper's three
        wrong-hash hosts all "contain memory chips without error-correcting
        parities"; only the vendor-C servers have ECC.
    memory_mib:
        Installed RAM (drives the page-op census scale).
    idle_power_w / active_power_w:
        Electrical draw at idle and during the archival burst.
    cpu_idle_power_w / cpu_active_power_w:
        CPU package share of the above.
    case_rise_k_per_w:
        Case-interior air rise above intake per watt of host power.  Bad
        airflow (vendor B) means a high coefficient.
    cpu_theta_k_per_w:
        CPU temperature rise above case air per watt of CPU power.
    defective_series:
        The known-unreliable population flag (vendor B).
    compress_mb_per_s:
        tar+bzip2 throughput of the platform (bzip2 is CPU-bound, so this
        is effectively a CPU-speed rating); sets how long the archival
        burst keeps the CPU busy.
    operating_range_c:
        Manufacturer-specified intake temperature range; operating outside
        it is what the whole experiment is about.
    """

    vendor_id: str
    description: str
    form_factor: FormFactor
    disk_layout: DiskLayout
    ecc_memory: bool
    memory_mib: int
    idle_power_w: float
    active_power_w: float
    cpu_idle_power_w: float
    cpu_active_power_w: float
    case_rise_k_per_w: float
    cpu_theta_k_per_w: float
    defective_series: bool
    compress_mb_per_s: float = 2.1
    operating_range_c: Tuple[float, float] = (10.0, 35.0)

    def __post_init__(self) -> None:
        if self.active_power_w < self.idle_power_w:
            raise ValueError("active power below idle power")
        if self.cpu_active_power_w > self.active_power_w:
            raise ValueError("CPU power cannot exceed host power")
        if self.memory_mib <= 0:
            raise ValueError("memory size must be positive")
        if self.compress_mb_per_s <= 0:
            raise ValueError("compression throughput must be positive")

    def average_power_w(self, duty_cycle: float = 0.3) -> float:
        """Mean draw for an archival duty cycle (burst fraction of period)."""
        if not 0.0 <= duty_cycle <= 1.0:
            raise ValueError("duty cycle must be in [0, 1]")
        return self.idle_power_w + duty_cycle * (self.active_power_w - self.idle_power_w)

    def case_temp_c(self, intake_c: float, host_power_w: float) -> float:
        """Case-interior air temperature for the given intake and draw."""
        return intake_c + self.case_rise_k_per_w * host_power_w

    def cpu_temp_c(self, intake_c: float, host_power_w: float, cpu_power_w: float) -> float:
        """CPU temperature: intake plus case rise plus the package's own rise."""
        return self.case_temp_c(intake_c, host_power_w) + self.cpu_theta_k_per_w * cpu_power_w

    def within_spec(self, intake_c: float) -> bool:
        """Whether intake air is inside the manufacturer's range."""
        low, high = self.operating_range_c
        return low <= intake_c <= high


#: Small local vendor building "cloned" desktops from COTS parts.
VENDOR_A = VendorSpec(
    vendor_id="A",
    description="small-vendor COTS clone desktop, medium tower",
    form_factor=FormFactor.MEDIUM_TOWER,
    disk_layout=DiskLayout.MD_SOFTWARE_MIRROR,
    ecc_memory=False,
    memory_mib=2048,
    idle_power_w=70.0,
    active_power_w=115.0,
    cpu_idle_power_w=12.0,
    cpu_active_power_w=48.0,
    case_rise_k_per_w=0.035,
    cpu_theta_k_per_w=0.22,
    defective_series=False,
    compress_mb_per_s=2.1,
)

#: Large vendor's mass-manufactured small-form-factor workstation; the
#: series the department already knew to be unreliable (bad airflow).
VENDOR_B = VendorSpec(
    vendor_id="B",
    description="large-vendor SFF workstation, known-unreliable series",
    form_factor=FormFactor.SMALL_FORM_FACTOR,
    disk_layout=DiskLayout.SINGLE_DISK,
    ecc_memory=False,
    memory_mib=1024,
    idle_power_w=48.0,
    active_power_w=80.0,
    cpu_idle_power_w=10.0,
    cpu_active_power_w=40.0,
    case_rise_k_per_w=0.16,
    cpu_theta_k_per_w=0.30,
    defective_series=True,
    compress_mb_per_s=1.6,
)

#: Large vendor's 2U heavy-duty rack server.
VENDOR_C = VendorSpec(
    vendor_id="C",
    description="large-vendor 2U rack server, five disks",
    form_factor=FormFactor.RACK_2U,
    disk_layout=DiskLayout.MIRROR_PLUS_RAID5,
    ecc_memory=True,
    memory_mib=8192,
    idle_power_w=165.0,
    active_power_w=235.0,
    cpu_idle_power_w=25.0,
    cpu_active_power_w=80.0,
    case_rise_k_per_w=0.025,
    cpu_theta_k_per_w=0.15,
    defective_series=False,
    compress_mb_per_s=3.4,
    operating_range_c=(10.0, 35.0),
)

VENDORS = {"A": VENDOR_A, "B": VENDOR_B, "C": VENDOR_C}


def vendor(vendor_id: str) -> VendorSpec:
    """Look up a vendor spec by its letter."""
    try:
        return VENDORS[vendor_id]
    except KeyError:
        raise KeyError(f"unknown vendor {vendor_id!r}; expected one of {sorted(VENDORS)}") from None
