"""Telemetry substrate: instruments and the monitoring host.

Three instruments from the paper, plus the collection loop:

- :class:`~repro.monitoring.datalogger.LascarDataLogger` -- the
  EL-USB-2-LCD unit inside the tent (+-0.5 degC, +-3 % RH typical), which
  arrived late and had to be carried indoors to download -- producing the
  outliers the paper removed from its graphs,
- :class:`~repro.monitoring.powermeter.TechnolineCostControl` -- the
  energy meter gauging the heat the hardware pumps into the tent,
- :class:`~repro.monitoring.collector.MonitoringHost` -- the 20-minute
  rsync/OpenSSH collection round that recovers md5sums and lm-sensors
  data, routed through the (failure-prone) tent switches.
"""

from repro.monitoring.collector import CollectionRound, MonitoringHost, NetworkPath
from repro.monitoring.datalogger import LascarDataLogger, LoggerReading, RemovalEpisode
from repro.monitoring.health import (
    HealthPolicy,
    HealthTracker,
    HostHealth,
    HostHealthState,
)
from repro.monitoring.powermeter import PowerReading, TechnolineCostControl
from repro.monitoring.records import LoggerRecord, SensorRecord, parse_line, to_line
from repro.monitoring.transport import (
    LinkFault,
    LinkFaultAction,
    LinkFaultPlan,
    LinkStorm,
    RsyncChannel,
    TransferLedger,
    TransferRecord,
)
from repro.monitoring.webcam import TerraceWebcam, WebcamFrame

__all__ = [
    "LascarDataLogger",
    "LoggerReading",
    "RemovalEpisode",
    "TechnolineCostControl",
    "PowerReading",
    "MonitoringHost",
    "NetworkPath",
    "CollectionRound",
    "SensorRecord",
    "LoggerRecord",
    "to_line",
    "parse_line",
    "TransferLedger",
    "RsyncChannel",
    "TransferRecord",
    "LinkFault",
    "LinkFaultAction",
    "LinkFaultPlan",
    "LinkStorm",
    "HealthPolicy",
    "HealthTracker",
    "HostHealth",
    "HostHealthState",
    "TerraceWebcam",
    "WebcamFrame",
]
