"""The Lascar EL-USB-2-LCD data logger inside the tent.

Section 3.3 describes the instrument and its two quirks, both reproduced:

- spec-sheet accuracy of "+-0.5 degC, +-3.0 % RH typically", on top of the
  device's 0.5 degC / 0.5 % RH display resolution;
- it is "machine readable, although only by manually inserting the device
  into an USB port", so downloading data means unplugging it and carrying
  it indoors -- creating warm-indoor outlier stretches that the paper
  removed from its graphs (and that :mod:`repro.analysis.outliers`
  detects);
- it "arrived late": recording starts only at ``arrival_time``, which is
  why Figs. 3 and 4 miss the first weeks of inside data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.sim.clock import MINUTE
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.rng import RngStreams
from repro.state.codec import pack_floats, unpack_floats
from repro.state.protocol import check_version
from repro.thermal.enclosure import Enclosure

_STATE_VERSION = 1

#: Indoor office conditions the logger sees while being downloaded.
_INDOOR_TEMP_C = 21.5
_INDOOR_RH_PERCENT = 30.0


@dataclass(frozen=True)
class LoggerReading:
    """One stored sample."""

    time: float
    temp_c: float
    rh_percent: float


@dataclass(frozen=True)
class RemovalEpisode:
    """A stretch during which the logger sat indoors being downloaded."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("episode must have positive duration")

    def covers(self, time: float) -> bool:
        """Whether ``time`` falls inside the episode."""
        return self.start <= time < self.end


def _quantize(value: float, step: float) -> float:
    """Round to the device's display resolution."""
    return round(value / step) * step


class LascarDataLogger:
    """EL-USB-2-LCD model: periodic sampling with error, resolution, removals.

    Parameters
    ----------
    enclosure:
        What the logger hangs inside (the tent).
    streams:
        RNG family (uses the ``lascar.noise`` stream).
    arrival_time:
        First instant the device records (it arrived late).
    period_s:
        Sampling interval (the device logs once a minute at its default).
    temp_error_std_c / rh_error_std:
        1-sigma instrument error, set to half the spec's typical band.
    """

    TEMP_RESOLUTION_C = 0.5
    RH_RESOLUTION = 0.5

    def __init__(
        self,
        enclosure: Enclosure,
        streams: Optional[RngStreams] = None,
        arrival_time: float = 0.0,
        period_s: float = 1 * MINUTE,
        temp_error_std_c: float = 0.25,
        rh_error_std: float = 1.5,
    ) -> None:
        if period_s <= 0:
            raise ValueError("sampling period must be positive")
        self.enclosure = enclosure
        self.arrival_time = arrival_time
        self.period_s = period_s
        self.temp_error_std_c = temp_error_std_c
        self.rh_error_std = rh_error_std
        streams = streams if streams is not None else RngStreams(0)
        self._rng = streams.stream("lascar.noise")
        self.readings: List[LoggerReading] = []
        self.removal_episodes: List[RemovalEpisode] = []
        self._handle: Optional[PeriodicTask] = None
        self._sim: Optional[Simulator] = None
        self._restore_task_id: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"LascarDataLogger(readings={len(self.readings)}, "
            f"removals={len(self.removal_episodes)})"
        )

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _indoors(self, time: float) -> bool:
        return any(ep.covers(time) for ep in self.removal_episodes)

    def sample(self, time: float) -> Optional[LoggerReading]:
        """Record one sample at ``time``; ``None`` before the unit arrived."""
        if time < self.arrival_time:
            return None
        if self._indoors(time):
            true_temp, true_rh = _INDOOR_TEMP_C, _INDOOR_RH_PERCENT
        else:
            true_temp = self.enclosure.intake_temp_c
            true_rh = self.enclosure.intake_rh_percent
        temp = _quantize(
            true_temp + self._rng.normal(0.0, self.temp_error_std_c), self.TEMP_RESOLUTION_C
        )
        rh = _quantize(true_rh + self._rng.normal(0.0, self.rh_error_std), self.RH_RESOLUTION)
        reading = LoggerReading(time=time, temp_c=temp, rh_percent=float(np.clip(rh, 0.0, 100.0)))
        self.readings.append(reading)
        return reading

    def attach(self, sim: Simulator) -> None:
        """Start periodic sampling (first sample at ``arrival_time``)."""
        if self._handle is not None:
            raise RuntimeError("logger already attached")
        start = max(sim.now, self.arrival_time)
        self.register_keys(sim)
        self._handle = sim.every_key(
            self.period_s, "lascar.sample", start=start, label="lascar"
        )

    def detach(self) -> None:
        """Stop sampling."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def register_keys(self, sim: Simulator) -> None:
        """Bind this logger's engine registry key on ``sim``."""
        self._sim = sim
        sim.register("lascar.sample", self._sample_now)

    def _sample_now(self) -> None:
        self.sample(self._sim.now)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "task_id": self._handle.task_id if self._handle is not None else None,
            "readings": {
                "time": pack_floats([r.time for r in self.readings]),
                "temp_c": pack_floats([r.temp_c for r in self.readings]),
                "rh_percent": pack_floats([r.rh_percent for r in self.readings]),
            },
            "removal_episodes": [
                [ep.start, ep.end] for ep in self.removal_episodes
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("lascar", state, _STATE_VERSION)
        readings = state["readings"]
        self.readings = [
            LoggerReading(time=t, temp_c=c, rh_percent=rh)
            for t, c, rh in zip(
                unpack_floats(readings["time"]),
                unpack_floats(readings["temp_c"]),
                unpack_floats(readings["rh_percent"]),
            )
        ]
        self.removal_episodes = [
            RemovalEpisode(start=float(s), end=float(e))
            for s, e in state["removal_episodes"]
        ]
        self._restore_task_id = state["task_id"]

    def rebind(self, sim: Simulator) -> None:
        """Re-link the periodic task after the engine's state is loaded."""
        if self._restore_task_id is not None:
            self._handle = sim.periodic_task(int(self._restore_task_id))
            self._restore_task_id = None

    # ------------------------------------------------------------------
    # Download trips
    # ------------------------------------------------------------------
    def schedule_download_trip(self, start: float, duration_s: float = 30 * MINUTE) -> RemovalEpisode:
        """Plan a carry-indoors episode starting at ``start``.

        During the episode the logger keeps sampling -- but it samples the
        office, not the tent.  Those are the outliers the paper removed.
        """
        episode = RemovalEpisode(start=start, end=start + duration_s)
        self.removal_episodes.append(episode)
        return episode

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        """Sample times as an array."""
        return np.array([r.time for r in self.readings])

    def temperatures(self) -> np.ndarray:
        """Logged temperatures as an array."""
        return np.array([r.temp_c for r in self.readings])

    def humidities(self) -> np.ndarray:
        """Logged relative humidities as an array."""
        return np.array([r.rh_percent for r in self.readings])

    def readings_during_removals(self) -> List[LoggerReading]:
        """Samples taken while the logger sat indoors (ground truth for tests)."""
        return [r for r in self.readings if self._indoors(r.time)]
