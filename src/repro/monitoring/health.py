"""Host health: separating "one dropped handshake" from "died at -22 degC".

The paper's census was *observed* through Section 3.5's 20-minute
SSH/rsync rounds, and the historical collector conflated every failed
contact with a dead host: one transient SSH timeout would have fired
the operator's ``on_down_host`` intervention.  The cloud
thermal-management literature (PAPERS.md) stresses the same
transient-vs-permanent discrimination for exactly this reason -- acting
on unconfirmed signals wastes interventions and poisons the failure
record.

:class:`HealthPolicy` says how sceptical the monitoring host should be:

- ``confirm_rounds`` consecutive failed observations are required
  before a host is *confirmed* down/unreachable and the operator
  playbook is invoked.  The default of 1 keeps the historical
  behaviour byte-identical: every failed observation confirms
  immediately and no SUSPECT state ever exists.
- ``retry`` (a :class:`repro.runner.policy.RetryPolicy`) gives each
  host extra SSH attempts *within* a round, with the runner's
  seeded-jitter backoff accounting the wall time the monitoring host
  spends waiting.

:class:`HealthTracker` runs the per-host state machine::

    UP --failure--> SUSPECT --(streak == confirm_rounds)--> DOWN/UNREACHABLE
     ^                 |                                        |
     +---- success ----+----------------- success --------------+

A success from SUSPECT is a *suppressed false alarm* (the collector
counts it and publishes :class:`~repro.sim.events.HostRecovered`); a
success from a confirmed state is an ordinary repair and stays silent,
exactly as the historical collector was.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

from repro.runner.policy import RetryPolicy
from repro.state.protocol import check_version

_STATE_VERSION = 1


class HostHealthState(enum.Enum):
    """The monitoring host's belief about one host."""

    UP = "up"
    SUSPECT = "suspect"
    DOWN = "down"
    UNREACHABLE = "unreachable"


#: The failure kinds :meth:`HealthTracker.observe_failure` accepts.
_FAILURE_KINDS = (HostHealthState.DOWN, HostHealthState.UNREACHABLE)


@dataclass(frozen=True)
class HealthPolicy:
    """How sceptical the collector is about failed observations.

    The default (one confirmation round, one SSH attempt) reproduces
    the historical collector byte for byte.
    """

    confirm_rounds: int = 1
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        if self.confirm_rounds < 1:
            raise ValueError("need at least one confirmation round")


@dataclass
class HostHealth:
    """One host's current standing with the monitoring host."""

    state: HostHealthState = HostHealthState.UP
    streak: int = 0  # consecutive failed observations

    @property
    def suspect(self) -> bool:
        return self.state is HostHealthState.SUSPECT


@dataclass(frozen=True)
class HealthObservation:
    """What one failed observation did to the host's standing."""

    confirmed: bool
    state: HostHealthState
    streak: int


class HealthTracker:
    """The per-host health state machine behind the collection rounds."""

    def __init__(self, policy: HealthPolicy) -> None:
        self.policy = policy
        self._hosts: Dict[int, HostHealth] = {}
        self.false_alarms_suppressed = 0

    def __repr__(self) -> str:
        suspects = sum(1 for h in self._hosts.values() if h.suspect)
        return (
            f"HealthTracker(hosts={len(self._hosts)}, suspects={suspects}, "
            f"suppressed={self.false_alarms_suppressed})"
        )

    def health(self, host_id: int) -> HostHealth:
        """The host's standing, created UP on first sight."""
        state = self._hosts.get(host_id)
        if state is None:
            state = HostHealth()
            self._hosts[host_id] = state
        return state

    def observe_ok(self, host_id: int) -> int:
        """A successful contact.  Returns the suppressed suspect streak.

        A host that was SUSPECT recovers without ever reaching the
        operator: the return value is the length of the suspicion
        streak just suppressed (0 for hosts that were UP or whose
        outage was already confirmed -- a confirmed host coming back is
        an ordinary repair, not a false alarm).
        """
        state = self._hosts.get(host_id)
        if state is None or (state.state is HostHealthState.UP and state.streak == 0):
            return 0
        suppressed = state.streak if state.suspect else 0
        if suppressed:
            self.false_alarms_suppressed += 1
        state.state = HostHealthState.UP
        state.streak = 0
        return suppressed

    def observe_failure(
        self, host_id: int, kind: HostHealthState
    ) -> HealthObservation:
        """A failed contact of the given kind (DOWN or UNREACHABLE).

        Failure streaks accumulate across kinds -- a host behind a dead
        switch that also stops answering is one continuing outage, and
        the observation reports the *current* round's kind, exactly as
        the historical per-round checks did.
        """
        if kind not in _FAILURE_KINDS:
            raise ValueError(f"not a failure kind: {kind!r}")
        state = self.health(host_id)
        state.streak += 1
        if state.streak >= self.policy.confirm_rounds:
            state.state = kind
            return HealthObservation(confirmed=True, state=kind, streak=state.streak)
        state.state = HostHealthState.SUSPECT
        return HealthObservation(
            confirmed=False, state=HostHealthState.SUSPECT, streak=state.streak
        )

    def forget(self, host_id: int) -> None:
        """Drop a host's standing (unregistered from the collector)."""
        self._hosts.pop(host_id, None)

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "false_alarms_suppressed": self.false_alarms_suppressed,
            "hosts": {
                str(host_id): [h.state.value, h.streak]
                for host_id, h in sorted(self._hosts.items())
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("health_tracker", state, _STATE_VERSION)
        self.false_alarms_suppressed = int(state["false_alarms_suppressed"])
        self._hosts = {
            int(host_id): HostHealth(
                state=HostHealthState(value), streak=int(streak)
            )
            for host_id, (value, streak) in state["hosts"].items()
        }

    def state_of(self, host_id: int) -> HostHealthState:
        """The host's current believed state (UP if never observed)."""
        state = self._hosts.get(host_id)
        return state.state if state is not None else HostHealthState.UP

    def suspects(self) -> Dict[int, int]:
        """Currently-suspect hosts and their streaks, by host id."""
        return {
            host_id: h.streak
            for host_id, h in sorted(self._hosts.items())
            if h.suspect
        }
