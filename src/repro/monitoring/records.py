"""Typed log records and their wire format.

The monitoring host of the paper rsyncs flat files of md5sums and sensor
readings.  The reproduction keeps records as dataclasses but provides the
same flat, line-oriented serialisation (tab-separated, one record per
line) so the analysis layer -- and the tests -- can round-trip them the
way the real pipeline round-tripped files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

_FIELD_SEP = "\t"
_NONE = "-"


@dataclass(frozen=True)
class SensorRecord:
    """One lm-sensors CPU temperature observation pulled from a host.

    ``cpu_temp_c`` is ``None`` when the sensor chip was off the bus
    (the paper's post-redetect state).
    """

    time: float
    host_id: int
    cpu_temp_c: Optional[float]

    TAG = "sensor"


@dataclass(frozen=True)
class LoggerRecord:
    """One Lascar data-logger sample (tent-internal conditions)."""

    time: float
    temp_c: float
    rh_percent: float

    TAG = "logger"


@dataclass(frozen=True)
class HashRecord:
    """One synthetic-load verification outcome."""

    time: float
    host_id: int
    hash_ok: bool

    TAG = "hash"


Record = Union[SensorRecord, LoggerRecord, HashRecord]


def to_line(record: Record) -> str:
    """Serialise a record to one tab-separated line."""
    if isinstance(record, SensorRecord):
        temp = _NONE if record.cpu_temp_c is None else f"{record.cpu_temp_c:.2f}"
        fields = [SensorRecord.TAG, f"{record.time:.1f}", str(record.host_id), temp]
    elif isinstance(record, LoggerRecord):
        fields = [
            LoggerRecord.TAG,
            f"{record.time:.1f}",
            f"{record.temp_c:.2f}",
            f"{record.rh_percent:.2f}",
        ]
    elif isinstance(record, HashRecord):
        fields = [
            HashRecord.TAG,
            f"{record.time:.1f}",
            str(record.host_id),
            "ok" if record.hash_ok else "MISMATCH",
        ]
    else:
        raise TypeError(f"unknown record type {type(record).__name__}")
    return _FIELD_SEP.join(fields)


def parse_line(line: str) -> Record:
    """Parse one line back into its record type.

    Raises ``ValueError`` on malformed input -- the monitoring pipeline
    treats a bad line as a corrupted transfer, never silently skips it.
    """
    fields = line.rstrip("\n").split(_FIELD_SEP)
    if not fields or not fields[0]:
        raise ValueError(f"empty record line: {line!r}")
    tag = fields[0]
    try:
        if tag == SensorRecord.TAG:
            _, time_s, host_s, temp_s = fields
            temp = None if temp_s == _NONE else float(temp_s)
            return SensorRecord(time=float(time_s), host_id=int(host_s), cpu_temp_c=temp)
        if tag == LoggerRecord.TAG:
            _, time_s, temp_s, rh_s = fields
            return LoggerRecord(time=float(time_s), temp_c=float(temp_s), rh_percent=float(rh_s))
        if tag == HashRecord.TAG:
            _, time_s, host_s, ok_s = fields
            if ok_s not in ("ok", "MISMATCH"):
                raise ValueError(f"bad hash verdict {ok_s!r}")
            return HashRecord(time=float(time_s), host_id=int(host_s), hash_ok=ok_s == "ok")
    except ValueError:
        raise
    except Exception as exc:
        raise ValueError(f"malformed {tag} record: {line!r}") from exc
    raise ValueError(f"unknown record tag {tag!r}")
