"""The SSH/rsync transfer path of the monitoring rounds.

Section 3.5: "The transfer is done using public-key authentication
through an OpenSSH tunnel, and new files are transferred by the rsync
program."  Two properties of that pipeline matter to the reproduction:

- rsync is *incremental*: each round moves only the md5sum lines and
  sensor samples produced since the previous successful round (plus a
  fixed SSH/rsync session overhead), so the monitoring host's own load --
  which the paper explicitly counts as part of the synthetic workload --
  is proportional to fresh data, not archive size;
- a round that cannot reach a host moves nothing, and the *next*
  successful round carries the backlog.

:class:`RsyncChannel` models one host's channel; :class:`TransferLedger`
aggregates the monitoring host's traffic for analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Fixed per-session cost: TCP + SSH handshake + rsync file-list exchange.
SSH_SESSION_OVERHEAD_BYTES = 4096
#: One md5sum result line: hash (32 hex), path, timestamp.
MD5_LINE_BYTES = 96
#: One serialised sensor sample pulled from lm-sensors output.
SENSOR_SAMPLE_BYTES = 160


@dataclass(frozen=True)
class TransferRecord:
    """One host's transfer within one collection round."""

    time: float
    host_id: int
    new_md5_lines: int
    new_sensor_samples: int
    bytes_moved: int

    def __post_init__(self) -> None:
        if min(self.new_md5_lines, self.new_sensor_samples, self.bytes_moved) < 0:
            raise ValueError("transfer counts cannot be negative")


class RsyncChannel:
    """Incremental transfer state for one monitored host.

    The channel tracks how much produced data has already been synced;
    :meth:`sync` moves the delta and returns the record.  Failed rounds
    simply never call :meth:`sync`, so backlog accumulates naturally.
    """

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self._synced_md5_lines = 0
        self._synced_sensor_samples = 0
        self.total_bytes = 0
        self.sessions = 0

    def __repr__(self) -> str:
        return (
            f"RsyncChannel(host {self.host_id}, sessions={self.sessions}, "
            f"{self.total_bytes} B)"
        )

    def pending(self, produced_md5_lines: int, produced_sensor_samples: int) -> int:
        """Bytes a sync right now would move (excluding session overhead)."""
        new_md5 = max(0, produced_md5_lines - self._synced_md5_lines)
        new_sensor = max(0, produced_sensor_samples - self._synced_sensor_samples)
        return new_md5 * MD5_LINE_BYTES + new_sensor * SENSOR_SAMPLE_BYTES

    def sync(
        self, time: float, produced_md5_lines: int, produced_sensor_samples: int
    ) -> TransferRecord:
        """Run one rsync session against the host's current output."""
        if produced_md5_lines < self._synced_md5_lines:
            raise ValueError("produced md5 count went backwards")
        if produced_sensor_samples < self._synced_sensor_samples:
            raise ValueError("produced sensor count went backwards")
        new_md5 = produced_md5_lines - self._synced_md5_lines
        new_sensor = produced_sensor_samples - self._synced_sensor_samples
        payload = new_md5 * MD5_LINE_BYTES + new_sensor * SENSOR_SAMPLE_BYTES
        record = TransferRecord(
            time=time,
            host_id=self.host_id,
            new_md5_lines=new_md5,
            new_sensor_samples=new_sensor,
            bytes_moved=payload + SSH_SESSION_OVERHEAD_BYTES,
        )
        self._synced_md5_lines = produced_md5_lines
        self._synced_sensor_samples = produced_sensor_samples
        self.total_bytes += record.bytes_moved
        self.sessions += 1
        return record


class TransferLedger:
    """The monitoring host's aggregate rsync traffic."""

    def __init__(self) -> None:
        self.records: List[TransferRecord] = []
        self._channels: Dict[int, RsyncChannel] = {}

    def __repr__(self) -> str:
        return f"TransferLedger({len(self.records)} transfers, {self.total_bytes} B)"

    def channel(self, host_id: int) -> RsyncChannel:
        """The per-host channel, created on first use."""
        chan = self._channels.get(host_id)
        if chan is None:
            chan = RsyncChannel(host_id)
            self._channels[host_id] = chan
        return chan

    def record_sync(
        self,
        time: float,
        host_id: int,
        produced_md5_lines: int,
        produced_sensor_samples: int,
    ) -> TransferRecord:
        """Sync one host and log the transfer."""
        record = self.channel(host_id).sync(
            time, produced_md5_lines, produced_sensor_samples
        )
        self.records.append(record)
        return record

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all hosts and rounds."""
        return sum(r.bytes_moved for r in self.records)

    @property
    def total_sessions(self) -> int:
        """rsync sessions run (successful host contacts)."""
        return len(self.records)

    def bytes_for_host(self, host_id: int) -> int:
        """Traffic attributable to one host."""
        return sum(r.bytes_moved for r in self.records if r.host_id == host_id)

    def mean_session_bytes(self) -> float:
        """Average transfer size (0 before any session)."""
        if not self.records:
            return 0.0
        return self.total_bytes / len(self.records)
