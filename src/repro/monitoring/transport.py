"""The SSH/rsync transfer path of the monitoring rounds.

Section 3.5: "The transfer is done using public-key authentication
through an OpenSSH tunnel, and new files are transferred by the rsync
program."  Three properties of that pipeline matter to the reproduction:

- rsync is *incremental*: each round moves only the md5sum lines and
  sensor samples produced since the previous successful round (plus a
  fixed SSH/rsync session overhead), so the monitoring host's own load --
  which the paper explicitly counts as part of the synthetic workload --
  is proportional to fresh data, not archive size;
- a round that cannot reach a host moves nothing, and the *next*
  successful round carries the backlog;
- a session that dies mid-transfer moves a *prefix* of the pending
  data -- rsync's delta protocol leaves already-received files in
  place, so the next session carries only the remainder.

:class:`RsyncChannel` models one host's channel; :class:`TransferLedger`
aggregates the monitoring host's traffic for analysis.

Link faults
-----------
Free-air deployments do not get the perfect network ``collect_round``
historically assumed: the paper fought defective 8-port switches, and a
tent in a Finnish winter produces flapping links and dropped handshakes
on top.  :class:`LinkFaultPlan` is the deterministic injection seam for
that weather, styled after :class:`repro.runner.faults.FaultPlan`: it
maps ``(host, round, attempt)`` to one :class:`LinkFault`, either from
an explicit schedule or from a seeded :class:`LinkStorm` that draws an
independent per-``(host, round)`` coin.  Everything is a frozen
dataclass over plain values, so plans travel through configs, tests,
and the CLI unchanged.

Actions
-------
``SSH_TIMEOUT``
    The SSH handshake never completes; the attempt observes nothing.
    From the monitoring host's chair this is indistinguishable from a
    down host -- which is exactly the false-positive hazard the
    :mod:`repro.monitoring.health` state machine exists to absorb.
``PARTIAL_TRANSFER``
    The session connects but dies mid-rsync: a prefix of the pending
    payload moves (``fraction`` of the pending bytes, whole records
    only) and the remainder waits as backlog.
``SLOW_SESSION``
    The session completes but takes ``delay_s`` of wall time on the
    monitoring host -- accounted, not simulated, since collection
    rounds are instantaneous in simulated time.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.state.codec import (
    pack_bools,
    pack_floats,
    pack_ints,
    unpack_bools,
    unpack_floats,
    unpack_ints,
)
from repro.state.protocol import check_version

_STATE_VERSION = 1

#: Fixed per-session cost: TCP + SSH handshake + rsync file-list exchange.
SSH_SESSION_OVERHEAD_BYTES = 4096
#: One md5sum result line: hash (32 hex), path, timestamp.
MD5_LINE_BYTES = 96
#: One serialised sensor sample pulled from lm-sensors output.
SENSOR_SAMPLE_BYTES = 160


@dataclass(frozen=True)
class TransferRecord:
    """One host's transfer within one collection round.

    ``complete`` is ``False`` when the session died mid-rsync and left
    a backlog behind (a ``PARTIAL_TRANSFER`` link fault).
    """

    time: float
    host_id: int
    new_md5_lines: int
    new_sensor_samples: int
    bytes_moved: int
    complete: bool = True

    def __post_init__(self) -> None:
        if min(self.new_md5_lines, self.new_sensor_samples, self.bytes_moved) < 0:
            raise ValueError("transfer counts cannot be negative")


class RsyncChannel:
    """Incremental transfer state for one monitored host.

    The channel tracks how much produced data has already been synced;
    :meth:`sync` moves the delta and returns the record.  Failed rounds
    simply never call :meth:`sync`, so backlog accumulates naturally;
    an interrupted session (``max_payload_bytes``) moves a prefix of
    the pending records and the next session carries the rest.
    """

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self._synced_md5_lines = 0
        self._synced_sensor_samples = 0
        self.total_bytes = 0
        self.sessions = 0

    def __repr__(self) -> str:
        return (
            f"RsyncChannel(host {self.host_id}, sessions={self.sessions}, "
            f"{self.total_bytes} B)"
        )

    def pending(self, produced_md5_lines: int, produced_sensor_samples: int) -> int:
        """Bytes a sync right now would move (excluding session overhead)."""
        new_md5 = max(0, produced_md5_lines - self._synced_md5_lines)
        new_sensor = max(0, produced_sensor_samples - self._synced_sensor_samples)
        return new_md5 * MD5_LINE_BYTES + new_sensor * SENSOR_SAMPLE_BYTES

    def sync(
        self,
        time: float,
        produced_md5_lines: int,
        produced_sensor_samples: int,
        max_payload_bytes: Optional[int] = None,
    ) -> TransferRecord:
        """Run one rsync session against the host's current output.

        ``max_payload_bytes`` caps the payload the session manages to
        move before dying (``None`` = the session completes): md5sum
        lines transfer first, then sensor samples, whole records only --
        rsync never leaves half a file behind.  The session overhead is
        paid either way; the backlog stays pending for the next call.
        """
        if produced_md5_lines < self._synced_md5_lines:
            raise ValueError("produced md5 count went backwards")
        if produced_sensor_samples < self._synced_sensor_samples:
            raise ValueError("produced sensor count went backwards")
        new_md5 = produced_md5_lines - self._synced_md5_lines
        new_sensor = produced_sensor_samples - self._synced_sensor_samples
        if max_payload_bytes is None:
            take_md5, take_sensor = new_md5, new_sensor
        else:
            if max_payload_bytes < 0:
                raise ValueError("payload cap cannot be negative")
            budget = max_payload_bytes
            take_md5 = min(new_md5, budget // MD5_LINE_BYTES)
            budget -= take_md5 * MD5_LINE_BYTES
            take_sensor = min(new_sensor, budget // SENSOR_SAMPLE_BYTES)
        payload = take_md5 * MD5_LINE_BYTES + take_sensor * SENSOR_SAMPLE_BYTES
        record = TransferRecord(
            time=time,
            host_id=self.host_id,
            new_md5_lines=take_md5,
            new_sensor_samples=take_sensor,
            bytes_moved=payload + SSH_SESSION_OVERHEAD_BYTES,
            complete=(take_md5 == new_md5 and take_sensor == new_sensor),
        )
        self._synced_md5_lines += take_md5
        self._synced_sensor_samples += take_sensor
        self.total_bytes += record.bytes_moved
        self.sessions += 1
        return record


class TransferLedger:
    """The monitoring host's aggregate rsync traffic.

    Totals are maintained incrementally in :meth:`record_sync`, so
    :attr:`total_bytes` and :meth:`bytes_for_host` stay O(1) however
    long the campaign runs (they used to re-walk every record on each
    call -- O(hosts x rounds) inside analysis loops).
    """

    def __init__(self) -> None:
        self.records: List[TransferRecord] = []
        self._channels: Dict[int, RsyncChannel] = {}
        self._total_bytes = 0
        self._bytes_by_host: Dict[int, int] = {}
        self.partial_sessions = 0

    def __repr__(self) -> str:
        return f"TransferLedger({len(self.records)} transfers, {self.total_bytes} B)"

    def channel(self, host_id: int) -> RsyncChannel:
        """The per-host channel, created on first use."""
        chan = self._channels.get(host_id)
        if chan is None:
            chan = RsyncChannel(host_id)
            self._channels[host_id] = chan
        return chan

    def record_sync(
        self,
        time: float,
        host_id: int,
        produced_md5_lines: int,
        produced_sensor_samples: int,
        max_payload_bytes: Optional[int] = None,
    ) -> TransferRecord:
        """Sync one host and log the transfer."""
        record = self.channel(host_id).sync(
            time, produced_md5_lines, produced_sensor_samples, max_payload_bytes
        )
        self.records.append(record)
        self._total_bytes += record.bytes_moved
        self._bytes_by_host[host_id] = (
            self._bytes_by_host.get(host_id, 0) + record.bytes_moved
        )
        if not record.complete:
            self.partial_sessions += 1
        return record

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Channel positions, totals, and the packed transfer history."""
        return {
            "version": _STATE_VERSION,
            "partial_sessions": self.partial_sessions,
            "total_bytes": self._total_bytes,
            "bytes_by_host": {
                str(host_id): n for host_id, n in sorted(self._bytes_by_host.items())
            },
            "channels": {
                str(host_id): [
                    chan._synced_md5_lines,
                    chan._synced_sensor_samples,
                    chan.total_bytes,
                    chan.sessions,
                ]
                for host_id, chan in sorted(self._channels.items())
            },
            "records": {
                "time": pack_floats([r.time for r in self.records]),
                "host_id": pack_ints([r.host_id for r in self.records]),
                "new_md5_lines": pack_ints([r.new_md5_lines for r in self.records]),
                "new_sensor_samples": pack_ints(
                    [r.new_sensor_samples for r in self.records]
                ),
                "bytes_moved": pack_ints([r.bytes_moved for r in self.records]),
                "complete": pack_bools([r.complete for r in self.records]),
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("transfer_ledger", state, _STATE_VERSION)
        self.partial_sessions = int(state["partial_sessions"])
        self._total_bytes = int(state["total_bytes"])
        self._bytes_by_host = {
            int(host_id): int(n) for host_id, n in state["bytes_by_host"].items()
        }
        self._channels = {}
        for host_id, (md5, samples, total, sessions) in state["channels"].items():
            chan = RsyncChannel(int(host_id))
            chan._synced_md5_lines = int(md5)
            chan._synced_sensor_samples = int(samples)
            chan.total_bytes = int(total)
            chan.sessions = int(sessions)
            self._channels[int(host_id)] = chan
        records = state["records"]
        self.records = [
            TransferRecord(
                time=t,
                host_id=h,
                new_md5_lines=m,
                new_sensor_samples=s,
                bytes_moved=b,
                complete=c,
            )
            for t, h, m, s, b, c in zip(
                unpack_floats(records["time"]),
                unpack_ints(records["host_id"]),
                unpack_ints(records["new_md5_lines"]),
                unpack_ints(records["new_sensor_samples"]),
                unpack_ints(records["bytes_moved"]),
                unpack_bools(records["complete"]),
            )
        ]

    @property
    def total_bytes(self) -> int:
        """Bytes moved across all hosts and rounds."""
        return self._total_bytes

    @property
    def total_sessions(self) -> int:
        """rsync sessions run (successful host contacts)."""
        return len(self.records)

    def bytes_for_host(self, host_id: int) -> int:
        """Traffic attributable to one host."""
        return self._bytes_by_host.get(host_id, 0)

    def mean_session_bytes(self) -> float:
        """Average transfer size (0 before any session)."""
        if not self.records:
            return 0.0
        return self.total_bytes / len(self.records)


# ----------------------------------------------------------------------
# Link faults
# ----------------------------------------------------------------------
class LinkFaultAction(enum.Enum):
    """What a scheduled link fault does to its SSH/rsync session."""

    SSH_TIMEOUT = "ssh-timeout"
    PARTIAL_TRANSFER = "partial"
    SLOW_SESSION = "slow"


@dataclass(frozen=True)
class LinkFault:
    """One scheduled link misbehaviour on one host's channel.

    ``attempts`` widens an ``SSH_TIMEOUT`` to strike the first N SSH
    attempts of the round, so a retrying collector can still be
    defeated on schedule; the other actions ride whichever attempt
    finally connects.  ``fraction`` is the share of pending payload a
    ``PARTIAL_TRANSFER`` manages to move; ``delay_s`` is the wall time
    a ``SLOW_SESSION`` costs the monitoring host.
    """

    host_id: int
    round_index: int
    action: LinkFaultAction
    attempts: int = 1
    fraction: float = 0.5
    delay_s: float = 60.0

    def __post_init__(self) -> None:
        if self.round_index < 0:
            raise ValueError("rounds are indexed from 0")
        if self.attempts < 1:
            raise ValueError("a fault strikes at least one attempt")
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError("partial-transfer fraction must be within [0, 1]")
        if self.delay_s < 0:
            raise ValueError("session delay cannot be negative")


@dataclass(frozen=True)
class LinkStorm:
    """A seeded weather front: independent per-(host, round) fault coins.

    Each ``(host, round)`` inside the window draws its own
    deterministic coin -- seeded from ``(seed, host, round)`` alone, so
    whether one host is hit never shifts another host's draw, and a
    replayed campaign replays its exact storm.
    """

    probability: float
    seed: int = 0
    action: LinkFaultAction = LinkFaultAction.SSH_TIMEOUT
    attempts: int = 1
    fraction: float = 0.5
    delay_s: float = 60.0
    first_round: int = 0
    last_round: Optional[int] = None
    host_ids: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("storm probability must be within [0, 1]")
        if self.first_round < 0:
            raise ValueError("rounds are indexed from 0")
        if self.last_round is not None and self.last_round < self.first_round:
            raise ValueError("storm window ends before it starts")
        if self.attempts < 1:
            raise ValueError("a fault strikes at least one attempt")

    def fault_for(self, host_id: int, round_index: int) -> Optional[LinkFault]:
        """The storm's fault for this (host, round), if the coin lands."""
        if round_index < self.first_round:
            return None
        if self.last_round is not None and round_index > self.last_round:
            return None
        if self.host_ids is not None and host_id not in self.host_ids:
            return None
        rng = random.Random(f"repro.linkstorm:{self.seed}:{host_id}:{round_index}")
        if rng.random() >= self.probability:
            return None
        return LinkFault(
            host_id=host_id,
            round_index=round_index,
            action=self.action,
            attempts=self.attempts,
            fraction=self.fraction,
            delay_s=self.delay_s,
        )


@dataclass(frozen=True)
class LinkFaultPlan:
    """The full link-fault schedule for one campaign.

    Explicit :class:`LinkFault` entries win over the :class:`LinkStorm`
    background, mirroring :class:`repro.runner.faults.FaultPlan`.
    """

    faults: Tuple[LinkFault, ...] = ()
    storm: Optional[LinkStorm] = None

    @classmethod
    def of(cls, *faults: LinkFault) -> "LinkFaultPlan":
        """A plan from positional faults."""
        return cls(faults=tuple(faults))

    def __bool__(self) -> bool:
        return bool(self.faults) or self.storm is not None

    def lookup(
        self, host_id: int, round_index: int, attempt: int
    ) -> Optional[LinkFault]:
        """The fault striking this (host, round, attempt), if any."""
        for fault in self.faults:
            if (
                fault.host_id == host_id
                and fault.round_index == round_index
                and attempt <= fault.attempts
            ):
                return fault
        if self.storm is not None:
            fault = self.storm.fault_for(host_id, round_index)
            if fault is not None and attempt <= fault.attempts:
                return fault
        return None

    @classmethod
    def parse(cls, text: str) -> "LinkFaultPlan":
        """Build a plan from the CLI's ``--link-faults`` grammar.

        Comma-separated clauses; each is either a storm::

            storm:PROBABILITY[:key=value...]

        with keys ``seed``, ``attempts``, ``action``, ``fraction``,
        ``delay``, ``from``, ``to`` (round window) -- or one explicit
        fault::

            HOST:ROUND:ACTION[:key=value...]

        with ``action`` one of ``ssh-timeout``, ``partial``, ``slow``.
        Example: ``storm:0.25:seed=3:attempts=2,5:12:partial:fraction=0.3``.
        """
        faults: List[LinkFault] = []
        storm: Optional[LinkStorm] = None
        for clause in filter(None, (part.strip() for part in text.split(","))):
            head, *rest = clause.split(":")
            if head == "storm":
                if not rest:
                    raise ValueError("storm clause needs a probability")
                kwargs = _parse_fault_keys(
                    rest[1:], clause,
                    allowed=("seed", "attempts", "action", "fraction", "delay", "from", "to"),
                )
                if storm is not None:
                    raise ValueError("only one storm clause is allowed")
                storm = LinkStorm(probability=_parse_float(rest[0], clause), **kwargs)
            else:
                if len(rest) < 2:
                    raise ValueError(
                        f"expected HOST:ROUND:ACTION in link-fault clause {clause!r}"
                    )
                kwargs = _parse_fault_keys(
                    rest[2:], clause, allowed=("attempts", "fraction", "delay")
                )
                faults.append(
                    LinkFault(
                        host_id=_parse_int(head, clause),
                        round_index=_parse_int(rest[0], clause),
                        action=_parse_action(rest[1], clause),
                        **kwargs,
                    )
                )
        return cls(faults=tuple(faults), storm=storm)


def _parse_action(text: str, clause: str) -> LinkFaultAction:
    for action in LinkFaultAction:
        if action.value == text:
            return action
    names = ", ".join(a.value for a in LinkFaultAction)
    raise ValueError(f"unknown link-fault action {text!r} in {clause!r} (use {names})")


def _parse_int(text: str, clause: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"expected an integer, got {text!r} in {clause!r}") from None


def _parse_float(text: str, clause: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"expected a number, got {text!r} in {clause!r}") from None


_FAULT_KEYS = {
    "seed": ("seed", _parse_int),
    "attempts": ("attempts", _parse_int),
    "action": ("action", _parse_action),
    "fraction": ("fraction", _parse_float),
    "delay": ("delay_s", _parse_float),
    "from": ("first_round", _parse_int),
    "to": ("last_round", _parse_int),
}


def _parse_fault_keys(parts, clause: str, allowed) -> dict:
    kwargs: dict = {}
    for part in parts:
        key, sep, value = part.partition("=")
        if not sep or key not in allowed:
            raise ValueError(
                f"bad link-fault option {part!r} in {clause!r} (use key=value "
                f"with keys {', '.join(allowed)})"
            )
        name, parse = _FAULT_KEYS[key]
        kwargs[name] = parse(value, clause)
    return kwargs
