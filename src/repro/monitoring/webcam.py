"""The terrace webcam.

Footnote 1 of the paper: "An hourly webcam image of the terrace (with the
tent) is available at http://www.cs.helsinki.fi/Exactum-kamera/".  The
webcam was the experiment's only *visual* instrument -- the operators
could glance at it to see daylight, snowfall on the tent, and whether the
tent was still standing.

The model produces one frame's worth of metadata per hour: scene
brightness (driven by solar irradiance), a snowfall flag, and snow-cover
on the tent fabric (accumulating during sub-zero precipitation, ablating
in sun and warmth).  The analysis value is cross-validation: brightness
must track the weather generator's solar series, giving an instrument
that is independent of the thermal chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.climate.generator import WeatherGenerator
from repro.sim.clock import HOUR
from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngStreams

#: Solar irradiance that saturates the camera's auto-exposure.
_FULL_BRIGHT_WM2 = 350.0
#: Snow-cover ablation rates (fraction per hour).
_MELT_RATE_WARM = 0.25
_MELT_RATE_SUN = 0.10


@dataclass(frozen=True)
class WebcamFrame:
    """Metadata extracted from one hourly frame."""

    time: float
    brightness: float  # [0, 1]: night to overexposed noon
    snowing: bool
    tent_snow_cover: float  # [0, 1] fraction of fabric under snow

    def __post_init__(self) -> None:
        if not 0.0 <= self.brightness <= 1.0:
            raise ValueError("brightness must be in [0, 1]")
        if not 0.0 <= self.tent_snow_cover <= 1.0:
            raise ValueError("snow cover must be in [0, 1]")

    @property
    def night(self) -> bool:
        """Too dark to see the tent."""
        return self.brightness < 0.05


class TerraceWebcam:
    """Hourly frame-metadata producer for the roof terrace.

    Parameters
    ----------
    weather:
        The atmosphere in view.
    streams:
        RNG family (uses the ``webcam.noise`` stream for exposure jitter).
    period_s:
        Frame cadence; the real camera shot hourly.
    """

    def __init__(
        self,
        weather: WeatherGenerator,
        streams: Optional[RngStreams] = None,
        period_s: float = HOUR,
    ) -> None:
        if period_s <= 0:
            raise ValueError("frame period must be positive")
        self.weather = weather
        self.period_s = period_s
        streams = streams if streams is not None else RngStreams(0)
        self._rng = streams.stream("webcam.noise")
        self.frames: List[WebcamFrame] = []
        self._snow_cover = 0.0
        self._last_time: Optional[float] = None
        self._handle: Optional[EventHandle] = None

    def __repr__(self) -> str:
        return f"TerraceWebcam(frames={len(self.frames)})"

    # ------------------------------------------------------------------
    def capture(self, time: float) -> WebcamFrame:
        """Shoot one frame at ``time`` and append it."""
        sample = self.weather.sample(time)
        dt_h = 0.0 if self._last_time is None else (time - self._last_time) / HOUR
        self._advance_snow_cover(sample, dt_h)
        self._last_time = time

        exposure = min(1.0, sample.solar_wm2 / _FULL_BRIGHT_WM2)
        jitter = 1.0 + self._rng.normal(0.0, 0.03)
        frame = WebcamFrame(
            time=time,
            brightness=float(np.clip(exposure * jitter, 0.0, 1.0)),
            snowing=sample.snowing,
            tent_snow_cover=self._snow_cover,
        )
        self.frames.append(frame)
        return frame

    def _advance_snow_cover(self, sample, dt_h: float) -> None:
        if dt_h <= 0:
            return
        if sample.snowing:
            # Fresh snow settles on the fabric (saturating accumulation).
            gain = 0.15 * sample.precip_mm_h * dt_h
            self._snow_cover = min(1.0, self._snow_cover + gain)
        else:
            melt = 0.0
            if sample.temp_c > 0.0:
                melt += _MELT_RATE_WARM * dt_h
            if sample.solar_wm2 > 50.0:
                melt += _MELT_RATE_SUN * dt_h
            self._snow_cover = max(0.0, self._snow_cover - melt)

    def attach(self, sim: Simulator, start: Optional[float] = None) -> None:
        """Start the hourly capture loop."""
        if self._handle is not None:
            raise RuntimeError("webcam already attached")
        first = sim.now if start is None else start
        self._handle = sim.every(
            self.period_s, lambda: self.capture(sim.now), start=first, label="webcam"
        )

    def detach(self) -> None:
        """Stop capturing."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Analysis accessors
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        """Frame times."""
        return np.array([f.time for f in self.frames])

    def brightness_series(self) -> np.ndarray:
        """Brightness per frame."""
        return np.array([f.brightness for f in self.frames])

    def snowfall_frames(self) -> List[WebcamFrame]:
        """Frames during which it was snowing."""
        return [f for f in self.frames if f.snowing]

    def daylight_fraction(self) -> float:
        """Fraction of frames with a visible (non-night) scene."""
        if not self.frames:
            return 0.0
        return sum(1 for f in self.frames if not f.night) / len(self.frames)
