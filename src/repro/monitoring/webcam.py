"""The terrace webcam.

Footnote 1 of the paper: "An hourly webcam image of the terrace (with the
tent) is available at http://www.cs.helsinki.fi/Exactum-kamera/".  The
webcam was the experiment's only *visual* instrument -- the operators
could glance at it to see daylight, snowfall on the tent, and whether the
tent was still standing.

The model produces one frame's worth of metadata per hour: scene
brightness (driven by solar irradiance), a snowfall flag, and snow-cover
on the tent fabric (accumulating during sub-zero precipitation, ablating
in sun and warmth).  The analysis value is cross-validation: brightness
must track the weather generator's solar series, giving an instrument
that is independent of the thermal chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.climate.generator import WeatherGenerator
from repro.sim.clock import HOUR
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.rng import RngStreams
from repro.state.codec import pack_bools, pack_floats, unpack_bools, unpack_floats
from repro.state.protocol import check_version

_STATE_VERSION = 1

#: Solar irradiance that saturates the camera's auto-exposure.
_FULL_BRIGHT_WM2 = 350.0
#: Snow-cover ablation rates (fraction per hour).
_MELT_RATE_WARM = 0.25
_MELT_RATE_SUN = 0.10


@dataclass(frozen=True)
class WebcamFrame:
    """Metadata extracted from one hourly frame."""

    time: float
    brightness: float  # [0, 1]: night to overexposed noon
    snowing: bool
    tent_snow_cover: float  # [0, 1] fraction of fabric under snow

    def __post_init__(self) -> None:
        if not 0.0 <= self.brightness <= 1.0:
            raise ValueError("brightness must be in [0, 1]")
        if not 0.0 <= self.tent_snow_cover <= 1.0:
            raise ValueError("snow cover must be in [0, 1]")

    @property
    def night(self) -> bool:
        """Too dark to see the tent."""
        return self.brightness < 0.05


class TerraceWebcam:
    """Hourly frame-metadata producer for the roof terrace.

    Parameters
    ----------
    weather:
        The atmosphere in view.
    streams:
        RNG family (uses the ``webcam.noise`` stream for exposure jitter).
    period_s:
        Frame cadence; the real camera shot hourly.
    """

    def __init__(
        self,
        weather: WeatherGenerator,
        streams: Optional[RngStreams] = None,
        period_s: float = HOUR,
    ) -> None:
        if period_s <= 0:
            raise ValueError("frame period must be positive")
        self.weather = weather
        self.period_s = period_s
        streams = streams if streams is not None else RngStreams(0)
        self._rng = streams.stream("webcam.noise")
        self.frames: List[WebcamFrame] = []
        self._snow_cover = 0.0
        self._last_time: Optional[float] = None
        self._handle: Optional[PeriodicTask] = None
        self._sim: Optional[Simulator] = None
        self._restore_task_id: Optional[int] = None

    def __repr__(self) -> str:
        return f"TerraceWebcam(frames={len(self.frames)})"

    # ------------------------------------------------------------------
    def capture(self, time: float) -> WebcamFrame:
        """Shoot one frame at ``time`` and append it."""
        sample = self.weather.sample(time)
        dt_h = 0.0 if self._last_time is None else (time - self._last_time) / HOUR
        self._advance_snow_cover(sample, dt_h)
        self._last_time = time

        exposure = min(1.0, sample.solar_wm2 / _FULL_BRIGHT_WM2)
        jitter = 1.0 + self._rng.normal(0.0, 0.03)
        frame = WebcamFrame(
            time=time,
            brightness=float(np.clip(exposure * jitter, 0.0, 1.0)),
            snowing=sample.snowing,
            tent_snow_cover=self._snow_cover,
        )
        self.frames.append(frame)
        return frame

    def _advance_snow_cover(self, sample, dt_h: float) -> None:
        if dt_h <= 0:
            return
        if sample.snowing:
            # Fresh snow settles on the fabric (saturating accumulation).
            gain = 0.15 * sample.precip_mm_h * dt_h
            self._snow_cover = min(1.0, self._snow_cover + gain)
        else:
            melt = 0.0
            if sample.temp_c > 0.0:
                melt += _MELT_RATE_WARM * dt_h
            if sample.solar_wm2 > 50.0:
                melt += _MELT_RATE_SUN * dt_h
            self._snow_cover = max(0.0, self._snow_cover - melt)

    def attach(self, sim: Simulator, start: Optional[float] = None) -> None:
        """Start the hourly capture loop."""
        if self._handle is not None:
            raise RuntimeError("webcam already attached")
        first = sim.now if start is None else start
        self.register_keys(sim)
        self._handle = sim.every_key(
            self.period_s, "webcam.capture", start=first, label="webcam"
        )

    def detach(self) -> None:
        """Stop capturing."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def register_keys(self, sim: Simulator) -> None:
        """Bind this camera's engine registry key on ``sim``."""
        self._sim = sim
        sim.register("webcam.capture", self._capture_now)

    def _capture_now(self) -> None:
        self.capture(self._sim.now)

    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": _STATE_VERSION,
            "task_id": self._handle.task_id if self._handle is not None else None,
            "snow_cover": self._snow_cover,
            "last_time": self._last_time,
            "frames": {
                "time": pack_floats([f.time for f in self.frames]),
                "brightness": pack_floats([f.brightness for f in self.frames]),
                "snowing": pack_bools([f.snowing for f in self.frames]),
                "tent_snow_cover": pack_floats(
                    [f.tent_snow_cover for f in self.frames]
                ),
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("webcam", state, _STATE_VERSION)
        self._snow_cover = float(state["snow_cover"])
        self._last_time = (
            None if state["last_time"] is None else float(state["last_time"])
        )
        frames = state["frames"]
        self.frames = [
            WebcamFrame(time=t, brightness=b, snowing=s, tent_snow_cover=c)
            for t, b, s, c in zip(
                unpack_floats(frames["time"]),
                unpack_floats(frames["brightness"]),
                unpack_bools(frames["snowing"]),
                unpack_floats(frames["tent_snow_cover"]),
            )
        ]
        self._restore_task_id = state["task_id"]

    def rebind(self, sim: Simulator) -> None:
        """Re-link the periodic task after the engine's state is loaded."""
        if self._restore_task_id is not None:
            self._handle = sim.periodic_task(int(self._restore_task_id))
            self._restore_task_id = None

    # ------------------------------------------------------------------
    # Analysis accessors
    # ------------------------------------------------------------------
    def times(self) -> np.ndarray:
        """Frame times."""
        return np.array([f.time for f in self.frames])

    def brightness_series(self) -> np.ndarray:
        """Brightness per frame."""
        return np.array([f.brightness for f in self.frames])

    def snowfall_frames(self) -> List[WebcamFrame]:
        """Frames during which it was snowing."""
        return [f for f in self.frames if f.snowing]

    def daylight_fraction(self) -> float:
        """Fraction of frames with a visible (non-night) scene."""
        if not self.frames:
            return 0.0
        return sum(1 for f in self.frames if not f.night) / len(self.frames)
