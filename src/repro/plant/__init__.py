"""The plant chaos plane: cooling/power faults with thermal consequences.

``repro.plant`` owns everything that can go wrong *around* the servers:
fan and blower failures, CRAC outages, snow-blocked intakes, heater loss
(and the ice it grows), and per-pod power-feed drops -- plus the
protective layer that reacts to them (intake-overtemp trips, staged load
shedding, the emergency flap).

- :mod:`repro.plant.faults` -- the fault grammar (:class:`PlantFaultPlan`)
  and the physics constants of degraded airflow,
- :mod:`repro.plant.trip` -- :class:`ThermalTripPolicy`,
- :mod:`repro.plant.fleet` -- :class:`FleetPlant`, the vectorized plane
  for ``FleetScaleCampaign`` cohorts,
- :mod:`repro.plant.controller` -- :class:`PlantController`, the scalar
  plane for the 19-host paper campaign.
"""

from repro.plant.controller import PlantController
from repro.plant.faults import (
    PlantFault,
    PlantFaultKind,
    PlantFaultPlan,
    PlantStorm,
    airflow_factors,
)
from repro.plant.fleet import FleetPlant
from repro.plant.trip import ThermalTripPolicy

__all__ = [
    "PlantController",
    "PlantFault",
    "PlantFaultKind",
    "PlantFaultPlan",
    "PlantStorm",
    "ThermalTripPolicy",
    "FleetPlant",
    "airflow_factors",
]
