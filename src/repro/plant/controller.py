"""Plant-fault controller for the 19-host paper campaign.

The fleet-scale chaos plane (:class:`repro.plant.fleet.FleetPlant`) keeps
thousands of pods as numpy vectors.  The paper campaign has exactly one
tent pod and a basement control group, and its state must round-trip
byte-identically through :class:`~repro.core.builder.CampaignCheckpoint`
on both fleet backends -- so it gets this scalar controller instead,
driven off its own ``"plant.tick"`` engine key right behind
``"fleet.tick"``.

The controller owns the same fault grammar and physics constants as the
fleet plane:

- fan failure / intake blockage degrade the tent's envelope conductance
  and ventilation (:meth:`ModifiableEnvelopeMixin.set_plant_airflow`),
- CRAC outage lets the basement machine room drift toward outside air
  (:meth:`BasementMachineRoom.fail_crac`),
- heater loss accretes intake ice while it is freezing outside,
- a power-feed drop powers down a whole host group (feed 0 = tent,
  feed 1 = basement) until repair,

and an optional :class:`~repro.plant.trip.ThermalTripPolicy` watches the
tent intake: overtemperature trips shed the tent group in stages
(lowest host id first), opening the emergency flap, and restore the
hosts after a cool-down.  Every transition publishes a typed bus event
and lands in the survival census.

With no plan and no policy the campaign never constructs a controller,
so the seeded baseline records stay byte-identical.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.hardware.host import Host, HostState
from repro.plant.faults import (
    DAY_S,
    ICE_ACCRETION_PER_H,
    ICE_SEVERITY_CAP,
    PlantFault,
    PlantFaultKind,
    PlantFaultPlan,
    POD_SCOPED,
)
from repro.plant.trip import ThermalTripPolicy
from repro.sim.events import (
    EmergencyFlapClosed,
    EmergencyFlapOpened,
    HostFailed,
    LoadRestored,
    LoadShed,
    PlantFaultInjected,
    PlantFaultRepaired,
    ThermalTrip,
    ThermalTripCleared,
)
from repro.state.codec import decode_value, encode_value
from repro.state.protocol import check_version

if TYPE_CHECKING:
    from repro.control.actuators import ActuatorBus

#: Power-feed domains of the paper site: feed 0 carries the tent pod,
#: feed 1 the basement control group.
FEED_GROUPS: Tuple[str, ...] = ("tent", "basement")

_INACTIVE = -math.inf

#: Default overtemperature threshold used for excursion accounting when
#: no trip policy is armed (matches ThermalTripPolicy.trip_c).
_EXCURSION_C = 45.0


class PlantController:
    """Scalar chaos plane for the single-tent paper campaign."""

    STATE_VERSION = 1

    def __init__(
        self,
        sim,
        fleet,
        plan: Optional[PlantFaultPlan] = None,
        policy: Optional[ThermalTripPolicy] = None,
        bus=None,
        actuators: Optional["ActuatorBus"] = None,
    ) -> None:
        from repro.control.actuators import ActuatorBus

        self.sim = sim
        self.fleet = fleet
        self.plan = plan if plan is not None else PlantFaultPlan()
        self.policy = policy
        self.bus = bus
        # Physical actions route through the campaign's actuator bus; a
        # standalone controller (tests, ad-hoc harnesses) gets its own.
        self.actuators = actuators if actuators is not None else ActuatorBus(fleet)
        self._start_s: Optional[float] = None
        self._last_now: Optional[float] = None
        self._tick_handle = None
        self._restore_task_id: Optional[int] = None

        # Active-fault runtime: repair deadline per channel (-inf = clear).
        self.fan_until = _INACTIVE
        self.fan_severity = 0.0
        self.block_until = _INACTIVE
        self.block_severity = 0.0
        self.crac_until = _INACTIVE
        self.heater_until = _INACTIVE
        self.ice_severity = 0.0
        self.feed_until: List[float] = [_INACTIVE] * len(FEED_GROUPS)

        # Protective-trip runtime for the one tent pod.  The emergency
        # flap itself lives on the actuator bus; see the property below.
        self.tripped = False
        self.stage = 0
        self.stage_deadline = math.inf
        self.restore_at = math.inf

        # Hosts we powered down, in shed order, per cause.
        self._shed_trip: List[int] = []
        self._shed_feed: List[List[int]] = [[] for _ in FEED_GROUPS]

        # Fault-plan cursors.
        self._next_fault = 0
        self._storm_day = 0
        self._pending: List[Tuple[float, PlantFault]] = []

        # Survival census.
        self.census: Dict[str, float] = {
            "faults_injected": 0,
            "faults_repaired": 0,
            "trips": 0,
            "trip_clears": 0,
            "hosts_shed": 0,
            "hosts_restored": 0,
            "host_hours_shed": 0.0,
            "excursion_minutes": 0.0,
            "hosts_lost": 0,
        }
        if self.bus is not None:
            self.bus.subscribe(HostFailed, self._on_host_failed)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def register_keys(self, sim) -> None:
        sim.register("plant.tick", self._tick)

    def start_ticking(self, start: float) -> None:
        """Begin the periodic plant loop at simulated time ``start``.

        Scheduled with the same period as (and right after) the fleet
        tick, so every plant decision sees freshly advanced enclosures.
        """
        if self._tick_handle is not None:
            raise RuntimeError("plant controller already ticking")
        self._start_s = start
        self.register_keys(self.sim)
        self._tick_handle = self.sim.every_key(
            self.fleet.config.tick_interval_s,
            "plant.tick",
            start=start,
            label="plant-tick",
        )

    def stop_ticking(self) -> None:
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None

    def rebind(self, sim) -> None:
        """Re-acquire the periodic tick handle after an engine load."""
        self.sim = sim
        if self._restore_task_id is not None:
            self._tick_handle = sim.periodic_task(int(self._restore_task_id))
            self._restore_task_id = None

    # ------------------------------------------------------------------
    # Census helpers
    # ------------------------------------------------------------------
    @property
    def incident_active(self) -> bool:
        """Is any plant fault or protective action in force right now?"""
        return (
            self.fan_until != _INACTIVE
            or self.block_until != _INACTIVE
            or self.crac_until != _INACTIVE
            or self.heater_until != _INACTIVE
            or any(u != _INACTIVE for u in self.feed_until)
            or self.tripped
            or self.stage > 0
            or bool(self._shed_trip)
            or any(self._shed_feed[i] for i in range(len(FEED_GROUPS)))
        )

    def _on_host_failed(self, event: HostFailed) -> None:
        if self.incident_active:
            self.census["hosts_lost"] += 1

    def shed_host_count(self) -> int:
        return len(self._shed_trip) + sum(len(ids) for ids in self._shed_feed)

    @property
    def flap_open(self) -> bool:
        """The emergency flap, delegated to the actuator bus."""
        return self.actuators.flap_open

    # ------------------------------------------------------------------
    # The tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        dt = 0.0 if self._last_now is None else now - self._last_now
        if self._start_s is None:
            self._start_s = now
        self.census["host_hours_shed"] += self.shed_host_count() * dt / 3600.0

        self._sample_storms(now)
        self._activate_due(now)
        self._expire(now)
        self._accrete_ice(now, dt)
        self._apply_airflow()
        self._evaluate_trip(now, dt)
        self._last_now = now

    # -- fault plan -----------------------------------------------------
    def _storm_domains(self, kind: PlantFaultKind) -> range:
        if kind is PlantFaultKind.FEED_DROP:
            return range(len(FEED_GROUPS))
        return range(1)

    def _sample_storms(self, now: float) -> None:
        if not self.plan.storms or self._start_s is None:
            return
        last_day = int((now - self._start_s) // DAY_S)
        while self._storm_day <= last_day:
            day = self._storm_day
            for storm in self.plan.storms:
                if day < storm.first_day:
                    continue
                if storm.last_day is not None and day > storm.last_day:
                    continue
                for domain in self._storm_domains(storm.kind):
                    fault = storm.fault_for(domain, day)
                    if fault is not None:
                        self._pending.append(
                            (self._start_s + fault.start_s, fault)
                        )
            self._storm_day += 1
        self._pending.sort(
            key=lambda item: (
                item[0],
                item[1].kind.value,
                -1 if item[1].pod is None else item[1].pod,
                -1 if item[1].feed is None else item[1].feed,
            )
        )

    def _activate_due(self, now: float) -> None:
        faults = self.plan.faults
        while self._next_fault < len(faults):
            fault = faults[self._next_fault]
            start = (self._start_s or 0.0) + fault.start_s
            if start > now:
                break
            self._next_fault += 1
            self._activate(fault, start, now)
        while self._pending and self._pending[0][0] <= now:
            start, fault = self._pending.pop(0)
            self._activate(fault, start, now)

    def _activate(self, fault: PlantFault, start: float, now: float) -> None:
        until = start + fault.repair_s
        if until <= now:
            return  # struck and repaired entirely within this tick
        kind = fault.kind
        if kind is PlantFaultKind.FAN_FAILURE:
            self.fan_until = max(self.fan_until, until)
            self.fan_severity = max(self.fan_severity, fault.severity)
        elif kind is PlantFaultKind.INTAKE_BLOCKAGE:
            self.block_until = max(self.block_until, until)
            self.block_severity = max(self.block_severity, fault.severity)
        elif kind is PlantFaultKind.CRAC_OUTAGE:
            self.crac_until = max(self.crac_until, until)
            self.fleet.basement.fail_crac(now)
        elif kind is PlantFaultKind.HEATER_LOSS:
            self.heater_until = max(self.heater_until, until)
        elif kind is PlantFaultKind.FEED_DROP:
            feed = fault.feed if fault.feed is not None else 0
            if feed >= len(FEED_GROUPS):
                return
            fresh = self.feed_until[feed] == _INACTIVE
            self.feed_until[feed] = max(self.feed_until[feed], until)
            if fresh:
                self._drop_feed(feed, now)
        self.census["faults_injected"] += 1
        if self.bus is not None:
            domain = 0 if kind in POD_SCOPED else -1
            if kind is PlantFaultKind.FEED_DROP:
                domain = fault.feed if fault.feed is not None else 0
            self.bus.publish(
                PlantFaultInjected(
                    time=now,
                    kind=kind.value,
                    domain=domain,
                    severity=fault.severity,
                    repair_s=until - start,
                )
            )

    def _expire(self, now: float) -> None:
        def repaired(kind: PlantFaultKind, domain: int = -1) -> None:
            self.census["faults_repaired"] += 1
            if self.bus is not None:
                self.bus.publish(
                    PlantFaultRepaired(time=now, kind=kind.value, domain=domain)
                )

        if self.fan_until != _INACTIVE and self.fan_until <= now:
            self.fan_until = _INACTIVE
            self.fan_severity = 0.0
            repaired(PlantFaultKind.FAN_FAILURE, 0)
        if self.block_until != _INACTIVE and self.block_until <= now:
            self.block_until = _INACTIVE
            self.block_severity = 0.0
            repaired(PlantFaultKind.INTAKE_BLOCKAGE, 0)
        if self.crac_until != _INACTIVE and self.crac_until <= now:
            self.crac_until = _INACTIVE
            self.fleet.basement.repair_crac(now)
            repaired(PlantFaultKind.CRAC_OUTAGE)
        if self.heater_until != _INACTIVE and self.heater_until <= now:
            self.heater_until = _INACTIVE
            self.ice_severity = 0.0
            repaired(PlantFaultKind.HEATER_LOSS)
        for feed in range(len(FEED_GROUPS)):
            if self.feed_until[feed] != _INACTIVE and self.feed_until[feed] <= now:
                self.feed_until[feed] = _INACTIVE
                self._restore_feed(feed, now)
                repaired(PlantFaultKind.FEED_DROP, feed)

    def _accrete_ice(self, now: float, dt: float) -> None:
        if self.heater_until == _INACTIVE or dt <= 0:
            return
        outside = self.fleet.weather.sample(now).temp_c
        if outside < 0.0:
            self.ice_severity = min(
                ICE_SEVERITY_CAP, self.ice_severity + ICE_ACCRETION_PER_H * dt / 3600.0
            )

    def _apply_airflow(self) -> None:
        blockage = max(self.block_severity, self.ice_severity)
        self.actuators.set_plant_degradation(self.fan_severity, blockage)

    # -- power feeds ----------------------------------------------------
    def _group_hosts(self, feed: int) -> List[Host]:
        return self.fleet.hosts_in_group(FEED_GROUPS[feed])

    def _drop_feed(self, feed: int, now: float) -> None:
        shed = self._shed_feed[feed]
        for host in self._group_hosts(feed):
            if host.state is HostState.RUNNING:
                self.actuators.power_down(host, now, reason="feed drop")
                shed.append(host.host_id)
        if shed:
            self.census["hosts_shed"] += len(shed)
            if self.bus is not None:
                self.bus.publish(
                    LoadShed(time=now, pod=feed, hosts=len(shed), stage=0, reason="feed")
                )

    def _restore_feed(self, feed: int, now: float) -> None:
        shed = self._shed_feed[feed]
        restored = 0
        for host_id in shed:
            host = self.fleet.host(host_id)
            if host.state is HostState.SHED:
                self.actuators.power_up(host, now)
                restored += 1
        self._shed_feed[feed] = []
        if restored:
            self.census["hosts_restored"] += restored
            if self.bus is not None:
                self.bus.publish(
                    LoadRestored(time=now, pod=feed, hosts=restored, reason="feed")
                )

    # -- protective trips ----------------------------------------------
    def _evaluate_trip(self, now: float, dt: float) -> None:
        intake = self.fleet.tent.intake_temp_c
        trip_c = self.policy.trip_c if self.policy is not None else _EXCURSION_C
        if intake >= trip_c and dt > 0:
            self.census["excursion_minutes"] += dt / 60.0
        if self.policy is None:
            return
        policy = self.policy
        hot = intake >= policy.trip_c

        if not self.tripped and hot:
            self.tripped = True
            self.stage = max(1, self.stage)
            self.stage_deadline = now + policy.stage_hold_s
            self.restore_at = math.inf
            self.census["trips"] += 1
            if self.bus is not None:
                self.bus.publish(
                    ThermalTrip(time=now, pod=0, intake_c=intake, stage=self.stage)
                )
            if policy.emergency_flap and not self.flap_open:
                if self.bus is not None:
                    self.bus.publish(EmergencyFlapOpened(time=now, pod=0))
                self.actuators.set_flap(True, now)
            self._shed_to_stage(now)
        elif self.tripped and hot and self.stage_deadline <= now and self.stage < policy.max_stage:
            self.stage += 1
            self.stage_deadline = now + policy.stage_hold_s
            if self.bus is not None:
                self.bus.publish(
                    ThermalTrip(time=now, pod=0, intake_c=intake, stage=self.stage)
                )
            self._shed_to_stage(now)
        elif self.tripped and intake <= policy.clear_c:
            self.tripped = False
            self.stage_deadline = math.inf
            self.restore_at = now + policy.cooldown_s
            self.census["trip_clears"] += 1
            if self.bus is not None:
                self.bus.publish(ThermalTripCleared(time=now, pod=0, intake_c=intake))
            if self.flap_open:
                if self.bus is not None:
                    self.bus.publish(EmergencyFlapClosed(time=now, pod=0))
                self.actuators.set_flap(False, now)
        elif not self.tripped and self.stage > 0 and self.restore_at <= now:
            self.stage = 0
            self.restore_at = math.inf
            restored = 0
            for host_id in self._shed_trip:
                host = self.fleet.host(host_id)
                if host.state is HostState.SHED:
                    self.actuators.power_up(host, now)
                    restored += 1
            self._shed_trip = []
            if restored:
                self.census["hosts_restored"] += restored
                if self.bus is not None:
                    self.bus.publish(
                        LoadRestored(time=now, pod=0, hosts=restored, reason="trip")
                    )

    def _shed_to_stage(self, now: float) -> None:
        """Power hosts down until the stage's shed fraction is met."""
        policy = self.policy
        assert policy is not None
        group = sorted(self._group_hosts(0), key=lambda h: h.host_id)
        if not group:
            return
        target = int(math.ceil(policy.stage_fraction(self.stage) * len(group)))
        shed_now = 0
        for host in group:
            if len(self._shed_trip) >= target:
                break
            if host.state is HostState.RUNNING and host.host_id not in self._shed_trip:
                self.actuators.power_down(host, now, reason="thermal trip")
                self._shed_trip.append(host.host_id)
                shed_now += 1
        if shed_now:
            self.census["hosts_shed"] += shed_now
            if self.bus is not None:
                self.bus.publish(
                    LoadShed(
                        time=now, pod=0, hosts=shed_now, stage=self.stage, reason="trip"
                    )
                )

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "version": self.STATE_VERSION,
            "start_s": self._start_s,
            "last_now": self._last_now,
            "tick_task_id": (
                self._tick_handle.task_id if self._tick_handle is not None else None
            ),
            "fan": [self.fan_until, self.fan_severity],
            "block": [self.block_until, self.block_severity],
            "crac_until": self.crac_until,
            "heater": [self.heater_until, self.ice_severity],
            "feed_until": list(self.feed_until),
            "trip": {
                "tripped": self.tripped,
                "stage": self.stage,
                "stage_deadline": self.stage_deadline,
                "restore_at": self.restore_at,
                "flap_open": self.flap_open,
            },
            "shed_trip": list(self._shed_trip),
            "shed_feed": [list(ids) for ids in self._shed_feed],
            "next_fault": self._next_fault,
            "storm_day": self._storm_day,
            "pending": [
                [start, encode_value(fault)] for start, fault in self._pending
            ],
            "census": dict(self.census),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        check_version("PlantController", state, self.STATE_VERSION)
        self._start_s = state["start_s"]
        self._last_now = state["last_now"]
        self._restore_task_id = state.get("tick_task_id")
        self.fan_until, self.fan_severity = (float(v) for v in state["fan"])
        self.block_until, self.block_severity = (float(v) for v in state["block"])
        self.crac_until = float(state["crac_until"])
        self.heater_until, self.ice_severity = (float(v) for v in state["heater"])
        self.feed_until = [float(v) for v in state["feed_until"]]
        trip = state["trip"]
        self.tripped = bool(trip["tripped"])
        self.stage = int(trip["stage"])
        self.stage_deadline = float(trip["stage_deadline"])
        self.restore_at = float(trip["restore_at"])
        # The flap lives on the bus; set the fields directly (the tent's
        # airflow factors are restored by the fleet's own snapshot, so
        # nothing should be re-applied here).
        self.actuators.flap_open = bool(trip["flap_open"])
        self.actuators.fan_severity = self.fan_severity
        self.actuators.blockage = max(self.block_severity, self.ice_severity)
        self._shed_trip = [int(v) for v in state["shed_trip"]]
        self._shed_feed = [[int(v) for v in ids] for ids in state["shed_feed"]]
        self._next_fault = int(state["next_fault"])
        self._storm_day = int(state["storm_day"])
        self._pending = [
            (float(start), decode_value(encoded))
            for start, encoded in state["pending"]
        ]
        self.census = dict(state["census"])
