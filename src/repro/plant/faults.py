"""Seeded cooling/power plant faults: the chaos-injection plan.

The monitoring plane learned to fail first (``LinkFaultPlan``, PR 4);
this module gives the *plant* the same treatment.  A
:class:`PlantFaultPlan` describes scheduled faults (deterministic
one-offs pinned to a campaign day) and storms (stochastic per-domain
daily coins) over five plant fault kinds:

- ``fan`` / ``failure`` — a pod blower dies: airflow and envelope UA
  degrade until repair;
- ``crac`` / ``outage`` — the basement CRAC stops: the machine room
  drifts toward outside conditions instead of holding setpoint;
- ``intake`` / ``blockage`` — snow or a clogged filter on the intake
  path: severity-scaled airflow loss;
- ``heater`` / ``loss`` — the intake anti-icing heater fails: in
  sub-zero weather ice accretes into a growing blockage;
- ``feed`` / ``drop`` — a power feed drops: every host on the feed's
  pods powers down until the feed returns.

Determinism rules mirror the link-fault plane: storms draw nothing from
the campaign RNG.  Every coin comes from a stateless
``random.Random(f"repro.plantstorm:{seed}:{kind}:{domain}:{day}")`` so
the same plan produces the same faults serially, under ``--jobs N``,
and across kill-and-resume — no draw-order coupling with the rest of
the simulation.  An empty plan is falsy and costs nothing: campaigns
skip the whole plant layer when ``bool(plan)`` is ``False``.

The CLI grammar (``repro run --plant-faults SPEC``) uses ``;`` between
clauses and ``,`` between options within a clause::

    crac:outage@day3,repair=6h
    fan:failure@day2,pod=4,repair=8h;intake:blockage@36h,severity=0.8
    storm:fan:0.05,repair=6h,seed=11;heater:loss@day5,repair=2d
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

DAY_S = 86_400.0

#: Pods per power-feed group at fleet scale (correlated failure domain).
FEED_GROUP_PODS = 4


class PlantFaultKind(enum.Enum):
    """The five plant failure modes the chaos plane can inject."""

    FAN_FAILURE = "fan"
    CRAC_OUTAGE = "crac"
    INTAKE_BLOCKAGE = "intake"
    HEATER_LOSS = "heater"
    FEED_DROP = "feed"


#: CLI clause heads: ``component:event`` -> kind.
_CLAUSE_KINDS: Dict[Tuple[str, str], PlantFaultKind] = {
    ("fan", "failure"): PlantFaultKind.FAN_FAILURE,
    ("crac", "outage"): PlantFaultKind.CRAC_OUTAGE,
    ("intake", "blockage"): PlantFaultKind.INTAKE_BLOCKAGE,
    ("heater", "loss"): PlantFaultKind.HEATER_LOSS,
    ("feed", "drop"): PlantFaultKind.FEED_DROP,
}

#: Mean time-to-repair per kind (seconds) when a clause names none.
DEFAULT_REPAIR_S: Dict[PlantFaultKind, float] = {
    PlantFaultKind.FAN_FAILURE: 8.0 * 3600.0,
    PlantFaultKind.CRAC_OUTAGE: 6.0 * 3600.0,
    PlantFaultKind.INTAKE_BLOCKAGE: 10.0 * 3600.0,
    PlantFaultKind.HEATER_LOSS: 24.0 * 3600.0,
    PlantFaultKind.FEED_DROP: 4.0 * 3600.0,
}

#: Kinds whose failure domain is a pod index.
POD_SCOPED = (PlantFaultKind.FAN_FAILURE, PlantFaultKind.INTAKE_BLOCKAGE)
#: Kinds that hit the whole site regardless of domain.
SITE_SCOPED = (PlantFaultKind.CRAC_OUTAGE, PlantFaultKind.HEATER_LOSS)


def _parse_duration(text: str, clause: str) -> float:
    """``6h`` / ``30m`` / ``2d`` / ``900s`` / bare seconds -> seconds."""
    text = text.strip().lower()
    scale = 1.0
    if text and text[-1] in "smhd":
        scale = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": DAY_S}[text[-1]]
        text = text[:-1]
    try:
        value = float(text) * scale
    except ValueError:
        raise ValueError(f"bad duration in plant-fault clause {clause!r}")
    if value <= 0.0:
        raise ValueError(f"duration must be positive in clause {clause!r}")
    return value


def _parse_when(text: str, clause: str) -> float:
    """``day3`` / ``day2.5`` / ``36h`` / ``900s`` -> days after test start."""
    text = text.strip().lower()
    if text.startswith("day"):
        try:
            value = float(text[3:])
        except ValueError:
            raise ValueError(f"bad day offset in plant-fault clause {clause!r}")
    else:
        value = _parse_duration(text, clause) / DAY_S
    if value < 0.0:
        raise ValueError(f"fault time must be >= 0 in clause {clause!r}")
    return value


def _parse_float(text: str, clause: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"bad number in plant-fault clause {clause!r}")


def _parse_int(text: str, clause: str) -> int:
    try:
        return int(text)
    except ValueError:
        raise ValueError(f"bad integer in plant-fault clause {clause!r}")


def _parse_options(
    parts, clause: str, allowed: Dict[str, Tuple[str, object]]
) -> Dict[str, object]:
    """Parse trailing ``key=value`` options against an ``allowed`` table."""
    values: Dict[str, object] = {}
    for part in parts:
        if "=" not in part:
            raise ValueError(
                f"expected key=value option in plant-fault clause {clause!r}, "
                f"got {part!r}"
            )
        key, _, raw = part.partition("=")
        key = key.strip().lower()
        if key not in allowed:
            raise ValueError(
                f"unknown option {key!r} in plant-fault clause {clause!r} "
                f"(allowed: {', '.join(sorted(allowed))})"
            )
        fieldname, parser = allowed[key]
        values[fieldname] = parser(raw.strip(), clause)  # type: ignore[operator]
    return values


_FAULT_OPTIONS: Dict[str, Tuple[str, object]] = {
    "repair": ("repair_s", _parse_duration),
    "severity": ("severity", _parse_float),
    "pod": ("pod", _parse_int),
    "feed": ("feed", _parse_int),
}

_STORM_OPTIONS: Dict[str, Tuple[str, object]] = {
    "repair": ("repair_s", _parse_duration),
    "severity": ("severity", _parse_float),
    "seed": ("seed", _parse_int),
    "from": ("first_day", _parse_float),
    "to": ("last_day", _parse_float),
}


@dataclass(frozen=True)
class PlantFault:
    """One scheduled plant fault.

    ``start_day`` counts days from the campaign's test start.  ``pod``
    targets one pod for pod-scoped kinds (``None`` = every pod);
    ``feed`` targets one power-feed group for feed drops (``None`` =
    every feed).  Site-scoped kinds (CRAC, heater) ignore both.
    """

    kind: PlantFaultKind
    start_day: float
    repair_s: float = 0.0
    severity: float = 1.0
    pod: Optional[int] = None
    feed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_day < 0.0:
            raise ValueError("start_day must be >= 0")
        if self.repair_s < 0.0:
            raise ValueError("repair_s must be >= 0")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")
        if self.pod is not None and self.pod < 0:
            raise ValueError("pod must be >= 0")
        if self.feed is not None and self.feed < 0:
            raise ValueError("feed must be >= 0")
        if self.repair_s == 0.0:
            object.__setattr__(
                self, "repair_s", DEFAULT_REPAIR_S[self.kind]
            )

    @property
    def start_s(self) -> float:
        """Offset from test start, in seconds."""
        return self.start_day * DAY_S


@dataclass(frozen=True)
class PlantStorm:
    """A stochastic fault process: one seeded coin per domain per day.

    ``rate_per_day`` is the expected strikes per failure domain per
    day; each (domain, day) pair flips at most one coin, with
    probability ``min(rate, 1)``.  Repair times are sampled uniformly
    in ``[0.5, 1.5] x repair_s``.  All draws come from a stateless
    ``random.Random`` keyed on ``(seed, kind, domain, day)`` so storm
    outcomes are independent of simulation draw order.
    """

    kind: PlantFaultKind
    rate_per_day: float
    seed: int = 0
    repair_s: float = 0.0
    severity: float = 1.0
    first_day: float = 0.0
    last_day: Optional[float] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.rate_per_day <= 1.0:
            raise ValueError("storm rate_per_day must be in (0, 1]")
        if not 0.0 < self.severity <= 1.0:
            raise ValueError("severity must be in (0, 1]")
        if self.repair_s < 0.0:
            raise ValueError("repair_s must be >= 0")
        if self.repair_s == 0.0:
            object.__setattr__(
                self, "repair_s", DEFAULT_REPAIR_S[self.kind]
            )
        if self.last_day is not None and self.last_day < self.first_day:
            raise ValueError("storm window must have last_day >= first_day")

    def fault_for(self, domain: int, day: int) -> Optional[PlantFault]:
        """The fault this storm strikes ``domain`` with on ``day``.

        Pure function of ``(self, domain, day)``: the same arguments
        always return the same fault (or ``None``), regardless of how
        many times or in what order it is asked.
        """
        if day < self.first_day:
            return None
        if self.last_day is not None and day > self.last_day:
            return None
        coin = random.Random(
            f"repro.plantstorm:{self.seed}:{self.kind.value}:{domain}:{day}"
        )
        if coin.random() >= self.rate_per_day:
            return None
        start_day = day + coin.random()  # strike moment within the day
        repair_s = self.repair_s * coin.uniform(0.5, 1.5)
        pod = domain if self.kind in POD_SCOPED else None
        feed = domain if self.kind is PlantFaultKind.FEED_DROP else None
        return PlantFault(
            kind=self.kind,
            start_day=start_day,
            repair_s=repair_s,
            severity=self.severity,
            pod=pod,
            feed=feed,
        )


@dataclass(frozen=True)
class PlantFaultPlan:
    """The full chaos plan: scheduled faults plus storms.

    Falsy when empty — campaigns use ``bool(plan)`` to skip building
    the plant layer entirely, which is what keeps the no-chaos record
    byte-identical to the pinned seed-7 digest.
    """

    faults: Tuple[PlantFault, ...] = field(default_factory=tuple)
    storms: Tuple[PlantStorm, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return bool(self.faults) or bool(self.storms)

    @classmethod
    def of(cls, *faults: PlantFault, storms=()) -> "PlantFaultPlan":
        return cls(faults=tuple(faults), storms=tuple(storms))

    @classmethod
    def parse(cls, text: str) -> "PlantFaultPlan":
        """Parse the CLI grammar.

        Clauses are ``;``-separated; options within a clause are
        ``,``-separated ``key=value`` pairs::

            crac:outage@day3,repair=6h
            fan:failure@day2,pod=4;storm:intake:0.1,seed=3,from=2,to=40

        An empty string parses to an empty (falsy) plan.
        """
        faults = []
        storms = []
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            parts = [p.strip() for p in clause.split(",")]
            head = parts[0]
            if head.lower().startswith("storm:"):
                storms.append(cls._parse_storm(head, parts[1:], clause))
            else:
                faults.append(cls._parse_fault(head, parts[1:], clause))
        faults.sort(key=lambda f: (f.start_day, f.kind.value))
        return cls(faults=tuple(faults), storms=tuple(storms))

    @staticmethod
    def _parse_fault(head: str, options, clause: str) -> PlantFault:
        if "@" not in head:
            raise ValueError(
                f"plant-fault clause {clause!r} needs component:event@when"
            )
        name, _, when = head.partition("@")
        pieces = name.lower().split(":")
        if len(pieces) != 2 or tuple(pieces) not in _CLAUSE_KINDS:
            known = ", ".join(f"{c}:{e}" for c, e in sorted(_CLAUSE_KINDS))
            raise ValueError(
                f"unknown plant fault {name!r} in clause {clause!r} "
                f"(known: {known})"
            )
        kind = _CLAUSE_KINDS[tuple(pieces)]
        values = _parse_options(options, clause, _FAULT_OPTIONS)
        return PlantFault(
            kind=kind, start_day=_parse_when(when, clause), **values
        )

    @staticmethod
    def _parse_storm(head: str, options, clause: str) -> PlantStorm:
        pieces = head.lower().split(":")
        if len(pieces) != 3:
            raise ValueError(
                f"storm clause {clause!r} must look like storm:COMPONENT:RATE"
            )
        component = pieces[1]
        kinds = {c: k for (c, _e), k in _CLAUSE_KINDS.items()}
        if component not in kinds:
            raise ValueError(
                f"unknown storm component {component!r} in clause {clause!r} "
                f"(known: {', '.join(sorted(kinds))})"
            )
        rate = _parse_float(pieces[2], clause)
        values = _parse_options(options, clause, _STORM_OPTIONS)
        return PlantStorm(kind=kinds[component], rate_per_day=rate, **values)


# ----------------------------------------------------------------------
# Physical consequences
# ----------------------------------------------------------------------
#: Envelope-UA and air-change multipliers per airflow fault, at
#: severity 1.0; severities scale the reduction linearly.  A dead
#: blower mostly kills forced convection; a blocked intake chokes air
#: changes harder than conductance.
FAN_UA_LOSS = 0.30
FAN_ACH_LOSS = 0.40
BLOCKAGE_UA_LOSS = 0.50
BLOCKAGE_ACH_LOSS = 0.80

#: The emergency flap is the trip layer's fallback: ripping it open
#: buys conductance and fresh air at the price of weather exposure.
FLAP_UA_GAIN = 1.6
FLAP_ACH_GAIN = 2.0

#: Floor on composed airflow factors: a fully failed path still leaks.
AIRFLOW_FLOOR = 0.05

#: Ice accretion on an unheated intake in sub-zero air: severity per
#: hour of exposure, and its cap.
ICE_ACCRETION_PER_H = 0.08
ICE_SEVERITY_CAP = 0.9

#: CRAC outage: the machine room relaxes toward outside + approach
#: with this first-order time constant.
CRAC_TAU_S = 3600.0
CRAC_OUTAGE_APPROACH_C = 16.0


def airflow_factors(
    fan_severity: float, blockage_severity: float, flap_open: bool
) -> Tuple[float, float]:
    """Compose (ua_factor, ach_factor) for one pod's airflow state.

    Multiplicative composition with a floor: a dead fan behind a
    blocked intake is worse than either alone, but never a perfect
    seal.
    """
    ua = 1.0
    ach = 1.0
    if fan_severity > 0.0:
        ua *= 1.0 - FAN_UA_LOSS * fan_severity
        ach *= 1.0 - FAN_ACH_LOSS * fan_severity
    if blockage_severity > 0.0:
        ua *= 1.0 - BLOCKAGE_UA_LOSS * blockage_severity
        ach *= 1.0 - BLOCKAGE_ACH_LOSS * blockage_severity
    if flap_open:
        ua *= FLAP_UA_GAIN
        ach *= FLAP_ACH_GAIN
    return max(ua, AIRFLOW_FLOOR), max(ach, AIRFLOW_FLOOR)
