"""Vectorized plant state for the fleet-scale batch campaign.

:class:`FleetPlant` owns everything the chaos plane adds to
``FleetScaleCampaign``: the fault schedule cursor, per-pod airflow
degradation, the power-feed masks, CRAC/heater site state, the
per-pod protective-trip state machine, and the survival-census
counters.  The campaign calls :meth:`advance` once per frame (after
weather, before thermal) and :meth:`evaluate` after thermal; both are
pure vector arithmetic plus short python loops over *transitions*
(faults striking, trips firing), which are rare by construction.

Determinism: storm coins are stateless (pure functions of
``(seed, kind, domain, day)``, see :class:`~repro.plant.faults.PlantStorm`),
scheduled faults are data, and nothing here touches the campaign's
pooled RNG -- so two runs with the same plan agree fault-for-fault
regardless of host count, job fan-out, or kill-and-resume.  The whole
object round-trips through :meth:`state_dict`/:meth:`load_state_dict`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.plant.faults import (
    BLOCKAGE_ACH_LOSS,
    BLOCKAGE_UA_LOSS,
    AIRFLOW_FLOOR,
    CRAC_OUTAGE_APPROACH_C,
    CRAC_TAU_S,
    DAY_S,
    FAN_ACH_LOSS,
    FAN_UA_LOSS,
    FEED_GROUP_PODS,
    FLAP_ACH_GAIN,
    FLAP_UA_GAIN,
    ICE_ACCRETION_PER_H,
    ICE_SEVERITY_CAP,
    POD_SCOPED,
    PlantFault,
    PlantFaultKind,
    PlantFaultPlan,
)
from repro.plant.trip import ThermalTripPolicy
from repro.sim import events as ev

_INACTIVE = -math.inf


class FleetPlant:
    """Chaos-plane state for one fleet-scale cohort of ``n_pods`` pods."""

    STATE_VERSION = 1

    def __init__(
        self,
        plan: Optional[PlantFaultPlan],
        policy: Optional[ThermalTripPolicy],
        n_pods: int,
        start_s: float,
        bus: Optional[ev.EventBus] = None,
    ) -> None:
        self.plan = plan if plan is not None else PlantFaultPlan()
        self.policy = policy
        self.n_pods = int(n_pods)
        self.n_feeds = (self.n_pods + FEED_GROUP_PODS - 1) // FEED_GROUP_PODS
        self._start_s = float(start_s)
        self.bus = bus

        # Airflow faults: per-pod (targeted / storm strikes) plus one
        # site-wide channel per kind (scheduled faults with pod=None).
        self.fan_until = np.full(self.n_pods, _INACTIVE)
        self.fan_severity = np.zeros(self.n_pods)
        self.block_until = np.full(self.n_pods, _INACTIVE)
        self.block_severity = np.zeros(self.n_pods)
        self.fan_all_until = _INACTIVE
        self.fan_all_severity = 0.0
        self.block_all_until = _INACTIVE
        self.block_all_severity = 0.0

        # Power feeds, CRAC, intake heater (site scalars).
        self.feed_until = np.full(self.n_feeds, _INACTIVE)
        self.crac_until = _INACTIVE
        self.crac_recovering = False
        self.heater_until = _INACTIVE
        self.ice_severity = 0.0

        # Protective-trip state machine, per pod.
        self.tripped = np.zeros(self.n_pods, dtype=np.bool_)
        self.stage = np.zeros(self.n_pods, dtype=np.int8)
        self.stage_deadline = np.full(self.n_pods, np.inf)
        self.restore_at = np.full(self.n_pods, np.inf)
        self.flap = np.zeros(self.n_pods, dtype=np.bool_)

        # Composed airflow factors (recomputed each advance).
        self.ua_factor = np.ones(self.n_pods)
        self.ach_factor = np.ones(self.n_pods)

        # Fault-schedule cursors.
        self._next_fault = 0  # into plan.faults (sorted by start_day)
        self._storm_day = 0  # next day index to sample
        self._pending: List[Tuple[float, PlantFault]] = []

        # Feed transitions from the last advance (feed indices).
        self.feed_dropped_now: List[int] = []
        self.feed_restored_now: List[int] = []

        # Survival census counters.
        self.faults_injected = 0
        self.faults_repaired = 0
        self.trips = 0
        self.trip_clears = 0
        self.hosts_shed = 0
        self.hosts_restored = 0
        self.host_hours_shed = 0.0
        self.excursion_minutes = 0.0
        self.hosts_lost = 0

    # ------------------------------------------------------------------
    # Fault schedule
    # ------------------------------------------------------------------
    def _publish(self, event: ev.Event) -> None:
        if self.bus is not None:
            self.bus.publish(event)

    def _storm_domains(self, kind: PlantFaultKind) -> range:
        if kind in POD_SCOPED:
            return range(self.n_pods)
        if kind is PlantFaultKind.FEED_DROP:
            return range(self.n_feeds)
        return range(1)  # site-scoped: one coin per day

    def _sample_storms(self, now: float) -> None:
        """Flip the daily coins for every campaign day reached so far."""
        day = int((now - self._start_s) // DAY_S)
        sampled = False
        while self._storm_day <= day:
            d = self._storm_day
            for storm in self.plan.storms:
                for domain in self._storm_domains(storm.kind):
                    fault = storm.fault_for(domain, d)
                    if fault is not None:
                        start = self._start_s + fault.start_s
                        self._pending.append((start, fault))
                        sampled = True
            self._storm_day += 1
        if sampled:
            self._pending.sort(
                key=lambda item: (
                    item[0],
                    item[1].kind.value,
                    -1 if item[1].pod is None else item[1].pod,
                    -1 if item[1].feed is None else item[1].feed,
                )
            )

    def _activate(self, fault: PlantFault, start: float, now: float) -> None:
        """Apply one fault whose start time has arrived."""
        until = start + fault.repair_s
        if until <= now:
            return  # struck and repaired entirely between frames
        kind = fault.kind
        domain = -1
        if kind is PlantFaultKind.FAN_FAILURE:
            if fault.pod is None:
                self.fan_all_until = max(self.fan_all_until, until)
                self.fan_all_severity = max(self.fan_all_severity, fault.severity)
            elif fault.pod < self.n_pods:
                domain = fault.pod
                self.fan_until[domain] = max(self.fan_until[domain], until)
                self.fan_severity[domain] = max(
                    self.fan_severity[domain], fault.severity
                )
            else:
                return  # targets a pod this cohort does not have
        elif kind is PlantFaultKind.INTAKE_BLOCKAGE:
            if fault.pod is None:
                self.block_all_until = max(self.block_all_until, until)
                self.block_all_severity = max(
                    self.block_all_severity, fault.severity
                )
            elif fault.pod < self.n_pods:
                domain = fault.pod
                self.block_until[domain] = max(self.block_until[domain], until)
                self.block_severity[domain] = max(
                    self.block_severity[domain], fault.severity
                )
            else:
                return
        elif kind is PlantFaultKind.CRAC_OUTAGE:
            self.crac_until = max(self.crac_until, until)
            self.crac_recovering = False
        elif kind is PlantFaultKind.HEATER_LOSS:
            self.heater_until = max(self.heater_until, until)
        elif kind is PlantFaultKind.FEED_DROP:
            if fault.feed is None:
                self.feed_until[:] = np.maximum(self.feed_until, until)
            elif fault.feed < self.n_feeds:
                domain = fault.feed
                self.feed_until[domain] = max(self.feed_until[domain], until)
            else:
                return
        self.faults_injected += 1
        self._publish(
            ev.PlantFaultInjected(
                time=now,
                kind=kind.value,
                domain=domain,
                severity=fault.severity,
                repair_s=fault.repair_s,
            )
        )

    def _expire(self, now: float) -> None:
        """Lift faults whose repair time has passed, publishing repairs."""
        for arr_until, arr_sev, kind in (
            (self.fan_until, self.fan_severity, PlantFaultKind.FAN_FAILURE),
            (self.block_until, self.block_severity, PlantFaultKind.INTAKE_BLOCKAGE),
        ):
            expired = np.isfinite(arr_until) & (arr_until <= now)
            for pod in np.flatnonzero(expired):
                self.faults_repaired += 1
                self._publish(
                    ev.PlantFaultRepaired(time=now, kind=kind.value, domain=int(pod))
                )
            arr_until[expired] = _INACTIVE
            arr_sev[expired] = 0.0
        if math.isfinite(self.fan_all_until) and self.fan_all_until <= now:
            self.fan_all_until = _INACTIVE
            self.fan_all_severity = 0.0
            self.faults_repaired += 1
            self._publish(ev.PlantFaultRepaired(time=now, kind="fan", domain=-1))
        if math.isfinite(self.block_all_until) and self.block_all_until <= now:
            self.block_all_until = _INACTIVE
            self.block_all_severity = 0.0
            self.faults_repaired += 1
            self._publish(ev.PlantFaultRepaired(time=now, kind="intake", domain=-1))
        if math.isfinite(self.crac_until) and self.crac_until <= now:
            self.crac_until = _INACTIVE
            self.crac_recovering = True
            self.faults_repaired += 1
            self._publish(ev.PlantFaultRepaired(time=now, kind="crac", domain=-1))
        if math.isfinite(self.heater_until) and self.heater_until <= now:
            self.heater_until = _INACTIVE
            self.ice_severity = 0.0  # crew clears the accreted ice too
            self.faults_repaired += 1
            self._publish(ev.PlantFaultRepaired(time=now, kind="heater", domain=-1))
        expired = np.isfinite(self.feed_until) & (self.feed_until <= now)
        for feed in np.flatnonzero(expired):
            self.faults_repaired += 1
            self.feed_restored_now.append(int(feed))
            self._publish(
                ev.PlantFaultRepaired(time=now, kind="feed", domain=int(feed))
            )
        self.feed_until[expired] = _INACTIVE

    def advance(self, now: float, dt_s: float, outside_c: float) -> None:
        """One frame of fault-schedule progress.

        Samples any newly reached storm days, activates due faults,
        expires due repairs, accretes intake ice when the heater is
        down in sub-zero air, and recomposes the per-pod airflow
        factors.  Feed transitions land in :attr:`feed_dropped_now` /
        :attr:`feed_restored_now` for the campaign to act on.
        """
        self.feed_dropped_now = []
        self.feed_restored_now = []
        self._sample_storms(now)

        feed_was_down = self.feed_until > now  # before new activations
        faults = self.plan.faults
        while self._next_fault < len(faults):
            fault = faults[self._next_fault]
            start = self._start_s + fault.start_s
            if start > now:
                break
            self._activate(fault, start, now)
            self._next_fault += 1
        while self._pending and self._pending[0][0] <= now:
            start, fault = self._pending.pop(0)
            self._activate(fault, start, now)
        self._expire(now)

        feed_down = self.feed_until > now
        for feed in np.flatnonzero(feed_down & ~feed_was_down):
            self.feed_dropped_now.append(int(feed))

        # Ice accretion on the unheated intake path.
        if self.heater_until > now and outside_c < 0.0:
            self.ice_severity = min(
                ICE_SEVERITY_CAP,
                self.ice_severity + ICE_ACCRETION_PER_H * dt_s / 3600.0,
            )

        self._compose_factors(now)

    def _compose_factors(self, now: float) -> None:
        fan = np.where(self.fan_until > now, self.fan_severity, 0.0)
        if self.fan_all_until > now:
            fan = np.maximum(fan, self.fan_all_severity)
        block = np.where(self.block_until > now, self.block_severity, 0.0)
        if self.block_all_until > now:
            block = np.maximum(block, self.block_all_severity)
        ua = (1.0 - FAN_UA_LOSS * fan) * (1.0 - BLOCKAGE_UA_LOSS * block)
        ach = (1.0 - FAN_ACH_LOSS * fan) * (1.0 - BLOCKAGE_ACH_LOSS * block)
        if self.ice_severity > 0.0:
            ua *= 1.0 - BLOCKAGE_UA_LOSS * self.ice_severity
            ach *= 1.0 - BLOCKAGE_ACH_LOSS * self.ice_severity
        if self.flap.any():
            ua = np.where(self.flap, ua * FLAP_UA_GAIN, ua)
            ach = np.where(self.flap, ach * FLAP_ACH_GAIN, ach)
        self.ua_factor = np.maximum(ua, AIRFLOW_FLOOR)
        self.ach_factor = np.maximum(ach, AIRFLOW_FLOOR)

    @property
    def degraded(self) -> bool:
        """True when any airflow factor differs from 1.0 (fast-path gate)."""
        return bool(
            (self.ua_factor != 1.0).any() or (self.ach_factor != 1.0).any()
        )

    # ------------------------------------------------------------------
    # CRAC consequences
    # ------------------------------------------------------------------
    def crac_down(self, now: float) -> bool:
        return self.crac_until > now

    def basement_temp(
        self, now: float, dt_s: float, prev_c: float, analytic_c: float,
        outside_c: float,
    ) -> float:
        """Machine-room temperature given the CRAC's state.

        Healthy: the analytic setpoint curve, untouched (the byte-
        identity fast path).  During an outage the room relaxes first-
        order toward ``outside + approach``; after repair it relaxes
        back and snaps onto the curve within 0.05 degC.
        """
        if self.crac_down(now):
            target = outside_c + CRAC_OUTAGE_APPROACH_C
        elif self.crac_recovering:
            target = analytic_c
        else:
            return analytic_c
        blend = 1.0 - math.exp(-dt_s / CRAC_TAU_S)
        temp = prev_c + blend * (target - prev_c)
        if self.crac_recovering and abs(temp - analytic_c) < 0.05:
            self.crac_recovering = False
            return analytic_c
        return temp

    # ------------------------------------------------------------------
    # Protective trips
    # ------------------------------------------------------------------
    def evaluate(
        self, now: float, dt_s: float, pod_intake_c: np.ndarray
    ) -> Tuple[List[Tuple[int, int, float]], List[int]]:
        """Run the trip state machine against this frame's pod intakes.

        Returns ``(shed, restore)``: ``shed`` lists ``(pod, stage,
        cumulative_fraction)`` for pods whose shedding should be
        (re)applied, ``restore`` lists pods whose trip-shed hosts are
        due to power back up.
        """
        pol = self.policy
        threshold = pol.trip_c if pol is not None else 45.0
        hot = pod_intake_c >= threshold
        if hot.any():
            self.excursion_minutes += float(hot.sum()) * dt_s / 60.0
        if pol is None:
            return [], []

        shed: List[Tuple[int, int, float]] = []
        restore: List[int] = []
        intake = pod_intake_c

        fire = (~self.tripped) & hot
        for pod in np.flatnonzero(fire):
            p = int(pod)
            self.tripped[p] = True
            if self.stage[p] == 0:
                self.stage[p] = 1
            self.stage_deadline[p] = now + pol.stage_hold_s
            self.restore_at[p] = np.inf
            self.trips += 1
            stage = int(self.stage[p])
            self._publish(
                ev.ThermalTrip(
                    time=now, pod=p, intake_c=float(intake[p]), stage=stage
                )
            )
            if pol.emergency_flap and not self.flap[p]:
                self.flap[p] = True
                self._publish(ev.EmergencyFlapOpened(time=now, pod=p))
            shed.append((p, stage, pol.stage_fraction(stage)))

        escalate = (
            self.tripped
            & hot
            & (self.stage_deadline <= now)
            & (self.stage < pol.max_stage)
        )
        for pod in np.flatnonzero(escalate):
            p = int(pod)
            self.stage[p] += 1
            self.stage_deadline[p] = now + pol.stage_hold_s
            stage = int(self.stage[p])
            self._publish(
                ev.ThermalTrip(
                    time=now, pod=p, intake_c=float(intake[p]), stage=stage
                )
            )
            shed.append((p, stage, pol.stage_fraction(stage)))

        clear = self.tripped & (intake <= pol.clear_c)
        for pod in np.flatnonzero(clear):
            p = int(pod)
            self.tripped[p] = False
            self.stage_deadline[p] = np.inf
            self.restore_at[p] = now + pol.cooldown_s
            self.trip_clears += 1
            self._publish(
                ev.ThermalTripCleared(time=now, pod=p, intake_c=float(intake[p]))
            )
            if self.flap[p]:
                self.flap[p] = False
                self._publish(ev.EmergencyFlapClosed(time=now, pod=p))

        due = (~self.tripped) & (self.stage > 0) & (self.restore_at <= now)
        for pod in np.flatnonzero(due):
            p = int(pod)
            self.stage[p] = 0
            self.restore_at[p] = np.inf
            restore.append(p)

        if clear.any() or due.any():
            self._compose_factors(now)  # flap changes feed back into airflow
        return shed, restore

    def incident_pods(self, now: float) -> np.ndarray:
        """Pods currently inside an incident (for loss attribution)."""
        active = (
            (self.fan_until > now)
            | (self.block_until > now)
            | self.tripped
            | (self.stage > 0)
        )
        if (
            self.fan_all_until > now
            or self.block_all_until > now
            or self.crac_until > now
            or self.heater_until > now
        ):
            active = np.ones(self.n_pods, dtype=np.bool_)
            return active
        feed_down = self.feed_until > now
        if feed_down.any():
            pod_feed = np.arange(self.n_pods) // FEED_GROUP_PODS
            active = active | feed_down[pod_feed]
        return active

    # ------------------------------------------------------------------
    # Snapshot plane
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        from repro.state.codec import encode_value, pack_bools, pack_floats, pack_ints

        return {
            "version": self.STATE_VERSION,
            "fan_until": pack_floats(self.fan_until.tolist()),
            "fan_severity": pack_floats(self.fan_severity.tolist()),
            "block_until": pack_floats(self.block_until.tolist()),
            "block_severity": pack_floats(self.block_severity.tolist()),
            "fan_all": [self.fan_all_until, self.fan_all_severity],
            "block_all": [self.block_all_until, self.block_all_severity],
            "feed_until": pack_floats(self.feed_until.tolist()),
            "crac": [self.crac_until, bool(self.crac_recovering)],
            "heater": [self.heater_until, self.ice_severity],
            "tripped": pack_bools(self.tripped.tolist()),
            "stage": pack_ints(self.stage.tolist()),
            "stage_deadline": pack_floats(self.stage_deadline.tolist()),
            "restore_at": pack_floats(self.restore_at.tolist()),
            "flap": pack_bools(self.flap.tolist()),
            "cursor": [self._next_fault, self._storm_day],
            "pending": [
                [start, encode_value(fault)] for start, fault in self._pending
            ],
            "census": [
                self.faults_injected,
                self.faults_repaired,
                self.trips,
                self.trip_clears,
                self.hosts_shed,
                self.hosts_restored,
                self.host_hours_shed,
                self.excursion_minutes,
                self.hosts_lost,
            ],
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        from repro.state.codec import (
            decode_value,
            unpack_bools,
            unpack_floats,
            unpack_ints,
        )
        from repro.state.protocol import check_version

        check_version("FleetPlant", state, self.STATE_VERSION)
        self.fan_until = np.array(unpack_floats(state["fan_until"]))
        self.fan_severity = np.array(unpack_floats(state["fan_severity"]))
        self.block_until = np.array(unpack_floats(state["block_until"]))
        self.block_severity = np.array(unpack_floats(state["block_severity"]))
        self.fan_all_until, self.fan_all_severity = state["fan_all"]
        self.block_all_until, self.block_all_severity = state["block_all"]
        self.feed_until = np.array(unpack_floats(state["feed_until"]))
        self.crac_until, self.crac_recovering = state["crac"]
        self.heater_until, self.ice_severity = state["heater"]
        self.tripped = np.array(unpack_bools(state["tripped"]), dtype=np.bool_)
        self.stage = np.array(unpack_ints(state["stage"]), dtype=np.int8)
        self.stage_deadline = np.array(unpack_floats(state["stage_deadline"]))
        self.restore_at = np.array(unpack_floats(state["restore_at"]))
        self.flap = np.array(unpack_bools(state["flap"]), dtype=np.bool_)
        self._next_fault, self._storm_day = (int(c) for c in state["cursor"])
        self._pending = [
            (float(start), decode_value(fault))
            for start, fault in state["pending"]
        ]
        (
            self.faults_injected,
            self.faults_repaired,
            self.trips,
            self.trip_clears,
            self.hosts_shed,
            self.hosts_restored,
            self.host_hours_shed,
            self.excursion_minutes,
            self.hosts_lost,
        ) = state["census"]
        self.feed_dropped_now = []
        self.feed_restored_now = []
        self._compose_factors(-math.inf)  # factors rebuilt on next advance
