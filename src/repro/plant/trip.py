"""Protective thermal trips: overtemp thresholds, staged shedding.

A :class:`ThermalTripPolicy` is the plant's last line of defence when
chaos (or just weather) pushes a pod's intake past safe limits.  The
state machine per pod:

- **armed** — intake below ``trip_c``; nothing happens.
- **tripped** — intake crossed ``trip_c``: publish a ``ThermalTrip``,
  open the emergency flap (if configured), and shed the first stage of
  load (power hosts down, lowest host index first).
- **escalate** — still above ``trip_c`` after ``stage_hold_s``: shed
  the next stage.  Stages are cumulative fractions of the pod's
  running hosts at evaluation time; the last stage is usually 1.0
  (everything off).
- **clear** — intake fell below ``clear_c`` (hysteresis gap): publish
  ``ThermalTripCleared``, close the flap, and arm a restore timer.
- **restore** — ``cooldown_s`` after clearing, shed hosts power back
  up (``LoadRestored``).

The policy object itself is a frozen value: all mutable state lives in
the plant controllers so it snapshots with the campaign.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.plant.faults import _parse_duration, _parse_float


@dataclass(frozen=True)
class ThermalTripPolicy:
    """Intake-overtemp protection with hysteresis and staged shedding."""

    trip_c: float = 45.0
    clear_c: float = 38.0
    shed_stages: Tuple[float, ...] = (0.5, 1.0)
    stage_hold_s: float = 1800.0
    cooldown_s: float = 3600.0
    emergency_flap: bool = True

    def __post_init__(self) -> None:
        if self.clear_c >= self.trip_c:
            raise ValueError(
                "clear_c must be below trip_c (hysteresis gap required)"
            )
        if not self.shed_stages:
            raise ValueError("at least one shed stage is required")
        previous = 0.0
        for stage in self.shed_stages:
            if not previous < stage <= 1.0:
                raise ValueError(
                    "shed_stages must be increasing fractions in (0, 1]"
                )
            previous = stage
        if self.stage_hold_s <= 0.0:
            raise ValueError("stage_hold_s must be positive")
        if self.cooldown_s < 0.0:
            raise ValueError("cooldown_s must be >= 0")

    @property
    def max_stage(self) -> int:
        return len(self.shed_stages)

    def stage_fraction(self, stage: int) -> float:
        """Cumulative shed fraction for 1-based ``stage`` (clamped)."""
        if stage <= 0:
            return 0.0
        return self.shed_stages[min(stage, self.max_stage) - 1]

    @classmethod
    def parse(cls, text: str) -> "ThermalTripPolicy":
        """Parse the CLI grammar, e.g.

        ``trip=45,clear=38,shed=0.5+1.0,hold=30m,cooldown=1h,flap=on``

        Every key is optional; omitted keys keep their defaults.  An
        empty string yields the default policy.
        """
        values = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"expected key=value in trip-policy clause {part!r}"
                )
            key, _, raw = part.partition("=")
            key = key.strip().lower()
            raw = raw.strip()
            if key == "trip":
                values["trip_c"] = _parse_float(raw, part)
            elif key == "clear":
                values["clear_c"] = _parse_float(raw, part)
            elif key == "shed":
                values["shed_stages"] = tuple(
                    _parse_float(s, part) for s in raw.split("+") if s
                )
            elif key == "hold":
                values["stage_hold_s"] = _parse_duration(raw, part)
            elif key == "cooldown":
                values["cooldown_s"] = _parse_duration(raw, part)
            elif key == "flap":
                if raw.lower() not in ("on", "off"):
                    raise ValueError(
                        f"flap must be on or off in clause {part!r}"
                    )
                values["emergency_flap"] = raw.lower() == "on"
            else:
                raise ValueError(
                    f"unknown trip-policy key {key!r} "
                    "(allowed: trip, clear, shed, hold, cooldown, flap)"
                )
        return cls(**values)
