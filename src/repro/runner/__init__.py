"""Campaign execution: parallel multi-seed runs, records, memoisation.

The runner sits above both :mod:`repro.core` and :mod:`repro.analysis`:
it imports the experiment driver and the sweep aggregates, and nothing
below imports it back.  That layering is what lets
``analysis.seedsweep`` stay import-cycle-free while re-exporting
:func:`sweep_seeds` from here for backwards compatibility.

- :mod:`repro.runner.records` -- picklable :class:`RunRecord` summaries,
  series digests, and config digests (the cache key),
- :mod:`repro.runner.local` -- run one campaign in this process,
- :mod:`repro.runner.pool` -- fan out over seeds with
  :class:`~concurrent.futures.ProcessPoolExecutor` and memoise records
  on disk.
"""

from repro.runner.local import run_recorded
from repro.runner.pool import (
    RunSpec,
    SweepResult,
    run_specs,
    sweep_records,
    sweep_seeds,
)
from repro.runner.records import (
    RECORD_SCHEMA,
    RunRecord,
    SeriesDigest,
    config_digest,
    digest_series,
    record_from_json_dict,
    record_from_results,
)

__all__ = [
    "RECORD_SCHEMA",
    "RunRecord",
    "RunSpec",
    "SeriesDigest",
    "SweepResult",
    "config_digest",
    "digest_series",
    "record_from_json_dict",
    "record_from_results",
    "run_recorded",
    "run_specs",
    "sweep_records",
    "sweep_seeds",
]
