"""Campaign execution: parallel multi-seed runs, records, memoisation.

The runner sits above both :mod:`repro.core` and :mod:`repro.analysis`:
it imports the experiment driver and the sweep aggregates, and nothing
below imports it back.  That layering is what lets
``analysis.seedsweep`` stay import-cycle-free while re-exporting
:func:`sweep_seeds` from here for backwards compatibility.

- :mod:`repro.runner.records` -- picklable :class:`RunRecord` summaries,
  series digests, config digests (the cache key), and the
  :class:`FailedRun` tombstones a degraded sweep reports,
- :mod:`repro.runner.local` -- run one campaign in this process,
- :mod:`repro.runner.policy` -- :class:`RetryPolicy`: attempts, seeded
  exponential backoff, per-attempt timeouts,
- :mod:`repro.runner.faults` -- deterministic fault injection
  (:class:`FaultPlan`) for testing the degradation paths,
- :mod:`repro.runner.pool` -- fan out over seeds with
  :class:`~concurrent.futures.ProcessPoolExecutor`, survive crashed and
  wedged workers, and memoise records on disk as they complete.
"""

from repro.runner.faults import (
    Fault,
    FaultAction,
    FaultPlan,
    InjectedFault,
)
from repro.runner.local import run_recorded
from repro.runner.policy import RetryPolicy, SpecTimeoutError
from repro.runner.pool import (
    RunSpec,
    SweepResult,
    WorkItem,
    run_specs,
    sweep_records,
    sweep_seeds,
)
from repro.runner.records import (
    RECORD_SCHEMA,
    FailedRun,
    RunRecord,
    SeriesDigest,
    config_digest,
    digest_series,
    record_from_json_dict,
    record_from_results,
)

__all__ = [
    "RECORD_SCHEMA",
    "FailedRun",
    "Fault",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "RunRecord",
    "RunSpec",
    "SeriesDigest",
    "SpecTimeoutError",
    "SweepResult",
    "WorkItem",
    "config_digest",
    "digest_series",
    "record_from_json_dict",
    "record_from_results",
    "run_recorded",
    "run_specs",
    "sweep_records",
    "sweep_seeds",
]
