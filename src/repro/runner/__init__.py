"""Campaign execution: parallel multi-seed runs, records, memoisation.

The runner sits above both :mod:`repro.core` and :mod:`repro.analysis`:
it imports the experiment driver and the sweep aggregates, and nothing
below imports it back.  That layering is what lets
``analysis.seedsweep`` stay import-cycle-free while re-exporting
:func:`sweep_seeds` from here for backwards compatibility.

- :mod:`repro.runner.records` -- picklable :class:`RunRecord` summaries,
  series digests, config digests (the cache key), and the
  :class:`FailedRun` tombstones a degraded sweep reports,
- :mod:`repro.runner.local` -- run one campaign in this process,
- :mod:`repro.runner.policy` -- :class:`RetryPolicy`: attempts, seeded
  exponential backoff, per-attempt timeouts,
- :mod:`repro.runner.faults` -- deterministic fault injection
  (:class:`FaultPlan`) for testing the degradation paths,
- :mod:`repro.runner.pool` -- fan out over seeds with
  :class:`~concurrent.futures.ProcessPoolExecutor`, survive crashed and
  wedged workers, and memoise records on disk as they complete.

Layering note: :mod:`~repro.runner.policy` and
:mod:`~repro.runner.faults` are dependency-free leaves that layers
*below* the runner also use (the monitoring plane reuses
:class:`RetryPolicy` for in-round SSH backoff), so this package must be
importable without dragging in the driver.  The driver-facing names
(``run_recorded``, the sweep machinery, the record types) are therefore
loaded lazily on first attribute access (PEP 562); ``from repro.runner
import sweep_records`` works exactly as before.
"""

from typing import TYPE_CHECKING

from repro.runner.faults import (
    Fault,
    FaultAction,
    FaultPlan,
    InjectedFault,
)
from repro.runner.policy import RetryPolicy, SpecTimeoutError

if TYPE_CHECKING:  # pragma: no cover - static-analysis imports only
    from repro.runner.local import run_recorded
    from repro.runner.pool import (
        RUN_RECORD_CODEC,
        RunSpec,
        SweepResult,
        TaskCodec,
        WorkItem,
        run_specs,
        run_tasks,
        sweep_records,
        sweep_seeds,
    )
    from repro.runner.records import (
        RECORD_SCHEMA,
        FailedRun,
        RunRecord,
        SeriesDigest,
        config_digest,
        digest_series,
        record_from_json_dict,
        record_from_results,
    )

#: Lazily-resolved exports -> the submodule that defines them.
_LAZY = {
    "run_recorded": "repro.runner.local",
    "RUN_RECORD_CODEC": "repro.runner.pool",
    "RunSpec": "repro.runner.pool",
    "SweepResult": "repro.runner.pool",
    "TaskCodec": "repro.runner.pool",
    "WorkItem": "repro.runner.pool",
    "run_specs": "repro.runner.pool",
    "run_tasks": "repro.runner.pool",
    "sweep_records": "repro.runner.pool",
    "sweep_seeds": "repro.runner.pool",
    "RECORD_SCHEMA": "repro.runner.records",
    "FailedRun": "repro.runner.records",
    "RunRecord": "repro.runner.records",
    "SeriesDigest": "repro.runner.records",
    "config_digest": "repro.runner.records",
    "digest_series": "repro.runner.records",
    "record_from_json_dict": "repro.runner.records",
    "record_from_results": "repro.runner.records",
}


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target), name)
    globals()[name] = value  # cache: __getattr__ fires once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))

__all__ = [
    "RECORD_SCHEMA",
    "RUN_RECORD_CODEC",
    "FailedRun",
    "Fault",
    "FaultAction",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "RunRecord",
    "RunSpec",
    "SeriesDigest",
    "SpecTimeoutError",
    "SweepResult",
    "TaskCodec",
    "WorkItem",
    "config_digest",
    "digest_series",
    "record_from_json_dict",
    "record_from_results",
    "run_recorded",
    "run_specs",
    "run_tasks",
    "sweep_records",
    "sweep_seeds",
]
