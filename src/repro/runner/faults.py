"""Deterministic fault injection: a test seam for the sweep runner.

The simulation injects PSU deaths and latched sensors into the modelled
fleet; this module does the same to the *runner itself*, so the retry,
timeout, and degradation paths in :func:`repro.runner.pool.run_specs`
can be exercised on schedule instead of by luck.

A :class:`FaultPlan` maps ``(spec seed, attempt number)`` to one
:class:`Fault`, and :meth:`FaultPlan.wrap` turns the ordinary worker
callable into a :class:`FaultyWorker` that consults the plan before
running.  Everything here is a frozen dataclass holding plain values
and top-level functions, so a wrapped worker pickles cleanly into a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Actions
-------
``RAISE``
    The attempt raises :class:`InjectedFault` (a crashed run).
``DELAY``
    The attempt sleeps ``delay_s`` first, then runs normally (a slow
    worker -- pair with a generous timeout to test near-misses).
``STALL``
    The attempt sleeps ``delay_s`` and then raises (a wedged worker that
    eventually errors; the usual victim for timeout tests, because the
    abandoned attempt never runs a full campaign).
``DIE``
    The worker process hard-exits (``os._exit``), breaking the pool --
    the runner must rebuild the executor and re-drive every in-flight
    spec.  In a serial (in-process) sweep a hard exit would kill the
    sweep itself, so the action degrades to ``RAISE`` there.
"""

from __future__ import annotations

import dataclasses
import enum
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Optional, Tuple


class InjectedFault(RuntimeError):
    """The failure a scheduled ``RAISE``/``STALL``/serial-``DIE`` raises."""


class FaultAction(enum.Enum):
    """What a scheduled fault does to its attempt."""

    RAISE = "raise"
    DELAY = "delay"
    STALL = "stall"
    DIE = "die"


@dataclass(frozen=True)
class Fault:
    """One scheduled misbehaviour: spec ``seed``, ``attempt``, action.

    ``after_checkpoints`` defers a ``DIE`` into the run itself: instead
    of striking before the campaign starts, the worker runs normally and
    dies right after flushing that many checkpoints -- the seam the
    preemption-tolerant resume path is tested through.
    """

    seed: int
    attempt: int
    action: FaultAction
    delay_s: float = 0.0
    message: str = "injected fault"
    after_checkpoints: int = 0

    def __post_init__(self) -> None:
        if self.attempt < 1:
            raise ValueError("attempts are counted from 1")
        if self.delay_s < 0:
            raise ValueError("fault delay cannot be negative")
        if self.after_checkpoints < 0:
            raise ValueError("after_checkpoints cannot be negative")
        if self.after_checkpoints and self.action is not FaultAction.DIE:
            raise ValueError("after_checkpoints only defers DIE faults")


@dataclass(frozen=True)
class FaultPlan:
    """The full injection schedule for one sweep."""

    faults: Tuple[Fault, ...] = ()

    @classmethod
    def of(cls, *faults: Fault) -> "FaultPlan":
        """A plan from positional faults."""
        return cls(faults=tuple(faults))

    def lookup(self, seed: int, attempt: int) -> Optional[Fault]:
        """The fault scheduled for this (seed, attempt), if any."""
        for fault in self.faults:
            if fault.seed == seed and fault.attempt == attempt:
                return fault
        return None

    def wrap(self, fn: Callable) -> "FaultyWorker":
        """The injection seam: ``fn`` with this plan consulted first."""
        return FaultyWorker(plan=self, fn=fn)


@dataclass(frozen=True)
class FaultyWorker:
    """A picklable worker wrapper that executes the fault plan.

    ``fn`` must be a top-level callable taking one work item with
    ``spec`` (exposing ``seed``) and ``attempt`` attributes -- the shape
    :func:`repro.runner.local.execute_attempt` expects.
    """

    plan: FaultPlan
    fn: Callable

    def __call__(self, item):
        fault = self.plan.lookup(item.spec.seed, item.attempt)
        if fault is not None:
            if fault.after_checkpoints > 0:
                # Deferred DIE: run normally, die mid-campaign after the
                # n-th checkpoint flush (execute_attempt pulls the
                # trigger through its on-checkpoint hook).
                return self.fn(
                    dataclasses.replace(
                        item, die_after_checkpoints=fault.after_checkpoints
                    )
                )
            if fault.action is FaultAction.DELAY:
                time.sleep(fault.delay_s)
            elif fault.action is FaultAction.RAISE:
                raise InjectedFault(fault.message)
            elif fault.action is FaultAction.STALL:
                time.sleep(fault.delay_s)
                raise InjectedFault(fault.message)
            elif fault.action is FaultAction.DIE:
                if multiprocessing.parent_process() is None:
                    # Serial sweeps run in the main process, where a hard
                    # exit would kill the sweep instead of one worker.
                    raise InjectedFault(f"{fault.message} (serial DIE)")
                os._exit(13)
        return self.fn(item)
