"""Running one campaign in this process.

This module is the runner's only doorway into the experiment driver:
the old function-local ``from repro import Experiment`` inside
``analysis.seedsweep`` hid an import cycle (analysis is imported while
``repro.core`` is still initialising).  The runner package sits *above*
both core and analysis, so the import below is an ordinary module-level
one, and :func:`run_recorded` is a top-level -- hence picklable --
worker for :class:`concurrent.futures.ProcessPoolExecutor`.

With ``telemetry=True`` the campaign is built through
``CampaignBuilder.with_telemetry``: the engine traces every event
callback, the collector times every round, the whole worker run is
wrapped in a ``runner.run`` span, and the resulting
:class:`~repro.telemetry.hub.TelemetrySnapshot` rides inside the
returned record.  The default stays telemetry-free and byte-identical
to the historical output.
"""

from __future__ import annotations

import datetime as _dt
import time
from typing import Optional

from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.runner.records import RunRecord, record_from_results
from repro.telemetry import Stopwatch, Telemetry


def run_recorded(
    config: ExperimentConfig,
    until: Optional[_dt.datetime] = None,
    telemetry: bool = False,
) -> RunRecord:
    """Run one campaign and distil it into a :class:`RunRecord`."""
    builder = CampaignBuilder(config)
    hub: Optional[Telemetry] = None
    if telemetry:
        hub = Telemetry()
        builder.with_telemetry(hub)
    with Stopwatch() as watch:
        if hub is not None:
            with hub.span("runner.run"):
                results = builder.build().run(until=until)
        else:
            results = builder.build().run(until=until)
    return record_from_results(
        config.seed,
        results,
        until=until,
        elapsed_s=watch.elapsed_s,
    )


def execute_attempt(item) -> RunRecord:
    """Sweep worker: honour the retry backoff, then run the spec.

    ``item`` is a :class:`repro.runner.pool.WorkItem`; it is duck-typed
    here (``spec``, ``attempt``, ``backoff_s``) to keep the layering
    one-way -- pool imports local, never the reverse.  The backoff sleep
    happens in the worker so the scheduler never blocks: a retried spec
    waits out its delay in its own slot while other completions keep
    flowing.  Top-level, hence picklable, and byte-deterministic: the
    record depends only on (config, seed, horizon), never on which
    attempt finally succeeded.
    """
    if item.backoff_s > 0:
        time.sleep(item.backoff_s)
    spec = item.spec
    return run_recorded(spec.config, until=spec.until, telemetry=spec.telemetry)
