"""Running one campaign in this process.

This module is the runner's only doorway into the experiment driver:
the old function-local ``from repro import Experiment`` inside
``analysis.seedsweep`` hid an import cycle (analysis is imported while
``repro.core`` is still initialising).  The runner package sits *above*
both core and analysis, so the import below is an ordinary module-level
one, and :func:`run_recorded` is a top-level -- hence picklable --
worker for :class:`concurrent.futures.ProcessPoolExecutor`.
"""

from __future__ import annotations

import datetime as _dt
import time as _time
from typing import Optional

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.runner.records import RunRecord, record_from_results


def run_recorded(
    config: ExperimentConfig, until: Optional[_dt.datetime] = None
) -> RunRecord:
    """Run one campaign and distil it into a :class:`RunRecord`."""
    started = _time.perf_counter()
    results = Experiment(config).run(until=until)
    return record_from_results(
        config.seed,
        results,
        until=until,
        elapsed_s=_time.perf_counter() - started,
    )
