"""Running one campaign in this process.

This module is the runner's only doorway into the experiment driver:
the old function-local ``from repro import Experiment`` inside
``analysis.seedsweep`` hid an import cycle (analysis is imported while
``repro.core`` is still initialising).  The runner package sits *above*
both core and analysis, so the import below is an ordinary module-level
one, and :func:`run_recorded` is a top-level -- hence picklable --
worker for :class:`concurrent.futures.ProcessPoolExecutor`.

With ``telemetry=True`` the campaign is built through
``CampaignBuilder.with_telemetry``: the engine traces every event
callback, the collector times every round, the whole worker run is
wrapped in a ``runner.run`` span, and the resulting
:class:`~repro.telemetry.hub.TelemetrySnapshot` rides inside the
returned record.  The default stays telemetry-free and byte-identical
to the historical output.
"""

from __future__ import annotations

import datetime as _dt
from typing import Optional

from repro.core.builder import CampaignBuilder
from repro.core.config import ExperimentConfig
from repro.runner.records import RunRecord, record_from_results
from repro.telemetry import Stopwatch, Telemetry


def run_recorded(
    config: ExperimentConfig,
    until: Optional[_dt.datetime] = None,
    telemetry: bool = False,
) -> RunRecord:
    """Run one campaign and distil it into a :class:`RunRecord`."""
    builder = CampaignBuilder(config)
    hub: Optional[Telemetry] = None
    if telemetry:
        hub = Telemetry()
        builder.with_telemetry(hub)
    with Stopwatch() as watch:
        if hub is not None:
            with hub.span("runner.run"):
                results = builder.build().run(until=until)
        else:
            results = builder.build().run(until=until)
    return record_from_results(
        config.seed,
        results,
        until=until,
        elapsed_s=watch.elapsed_s,
    )
