"""Running one campaign in this process.

This module is the runner's only doorway into the experiment driver:
the old function-local ``from repro import Experiment`` inside
``analysis.seedsweep`` hid an import cycle (analysis is imported while
``repro.core`` is still initialising).  The runner package sits *above*
both core and analysis, so the import below is an ordinary module-level
one, and :func:`run_recorded` is a top-level -- hence picklable --
worker for :class:`concurrent.futures.ProcessPoolExecutor`.

With ``telemetry=True`` the campaign is built through
``CampaignBuilder.with_telemetry``: the engine traces every event
callback, the collector times every round, the whole worker run is
wrapped in a ``runner.run`` span, and the resulting
:class:`~repro.telemetry.hub.TelemetrySnapshot` rides inside the
returned record.  The default stays telemetry-free and byte-identical
to the historical output.

Checkpointing rides in the same doorway: ``checkpoint_every`` /
``checkpoint_dir`` make the campaign flush crash-safe snapshots at a
simulated-seconds cadence, and ``resume_from`` restores a prior flush
and continues it instead of starting from scratch.  Because the engine
fires an identical event sequence whether or not the horizon is
segmented, a resumed run's record is byte-identical to an
uninterrupted one -- resume only changes how much work is redone.
"""

from __future__ import annotations

import datetime as _dt
import multiprocessing
import os
import time
from typing import Callable, Optional

from repro.core.builder import Campaign, CampaignBuilder
from repro.runner.faults import InjectedFault
from repro.core.config import ExperimentConfig
from repro.runner.records import RunRecord, record_from_results
from repro.state.protocol import StateError
from repro.telemetry import Stopwatch, Telemetry


def run_recorded(
    config: ExperimentConfig,
    until: Optional[_dt.datetime] = None,
    telemetry: bool = False,
    checkpoint_every: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    on_checkpoint: Optional[Callable] = None,
    resume_from: Optional[str] = None,
) -> RunRecord:
    """Run one campaign and distil it into a :class:`RunRecord`.

    With ``resume_from`` pointing at a checkpoint file, the campaign is
    restored and continued from its cut point; a missing, corrupt, or
    config-mismatched checkpoint falls back to a from-scratch run (the
    reader quarantines damaged files), so resume is an optimisation,
    never a new failure mode.
    """
    with Stopwatch() as watch:
        results = None
        if resume_from is not None:
            try:
                campaign, results = Campaign.resume(
                    resume_from,
                    until=until,
                    checkpoint_every=checkpoint_every,
                    checkpoint_dir=checkpoint_dir,
                    on_checkpoint=on_checkpoint,
                )
                hub = campaign.telemetry
                if hub is not None:
                    # Parity with the from-scratch path below: the
                    # worker-level span fires exactly once either way.
                    with hub.span("runner.run"):
                        pass
            except StateError:
                results = None
        if results is None:
            builder = CampaignBuilder(config)
            hub = None
            if telemetry:
                hub = Telemetry()
                builder.with_telemetry(hub)
            campaign = builder.build()
            if hub is not None:
                with hub.span("runner.run"):
                    results = campaign.run(
                        until=until,
                        checkpoint_every=checkpoint_every,
                        checkpoint_dir=checkpoint_dir,
                        on_checkpoint=on_checkpoint,
                    )
            else:
                results = campaign.run(
                    until=until,
                    checkpoint_every=checkpoint_every,
                    checkpoint_dir=checkpoint_dir,
                    on_checkpoint=on_checkpoint,
                )
    return record_from_results(
        config.seed,
        results,
        until=until,
        elapsed_s=watch.elapsed_s,
    )


def execute_attempt(item) -> RunRecord:
    """Sweep worker: honour the retry backoff, then run the spec.

    ``item`` is a :class:`repro.runner.pool.WorkItem`; it is duck-typed
    here (``spec``, ``attempt``, ``backoff_s``, and the optional
    checkpoint fields) to keep the layering one-way -- pool imports
    local, never the reverse.  The backoff sleep happens in the worker
    so the scheduler never blocks: a retried spec waits out its delay in
    its own slot while other completions keep flowing.  Top-level, hence
    picklable, and byte-deterministic: the record depends only on
    (config, seed, horizon), never on which attempt finally succeeded
    or where that attempt resumed from.

    ``die_after_checkpoints`` is the deferred-``DIE`` fault seam: the
    worker hard-exits right after the n-th checkpoint flush (raising
    :class:`~repro.runner.faults.InjectedFault` in a serial sweep, where
    a hard exit would kill the sweep itself).
    """
    if item.backoff_s > 0:
        time.sleep(item.backoff_s)
    spec = item.spec

    on_checkpoint: Optional[Callable] = None
    die_after = getattr(item, "die_after_checkpoints", 0)
    if die_after:
        flushed = [0]

        def on_checkpoint(path, checkpoint) -> None:
            flushed[0] += 1
            if flushed[0] >= die_after:
                if multiprocessing.parent_process() is None:
                    raise InjectedFault(
                        f"injected death after checkpoint {flushed[0]}"
                    )
                os._exit(13)

    return run_recorded(
        spec.config,
        until=spec.until,
        telemetry=spec.telemetry,
        checkpoint_every=getattr(item, "checkpoint_every_s", None),
        checkpoint_dir=getattr(item, "checkpoint_dir", None),
        on_checkpoint=on_checkpoint,
        resume_from=getattr(item, "resume_from", None),
    )
