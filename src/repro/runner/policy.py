"""Retry policies: how a sweep survives a misbehaving worker.

The paper's campaign is a story about faults that did *not* stop the
measurement -- a dead PSU, a latched sensor, a switch that died
mid-winter.  :class:`RetryPolicy` holds the runner to the same standard:
instead of one crashed worker aborting a whole multi-seed sweep, each
:class:`~repro.runner.pool.RunSpec` gets a bounded number of attempts,
an exponential backoff between them, and (in pooled mode) a wall-clock
budget per attempt.

Determinism matters here as everywhere else in the reproduction: the
backoff jitter is seeded from ``(spec seed, attempt)``, so two sweeps
that hit the same faults sleep the same delays.  The campaign itself is
a pure function of (config, seed, horizon), so a retried run returns a
byte-identical :class:`~repro.runner.records.RunRecord` -- retrying is
always safe.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


class SpecTimeoutError(TimeoutError):
    """An attempt exceeded its :attr:`RetryPolicy.timeout_s` budget.

    Raised *about* a worker rather than inside it: the parent abandons
    the attempt and either retries the spec or records a
    :class:`~repro.runner.records.FailedRun`.  The abandoned worker
    cannot be preempted; it drains on its own and its late result is
    discarded.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt budget, backoff schedule, and per-attempt timeout.

    Attributes
    ----------
    max_attempts:
        Total tries per spec (1 = the historical run-once behaviour).
    backoff_base_s / backoff_factor / backoff_max_s:
        Delay before attempt ``n+1`` grows as
        ``base * factor**(n-1)``, capped at ``backoff_max_s``.
    jitter_fraction:
        Each delay is perturbed by up to this fraction either way, with
        a deterministic RNG seeded from ``(seed, attempt)`` -- identical
        sweeps back off identically.
    timeout_s:
        Wall-clock budget per attempt, measured from submission.  Only
        enforced when the sweep runs on a process pool (``jobs >= 2``);
        a serial in-process run cannot be preempted.
    """

    max_attempts: int = 1
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter_fraction: float = 0.1
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt per spec")
        if self.backoff_base_s < 0:
            raise ValueError("backoff base cannot be negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff factor must be >= 1")
        if self.backoff_max_s < 0:
            raise ValueError("backoff cap cannot be negative")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter fraction must be within [0, 1]")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout must be positive when set")

    @property
    def retries(self) -> int:
        """Extra tries beyond the first attempt."""
        return self.max_attempts - 1

    def backoff_s(self, attempt: int, seed: int) -> float:
        """Delay before the retry that follows failed attempt ``attempt``.

        Deterministic: the jitter RNG is seeded from ``(seed, attempt)``
        alone, so replaying a sweep replays its exact backoff schedule.
        """
        if attempt < 1:
            raise ValueError("attempts are counted from 1")
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if base == 0.0 or self.jitter_fraction == 0.0:
            return base
        rng = random.Random(f"repro.retry:{seed}:{attempt}")
        swing = base * self.jitter_fraction
        return max(0.0, base + (2.0 * rng.random() - 1.0) * swing)
