"""Process-parallel multi-seed campaigns with on-disk memoisation.

The seed sweep used to be a serial loop buried in the analysis layer.
This module turns it into a small execution service:

- :class:`RunSpec` -- one (config, horizon) unit of work, picklable;
- :func:`run_specs` -- execute many specs, serially (``jobs=1``) or on a
  :class:`~concurrent.futures.ProcessPoolExecutor`, with an optional
  on-disk cache keyed by ``(config_digest, seed, until)``;
- :func:`sweep_seeds` / :func:`sweep_records` -- the sweep API, now
  living here so neither core nor analysis imports the runner.

Determinism: each campaign is a pure function of (config, seed, until),
so the executor only changes *where* a run happens, never what it
returns -- serial and parallel sweeps produce byte-identical
:class:`~repro.runner.records.RunRecord` sequences, and a cache hit is
indistinguishable from a fresh run (minus the wall-clock field).  The
guarantee extends to telemetry-enabled sweeps: every record's metric
and span *counts* are deterministic (only per-span wall times differ),
so :meth:`SweepResult.merged_telemetry` is identical at any job count.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.seedsweep import SweepSummary
from repro.core.config import ExperimentConfig
from repro.runner.local import run_recorded
from repro.runner.records import (
    RECORD_SCHEMA,
    RunRecord,
    config_digest,
    record_from_json_dict,
)
from repro.telemetry import Stopwatch, TelemetrySnapshot, merge_snapshots


@dataclass(frozen=True)
class RunSpec:
    """One unit of sweep work: a campaign config plus its horizon.

    ``telemetry`` opts the run into metrics/span collection; it is part
    of the cache key, so a telemetry-free cache entry is never served to
    a telemetry-bearing request (or vice versa).
    """

    config: ExperimentConfig
    until: Optional[_dt.datetime] = None
    label: str = ""
    telemetry: bool = False

    @property
    def seed(self) -> int:
        """The spec's master seed."""
        return self.config.seed

    def cache_key(self) -> str:
        """Filename-safe memoisation key: config digest, seed, horizon."""
        digest = config_digest(self.config)
        horizon = self.until.strftime("%Y%m%dT%H%M%S") if self.until else "full"
        suffix = "-telemetry" if self.telemetry else ""
        return f"{digest[:16]}-{self.config.seed}-{horizon}{suffix}"


@dataclass(frozen=True)
class SweepResult:
    """Everything a sweep execution reports."""

    records: Tuple[RunRecord, ...]
    cache_hits: int
    cache_misses: int
    elapsed_s: float

    @property
    def summary(self) -> SweepSummary:
        """The census aggregate the serial sweep always produced."""
        return SweepSummary(
            outcomes=tuple(record.to_outcome() for record in self.records)
        )

    def merged_telemetry(self) -> Optional[TelemetrySnapshot]:
        """Fleet-wide telemetry, folded across every worker's record.

        Counters, histogram buckets, span fire counts, and span wall
        time add; gauges keep the maximum.  Because each record's counts
        are a pure function of its (config, seed, horizon), the merge is
        identical whether the sweep ran serially or on N workers.
        Returns ``None`` when no record carries telemetry.
        """
        return merge_snapshots(
            record.telemetry
            for record in self.records
            if record.telemetry is not None
        )


def _execute_spec(spec: RunSpec) -> RunRecord:
    """Pool worker: run one spec (top-level, so it pickles)."""
    return run_recorded(spec.config, until=spec.until, telemetry=spec.telemetry)


# ----------------------------------------------------------------------
# Cache plumbing
# ----------------------------------------------------------------------
def _cache_path(cache_dir: str, spec: RunSpec) -> str:
    return os.path.join(cache_dir, f"{spec.cache_key()}.json")


def _load_cached(cache_dir: str, spec: RunSpec) -> Optional[RunRecord]:
    path = _cache_path(cache_dir, spec)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, ValueError):
        return None
    try:
        record = record_from_json_dict(data)
    except (KeyError, TypeError, ValueError):
        return None
    if record.schema != RECORD_SCHEMA:
        return None
    if record.seed != spec.seed or record.config_digest != config_digest(spec.config):
        return None
    return record


def _store_cached(cache_dir: str, spec: RunSpec, record: RunRecord) -> None:
    os.makedirs(cache_dir, exist_ok=True)
    path = _cache_path(cache_dir, spec)
    fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(record.to_json_dict(), fh, sort_keys=True)
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> SweepResult:
    """Execute every spec and return the records in spec order.

    ``jobs=1`` runs serially in this process; ``jobs>1`` fans out over a
    process pool.  With ``cache_dir`` set, previously-computed records
    are loaded instead of re-run, and fresh records are stored.
    """
    if not specs:
        raise ValueError("need at least one run spec")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    with Stopwatch() as watch:
        records: Dict[int, RunRecord] = {}
        hits = 0
        if cache_dir is not None:
            for index, spec in enumerate(specs):
                cached = _load_cached(cache_dir, spec)
                if cached is not None:
                    records[index] = cached
                    hits += 1

        missing = [
            (index, spec) for index, spec in enumerate(specs) if index not in records
        ]
        if missing:
            if jobs == 1 or len(missing) == 1:
                fresh = [_execute_spec(spec) for _, spec in missing]
            else:
                workers = min(jobs, len(missing))
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    fresh = list(pool.map(_execute_spec, [spec for _, spec in missing]))
            for (index, spec), record in zip(missing, fresh):
                records[index] = record
                if cache_dir is not None:
                    _store_cached(cache_dir, spec, record)

        ordered = tuple(records[index] for index in range(len(specs)))
    return SweepResult(
        records=ordered,
        cache_hits=hits,
        cache_misses=len(missing),
        elapsed_s=watch.elapsed_s,
    )


def _specs_for_seeds(
    seeds: Sequence[int],
    until: Optional[_dt.datetime],
    config_factory: Optional[Callable[[int], ExperimentConfig]],
    telemetry: bool = False,
) -> List[RunSpec]:
    if not seeds:
        raise ValueError("need at least one seed")
    factory = config_factory if config_factory is not None else (
        lambda seed: ExperimentConfig(seed=seed)
    )
    return [
        RunSpec(
            config=factory(seed),
            until=until,
            label=f"seed {seed}",
            telemetry=telemetry,
        )
        for seed in seeds
    ]


def sweep_records(
    seeds: Sequence[int],
    until: Optional[_dt.datetime] = None,
    config_factory: Optional[Callable[[int], ExperimentConfig]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    telemetry: bool = False,
) -> SweepResult:
    """Run the campaign once per seed; full execution report.

    ``telemetry=True`` collects metrics and spans in every worker;
    :meth:`SweepResult.merged_telemetry` folds them into one view.
    """
    return run_specs(
        _specs_for_seeds(seeds, until, config_factory, telemetry=telemetry),
        jobs=jobs,
        cache_dir=cache_dir,
    )


def sweep_seeds(
    seeds: Sequence[int],
    until: Optional[_dt.datetime] = None,
    config_factory: Optional[Callable[[int], ExperimentConfig]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> SweepSummary:
    """Run the campaign once per seed and aggregate the censuses.

    The drop-in successor of the serial loop that used to live in
    :mod:`repro.analysis.seedsweep`; ``jobs`` and ``cache_dir`` are the
    new knobs, and the default arguments reproduce the old behaviour
    exactly.
    """
    return sweep_records(
        seeds, until=until, config_factory=config_factory, jobs=jobs, cache_dir=cache_dir
    ).summary
