"""Fault-tolerant process-parallel campaigns with on-disk memoisation.

The seed sweep used to be a serial loop buried in the analysis layer.
This module turns it into a small execution service:

- :class:`RunSpec` -- one (config, horizon) unit of work, picklable;
- :func:`run_tasks` -- the *generic* execution plane: any picklable
  spec with a ``cache_key()``/``label``/``seed`` surface plus a
  top-level worker and a :class:`TaskCodec` for its cache entries gets
  the full fault-tolerance machinery (as-completed scheduling, retries,
  timeouts, pool-breakage repair, incremental caching, progress
  events).  The multi-site atlas sweep (:mod:`repro.atlas`) rides this
  plane with site-scoring tasks instead of campaigns;
- :func:`run_specs` -- execute many campaign specs, serially
  (``jobs=1``) or on a :class:`~concurrent.futures.ProcessPoolExecutor`,
  with an optional on-disk cache keyed by ``(config_digest, seed,
  until)``; a thin campaign-flavoured wrapper over :func:`run_tasks`;
- :func:`sweep_seeds` / :func:`sweep_records` -- the sweep API, now
  living here so neither core nor analysis imports the runner.

The paper's campaign survived dead PSUs and a mid-winter switch death
without stopping the measurement; the runner holds itself to the same
standard.  Scheduling is as-completed rather than a blocking ``map``:

- every finished record is written to the cache the moment it lands,
  so a later crash never discards completed work;
- a :class:`~repro.runner.policy.RetryPolicy` grants each spec a
  bounded number of attempts with deterministic seeded backoff and an
  optional per-attempt timeout (pooled mode only -- a serial run cannot
  be preempted);
- a worker that hard-exits breaks the pool; the runner rebuilds the
  executor and re-drives every in-flight spec as a counted attempt;
- with ``strict=False`` (the default) a spec that exhausts its attempts
  becomes a :class:`~repro.runner.records.FailedRun` in
  :attr:`SweepResult.failures` instead of poisoning the sweep;
  ``strict=True`` restores the historical fail-fast behaviour.

Determinism: each campaign is a pure function of (config, seed, until),
so retries, executors, and caches only change *where and how often* a
run happens, never what it returns -- serial, parallel, and
crash-retried sweeps produce byte-identical
:class:`~repro.runner.records.RunRecord` sequences, and a cache hit is
indistinguishable from a fresh run (minus the wall-clock field).  The
guarantee extends to telemetry-enabled sweeps: every record's metric
and span *counts* are deterministic (only per-span wall times differ),
so :meth:`SweepResult.merged_telemetry` is identical at any job count.

Cache lifecycle: entries are written atomically (tmp file + rename) on
run completion, store failures are non-fatal (the run already
succeeded, and the tmp file never outlives the attempt), and an entry
that fails JSON/schema/digest validation on load is quarantined to a
``.corrupt`` sibling and recomputed -- counted as a cache eviction in
the sweep's runner telemetry rather than re-parsed forever.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import shutil
import tempfile
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.seedsweep import SweepSummary
from repro.core.config import ExperimentConfig
from repro.runner.faults import FaultPlan
from repro.runner.local import execute_attempt
from repro.runner.policy import RetryPolicy, SpecTimeoutError
from repro.runner.records import (
    RECORD_SCHEMA,
    FailedRun,
    RunRecord,
    config_digest,
    record_from_json_dict,
)
from repro.sim.clock import DAY
from repro.state.checkpoint import read_checkpoint
from repro.telemetry import (
    Stopwatch,
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
)

#: Default simulated-seconds checkpoint cadence for resumable sweeps.
DEFAULT_CHECKPOINT_EVERY_S = 14 * DAY


def _horizon_token(until: Optional[_dt.datetime]) -> str:
    """Filename-safe horizon component of the cache key.

    Naive horizons keep the historical layout.  Aware horizons are
    normalised to UTC and marked with a ``Z``, so two horizons naming
    the same instant through different offsets share one entry, while
    equal wall times in different zones -- which used to collide -- do
    not.
    """
    if until is None:
        return "full"
    if until.tzinfo is not None:
        return until.astimezone(_dt.timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    return until.strftime("%Y%m%dT%H%M%S")


@dataclass(frozen=True)
class RunSpec:
    """One unit of sweep work: a campaign config plus its horizon.

    ``telemetry`` opts the run into metrics/span collection; it is part
    of the cache key, so a telemetry-free cache entry is never served to
    a telemetry-bearing request (or vice versa).
    """

    config: ExperimentConfig
    until: Optional[_dt.datetime] = None
    label: str = ""
    telemetry: bool = False

    def __post_init__(self) -> None:
        if self.until is not None:
            aware_until = self.until.tzinfo is not None
            aware_config = self.config.end_date.tzinfo is not None
            if aware_until != aware_config:
                raise ValueError(
                    "mixed naive/aware datetimes: until is "
                    f"{'aware' if aware_until else 'naive'} but the config's "
                    f"campaign dates are {'aware' if aware_config else 'naive'}; "
                    "make both naive or both tz-aware"
                )

    @property
    def seed(self) -> int:
        """The spec's master seed."""
        return self.config.seed

    def cache_key(self) -> str:
        """Filename-safe memoisation key: config digest, seed, horizon."""
        digest = config_digest(self.config)
        suffix = "-telemetry" if self.telemetry else ""
        return f"{digest[:16]}-{self.config.seed}-{_horizon_token(self.until)}{suffix}"


@dataclass(frozen=True)
class WorkItem:
    """One scheduled attempt at a spec (picklable pool payload).

    ``spec`` is typed loosely: campaign sweeps carry a
    :class:`RunSpec`, but any :func:`run_tasks` family's spec (e.g. an
    atlas site task) rides in the same slot -- the scheduler only
    touches the ``cache_key()``/``label``/``seed`` surface.

    The checkpoint fields are populated only by resumable sweeps:
    ``checkpoint_dir``/``checkpoint_every_s`` make the attempt flush
    snapshots as it runs, ``resume_from`` points a retry at the previous
    attempt's last flush, and ``die_after_checkpoints`` is the deferred
    fault seam (see :class:`~repro.runner.faults.Fault`).
    """

    index: int
    spec: Any
    attempt: int = 1
    backoff_s: float = 0.0
    checkpoint_dir: Optional[str] = None
    checkpoint_every_s: Optional[float] = None
    resume_from: Optional[str] = None
    die_after_checkpoints: int = 0


@dataclass(frozen=True)
class SweepResult:
    """Everything a sweep execution reports.

    ``failures`` is empty unless the sweep ran with ``strict=False``
    and some spec exhausted its attempts; ``retries``/``timeouts``
    count attempt-level events (a timed-out attempt that later succeeds
    on retry shows up in both).  ``runner_telemetry`` carries the same
    tallies through the telemetry plane as ``runner.*`` counters.

    ``records`` holds :class:`RunRecord` instances for campaign sweeps;
    a generic :func:`run_tasks` family returns whatever its worker
    produces (the census-flavoured :attr:`summary` and
    :meth:`merged_telemetry` views only make sense for campaigns).
    """

    records: Tuple[Any, ...]
    cache_hits: int
    cache_misses: int
    elapsed_s: float
    failures: Tuple[FailedRun, ...] = ()
    retries: int = 0
    timeouts: int = 0
    cache_evictions: int = 0
    checkpoint_resumes: int = 0
    runner_telemetry: Optional[TelemetrySnapshot] = None

    @property
    def ok(self) -> bool:
        """Whether every spec produced a record."""
        return not self.failures

    @property
    def summary(self) -> SweepSummary:
        """The census aggregate the serial sweep always produced."""
        if not self.records:
            raise ValueError(
                "no records survived the sweep; see SweepResult.failures"
            )
        return SweepSummary(
            outcomes=tuple(record.to_outcome() for record in self.records)
        )

    def merged_telemetry(self) -> Optional[TelemetrySnapshot]:
        """Fleet-wide telemetry, folded across every worker's record.

        Counters, histogram buckets, span fire counts, and span wall
        time add; gauges keep the maximum.  Because each record's counts
        are a pure function of its (config, seed, horizon), the merge is
        identical whether the sweep ran serially or on N workers.
        Returns ``None`` when no record carries telemetry.
        """
        return merge_snapshots(
            record.telemetry
            for record in self.records
            if record.telemetry is not None
        )


# ----------------------------------------------------------------------
# Cache plumbing
# ----------------------------------------------------------------------
def _always_valid(_spec: Any, _record: Any) -> bool:
    return True


@dataclass(frozen=True)
class TaskCodec:
    """How a task family's records cross the on-disk cache boundary.

    ``encode`` turns a finished record into a JSON-serialisable dict;
    ``decode`` rebuilds it (raising ``KeyError``/``TypeError``/
    ``ValueError`` on malformed data, which quarantines the entry);
    ``validate`` gets ``(spec, record)`` after a successful decode and
    vetoes entries that parse but belong to someone else (schema drift,
    seed or digest mismatch) -- a veto also quarantines.
    """

    encode: Callable[[Any], Dict[str, Any]]
    decode: Callable[[Dict[str, Any]], Any]
    validate: Callable[[Any, Any], bool] = _always_valid


def _validate_run_record(spec: "RunSpec", record: RunRecord) -> bool:
    return (
        record.schema == RECORD_SCHEMA
        and record.seed == spec.seed
        and record.config_digest == config_digest(spec.config)
    )


#: Cache codec for campaign :class:`RunRecord` entries -- the historical
#: on-disk layout, byte for byte.
RUN_RECORD_CODEC = TaskCodec(
    encode=lambda record: record.to_json_dict(),
    decode=record_from_json_dict,
    validate=_validate_run_record,
)


def _cache_path(cache_dir: str, spec: Any) -> str:
    return os.path.join(cache_dir, f"{spec.cache_key()}.json")


def _quarantine(path: str) -> None:
    """Move a poisoned entry aside so it is never re-parsed."""
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass


def _load_cached(
    cache_dir: str, spec: Any, codec: TaskCodec
) -> Tuple[Optional[Any], bool]:
    """``(record, evicted)`` for this spec's cache entry.

    An entry that exists but fails JSON decoding or the codec's
    validation is quarantined (renamed to ``.corrupt``) and reported as
    evicted; a merely unreadable file (I/O error) is left in place.
    """
    path = _cache_path(cache_dir, spec)
    if not os.path.exists(path):
        return None, False
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
        record = codec.decode(data)
    except OSError:
        return None, False
    except (KeyError, TypeError, ValueError):
        _quarantine(path)
        return None, True
    if not codec.validate(spec, record):
        _quarantine(path)
        return None, True
    return record, False


def _store_cached(
    cache_dir: str, spec: Any, record: Any, codec: TaskCodec
) -> bool:
    """Best-effort atomic store; returns whether the entry was written.

    A store failure is non-fatal -- the run already succeeded, so a
    full disk or an unserialisable record must not abort the sweep --
    and the tmp file never outlives the call, whatever goes wrong
    between ``mkstemp`` and the final rename.
    """
    path = _cache_path(cache_dir, spec)
    tmp_path: Optional[str] = None
    try:
        os.makedirs(cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(codec.encode(record), fh, sort_keys=True)
        os.replace(tmp_path, path)
        tmp_path = None
        return True
    except (OSError, TypeError, ValueError):
        return False
    finally:
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


def _latest_checkpoint(checkpoint_dir: Optional[str]) -> Optional[str]:
    """The newest *valid* checkpoint in a spec's flush directory.

    Candidates are tried newest-first (the cadence filenames sort by
    simulated time); :func:`read_checkpoint` quarantines anything
    corrupt, so a damaged newest flush degrades to the one before it,
    and a spec with no usable flush restarts from scratch.
    """
    if checkpoint_dir is None or not os.path.isdir(checkpoint_dir):
        return None
    names = sorted(
        (
            name
            for name in os.listdir(checkpoint_dir)
            if name.startswith("checkpoint_") and name.endswith(".json")
        ),
        reverse=True,
    )
    for name in names:
        path = os.path.join(checkpoint_dir, name)
        if read_checkpoint(path) is not None:
            return path
    return None


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------
class _SweepState:
    """Mutable bookkeeping shared by the serial and pooled drivers."""

    def __init__(
        self,
        policy: RetryPolicy,
        strict: bool,
        cache_dir: Optional[str],
        progress: Optional[Callable[[Dict[str, object]], None]] = None,
        codec: TaskCodec = RUN_RECORD_CODEC,
    ) -> None:
        self.policy = policy
        self.strict = strict
        self.cache_dir = cache_dir
        self.progress = progress
        self.codec = codec
        self.records: Dict[int, Any] = {}
        self.failures: List[FailedRun] = []
        self.retries = 0
        self.timeouts = 0
        self.store_failures = 0
        self.checkpoint_resumes = 0

    def notify(self, kind: str, spec: Any, **extra: object) -> None:
        """Best-effort progress event; a broken sink never kills a sweep."""
        if self.progress is None:
            return
        event: Dict[str, object] = {
            "kind": kind,
            "label": spec.label or f"seed {spec.seed}",
        }
        event.update(extra)
        try:
            self.progress(event)
        except Exception:
            pass

    def success(self, item: WorkItem, record: Any) -> None:
        """Record a finished attempt; cache it immediately."""
        self.records[item.index] = record
        if self.cache_dir is not None:
            if not _store_cached(self.cache_dir, item.spec, record, self.codec):
                self.store_failures += 1
        if item.checkpoint_dir is not None:
            # The record is cached; the spec's mid-flight snapshots are
            # spent fuel.
            shutil.rmtree(item.checkpoint_dir, ignore_errors=True)
        self.notify("completed", item.spec, attempt=item.attempt)

    def failure(
        self, item: WorkItem, exc: BaseException, timed_out: bool = False
    ) -> Optional[WorkItem]:
        """Handle a failed attempt: the retry item, or ``None`` if spent.

        In strict mode an exhausted spec re-raises the original error
        (the historical fail-fast behaviour); otherwise it becomes a
        :class:`FailedRun` and the sweep keeps going.
        """
        if timed_out:
            self.timeouts += 1
        if item.attempt < self.policy.max_attempts:
            self.retries += 1
            resume_from = _latest_checkpoint(item.checkpoint_dir)
            if resume_from is not None:
                self.checkpoint_resumes += 1
            self.notify(
                "retried", item.spec, attempt=item.attempt, error=str(exc)
            )
            return WorkItem(
                index=item.index,
                spec=item.spec,
                attempt=item.attempt + 1,
                backoff_s=self.policy.backoff_s(item.attempt, item.spec.seed),
                checkpoint_dir=item.checkpoint_dir,
                checkpoint_every_s=item.checkpoint_every_s,
                resume_from=resume_from,
            )
        if self.strict:
            raise exc
        self.failures.append(
            FailedRun(
                spec=item.spec,
                attempts=item.attempt,
                error_type=type(exc).__name__,
                error_message=str(exc),
                timed_out=timed_out,
            )
        )
        self.notify("failed", item.spec, attempt=item.attempt, error=str(exc))
        return None


def _retry_or_fail(
    state: _SweepState,
    ready: Deque[WorkItem],
    item: WorkItem,
    exc: BaseException,
    timed_out: bool = False,
) -> None:
    retry = state.failure(item, exc, timed_out=timed_out)
    if retry is not None:
        ready.append(retry)


def _run_serial(
    items: Sequence[WorkItem], worker: Callable, state: _SweepState
) -> None:
    """In-process driver: retries inline, spec order preserved."""
    queue: Deque[WorkItem] = deque(items)
    while queue:
        item = queue.popleft()
        try:
            record = worker(item)
        except Exception as exc:
            retry = state.failure(item, exc)
            if retry is not None:
                # Re-drive the same spec before moving on, mirroring the
                # per-spec ordering of the historical serial loop.
                queue.appendleft(retry)
        else:
            state.success(item, record)


def _nearest_deadline_s(
    in_flight: Dict[Future, Tuple[WorkItem, Optional[float]]],
) -> Optional[float]:
    deadlines = [d for _, d in in_flight.values() if d is not None]
    if not deadlines:
        return None
    return max(0.0, min(deadlines) - time.monotonic())


def _run_pooled(
    items: Sequence[WorkItem],
    worker: Callable,
    state: _SweepState,
    workers: int,
) -> None:
    """As-completed pool driver: timeouts, retries, pool-breakage repair.

    ``ready`` holds attempts waiting for a slot; ``in_flight`` maps each
    live future to its work item and (optional) wall-clock deadline.  An
    attempt past its deadline is abandoned -- the future cannot be
    preempted, so it keeps its slot (tracked in ``abandoned``) until the
    worker drains, and any late result is discarded.
    """
    ready: Deque[WorkItem] = deque(items)
    in_flight: Dict[Future, Tuple[WorkItem, Optional[float]]] = {}
    abandoned: Set[Future] = set()
    timeout_s = state.policy.timeout_s
    executor = ProcessPoolExecutor(max_workers=workers)
    try:
        while ready or in_flight:
            abandoned = {f for f in abandoned if not f.done()}
            while ready and len(in_flight) + len(abandoned) < workers:
                item = ready.popleft()
                future = executor.submit(worker, item)
                deadline = None
                if timeout_s is not None:
                    # The budget starts at submission; the worker-side
                    # backoff sleep is part of the schedule, not the run.
                    deadline = time.monotonic() + item.backoff_s + timeout_s
                in_flight[future] = (item, deadline)
            if not in_flight:
                # Every slot is wedged on an abandoned attempt; wait for
                # one to drain before scheduling more work.
                wait(set(abandoned), timeout=0.05)
                continue

            done, _ = wait(
                set(in_flight),
                timeout=_nearest_deadline_s(in_flight),
                return_when=FIRST_COMPLETED,
            )
            broken: Optional[BrokenProcessPool] = None
            for future in done:
                item, _deadline = in_flight.pop(future)
                try:
                    record = future.result()
                except BrokenProcessPool as exc:
                    broken = exc
                    _retry_or_fail(state, ready, item, exc)
                except Exception as exc:
                    _retry_or_fail(state, ready, item, exc)
                else:
                    state.success(item, record)
            if broken is not None:
                # A worker hard-exited: the pool and every in-flight
                # future died with it.  Count an attempt for each victim
                # and rebuild the executor.
                for item, _deadline in in_flight.values():
                    _retry_or_fail(state, ready, item, broken)
                in_flight.clear()
                abandoned.clear()
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(max_workers=workers)
                continue

            now = time.monotonic()
            for future, (item, deadline) in list(in_flight.items()):
                if deadline is None or now < deadline or future.done():
                    continue
                del in_flight[future]
                if not future.cancel():
                    abandoned.add(future)
                _retry_or_fail(
                    state,
                    ready,
                    item,
                    SpecTimeoutError(
                        f"{item.spec.label or f'seed {item.spec.seed}'} "
                        f"attempt {item.attempt} exceeded "
                        f"{timeout_s:.3g} s"
                    ),
                    timed_out=True,
                )
    finally:
        executor.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def run_tasks(
    specs: Sequence[Any],
    worker: Callable[[WorkItem], Any],
    codec: TaskCodec = RUN_RECORD_CODEC,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    strict: bool = False,
    resumable: bool = False,
    checkpoint_every_s: Optional[float] = None,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> SweepResult:
    """Execute every task spec and return surviving records in spec order.

    The generic execution plane behind :func:`run_specs`: any task
    family gets the fault-tolerant scheduling machinery by providing

    - picklable ``specs``, each exposing ``cache_key() -> str`` (the
      memoisation key), ``label`` (progress/report naming), and ``seed``
      (retry-backoff jitter and :class:`FailedRun` reporting);
    - a top-level (hence picklable) ``worker`` taking one
      :class:`WorkItem` and returning that family's record; it must
      honour ``item.backoff_s`` (sleep before working) and may use the
      checkpoint fields or ignore them;
    - a :class:`TaskCodec` describing how records round-trip through the
      on-disk cache (only consulted when ``cache_dir`` is set).

    ``jobs=1`` runs serially in this process; ``jobs>1`` fans out over a
    process pool.  With ``cache_dir`` set, previously-computed records
    are loaded instead of re-run, and every fresh record is stored the
    moment it completes, so a later fault never discards finished work.

    ``policy`` grants each spec retries, backoff, and (pooled only) a
    per-attempt timeout; without one, each spec gets a single attempt.
    With ``strict=False`` a spec that exhausts its attempts lands in
    :attr:`SweepResult.failures` while its siblings finish;
    ``strict=True`` re-raises the spec's final error immediately.

    ``resumable=True`` threads per-spec checkpoint directories
    (``cache_dir/checkpoints/<cache_key>/``, cadence
    ``checkpoint_every_s``, default
    :data:`DEFAULT_CHECKPOINT_EVERY_S`) into each :class:`WorkItem`;
    workers that flush checkpoints (campaigns) then resume retried
    attempts from the last valid flush, and workers that don't (atlas
    site scoring is seconds of work) simply ignore the fields -- their
    resumability comes from the incremental record cache itself.

    ``progress`` is an optional per-spec event sink (e.g.
    :meth:`repro.telemetry.progress.SweepProgress.sink`) called with one
    dict per lifecycle event -- ``kind`` is ``"cached"``,
    ``"completed"``, ``"retried"``, or ``"failed"``, ``label`` names the
    spec, and retries/failures carry ``attempt`` and ``error``.  Sink
    exceptions are swallowed: progress never changes sweep results.
    """
    if not specs:
        raise ValueError("need at least one run spec")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if resumable and cache_dir is None:
        raise ValueError("resumable sweeps need a cache_dir for checkpoints")
    if checkpoint_every_s is not None and checkpoint_every_s <= 0:
        raise ValueError("checkpoint_every_s must be positive")
    every = (
        checkpoint_every_s
        if checkpoint_every_s is not None
        else DEFAULT_CHECKPOINT_EVERY_S
    )
    policy = policy if policy is not None else RetryPolicy()
    with Stopwatch() as watch:
        hits = 0
        evictions = 0
        state = _SweepState(
            policy=policy,
            strict=strict,
            cache_dir=cache_dir,
            progress=progress,
            codec=codec,
        )
        if cache_dir is not None:
            for index, spec in enumerate(specs):
                cached, evicted = _load_cached(cache_dir, spec, codec)
                evictions += int(evicted)
                if cached is not None:
                    state.records[index] = cached
                    hits += 1
                    state.notify("cached", spec)

        missing = [
            WorkItem(
                index=index,
                spec=spec,
                checkpoint_dir=(
                    os.path.join(cache_dir, "checkpoints", spec.cache_key())
                    if resumable
                    else None
                ),
                checkpoint_every_s=every if resumable else None,
            )
            for index, spec in enumerate(specs)
            if index not in state.records
        ]
        if missing:
            pooled = jobs > 1 and (
                len(missing) > 1 or policy.timeout_s is not None
            )
            if pooled:
                # With timeouts on, abandoned attempts keep their slots
                # until the wedged worker drains, so retries may need
                # more slots than there are specs.
                workers = (
                    jobs
                    if policy.timeout_s is not None
                    else min(jobs, len(missing))
                )
                _run_pooled(missing, worker, state, workers=workers)
            else:
                _run_serial(missing, worker, state)

        ordered = tuple(state.records[index] for index in sorted(state.records))

    hub = Telemetry()
    hub.counter("runner.cache_hits").inc(hits)
    hub.counter("runner.cache_misses").inc(len(missing))
    hub.counter("runner.cache_evictions").inc(evictions)
    hub.counter("runner.cache_store_failures").inc(state.store_failures)
    hub.counter("runner.retries").inc(state.retries)
    hub.counter("runner.timeouts").inc(state.timeouts)
    hub.counter("runner.failures").inc(len(state.failures))
    hub.counter("runner.checkpoint_resumes").inc(state.checkpoint_resumes)
    return SweepResult(
        records=ordered,
        cache_hits=hits,
        cache_misses=len(missing),
        elapsed_s=watch.elapsed_s,
        failures=tuple(state.failures),
        retries=state.retries,
        timeouts=state.timeouts,
        cache_evictions=evictions,
        checkpoint_resumes=state.checkpoint_resumes,
        runner_telemetry=hub.snapshot(),
    )


def run_specs(
    specs: Sequence[RunSpec],
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    policy: Optional[RetryPolicy] = None,
    strict: bool = False,
    faults: Optional[FaultPlan] = None,
    resumable: bool = False,
    checkpoint_every_s: Optional[float] = None,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> SweepResult:
    """Execute every campaign spec; records come back in spec order.

    The campaign-flavoured entry point: :func:`run_tasks` with
    :func:`~repro.runner.local.execute_attempt` as the worker and
    :data:`RUN_RECORD_CODEC` for the cache, so the on-disk layout, the
    byte-identity guarantees, and every fault-tolerance knob are exactly
    as documented there.  ``faults`` is the deterministic test seam
    (:class:`~repro.runner.faults.FaultPlan`) that injects crashes,
    delays, and worker deaths on schedule; it wraps the campaign worker
    and is the one knob :func:`run_tasks` does not take directly.

    ``resumable=True`` additionally buys campaigns mid-run resume: every
    attempt flushes checkpoints at the ``checkpoint_every_s`` simulated-
    seconds cadence (default :data:`DEFAULT_CHECKPOINT_EVERY_S`), and a
    retried attempt resumes from the dead attempt's last valid flush
    instead of simulated ``t=0``.  Resume changes how much work a retry
    redoes, never what it returns: the records stay byte-identical.
    """
    worker = execute_attempt if faults is None else faults.wrap(execute_attempt)
    return run_tasks(
        specs,
        worker,
        codec=RUN_RECORD_CODEC,
        jobs=jobs,
        cache_dir=cache_dir,
        policy=policy,
        strict=strict,
        resumable=resumable,
        checkpoint_every_s=checkpoint_every_s,
        progress=progress,
    )


def _specs_for_seeds(
    seeds: Sequence[int],
    until: Optional[_dt.datetime],
    config_factory: Optional[Callable[[int], ExperimentConfig]],
    telemetry: bool = False,
) -> List[RunSpec]:
    if not seeds:
        raise ValueError("need at least one seed")
    factory = config_factory if config_factory is not None else (
        lambda seed: ExperimentConfig(seed=seed)
    )
    return [
        RunSpec(
            config=factory(seed),
            until=until,
            label=f"seed {seed}",
            telemetry=telemetry,
        )
        for seed in seeds
    ]


def sweep_records(
    seeds: Sequence[int],
    until: Optional[_dt.datetime] = None,
    config_factory: Optional[Callable[[int], ExperimentConfig]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    telemetry: bool = False,
    policy: Optional[RetryPolicy] = None,
    strict: bool = False,
    faults: Optional[FaultPlan] = None,
    resumable: bool = False,
    checkpoint_every_s: Optional[float] = None,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> SweepResult:
    """Run the campaign once per seed; full execution report.

    ``telemetry=True`` collects metrics and spans in every worker;
    :meth:`SweepResult.merged_telemetry` folds them into one view.
    ``policy``/``strict``/``faults``/``resumable``/``progress`` are
    passed through to :func:`run_specs` (see there for the
    fault-tolerance, checkpoint-resume, and progress-sink semantics).
    """
    return run_specs(
        _specs_for_seeds(seeds, until, config_factory, telemetry=telemetry),
        jobs=jobs,
        cache_dir=cache_dir,
        policy=policy,
        strict=strict,
        faults=faults,
        resumable=resumable,
        checkpoint_every_s=checkpoint_every_s,
        progress=progress,
    )


def sweep_seeds(
    seeds: Sequence[int],
    until: Optional[_dt.datetime] = None,
    config_factory: Optional[Callable[[int], ExperimentConfig]] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
) -> SweepSummary:
    """Run the campaign once per seed and aggregate the censuses.

    The drop-in successor of the serial loop that used to live in
    :mod:`repro.analysis.seedsweep`; ``jobs`` and ``cache_dir`` are the
    new knobs, and the default arguments reproduce the old behaviour
    exactly -- including fail-fast on a crashed run (a summary-only API
    has nowhere to report partial results; use :func:`sweep_records`
    with ``strict=False`` for graceful degradation).
    """
    return sweep_records(
        seeds,
        until=until,
        config_factory=config_factory,
        jobs=jobs,
        cache_dir=cache_dir,
        strict=True,
    ).summary
