"""Picklable run records: what a campaign leaves behind when it crosses
a process boundary.

A finished :class:`~repro.core.results.ExperimentResults` holds live
object graphs (the fleet, the simulator, every archiver generator) that
neither pickle nor belong in a results cache.  :class:`RunRecord`
distils the run into plain values: the headline census, fault and bus
tallies, the paper-snapshot numbers, and a :class:`SeriesDigest` per
instrument series (sha256 over the raw float64 bytes, so byte-identity
between two runs is checkable without shipping the series itself).

Two supporting pieces:

- :func:`config_digest` canonicalises an :class:`ExperimentConfig` into
  stable JSON and hashes it -- the cache key that keeps a memoised
  record from being served to a different campaign;
- JSON round-tripping (:meth:`RunRecord.to_json_dict` /
  :func:`record_from_json_dict`) for the on-disk cache.

``elapsed_s`` is wall-clock bookkeeping: it is excluded from equality
and from :meth:`RunRecord.canonical_json`, so records from a serial and
a parallel run of the same campaign compare byte-identical.  The same
split applies to the optional telemetry snapshot a record carries: span
fire counts, counters, gauges, and histograms are deterministic and
compare; per-span wall times do not (see
:class:`repro.telemetry.hub.TelemetrySnapshot`).  Records produced with
telemetry off omit the key entirely, staying byte-identical to the
pre-telemetry layout.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.analysis.seedsweep import SeedOutcome
from repro.core.config import ExperimentConfig
from repro.telemetry.hub import TelemetrySnapshot, snapshot_from_json_dict

#: Bump when the record layout changes; stale cache files are evicted.
#: 2: the event taxonomy grew SensorMuteObserved (vanished-chip readings
#: that used to count under SensorAnomalyObserved split out), shifting
#: ``event_counts`` in otherwise-identical runs.
RECORD_SCHEMA = 2


@dataclass(frozen=True)
class FailedRun:
    """The tombstone of a spec that exhausted its attempts.

    When a sweep runs with ``strict=False`` (the ``--keep-going``
    semantics), a spec whose every attempt crashed or timed out does not
    poison the sweep: its surviving siblings still return records, and
    this entry lands in ``SweepResult.failures`` instead.  ``spec`` is
    the :class:`~repro.runner.pool.RunSpec` itself (typed loosely here
    because records sits *below* pool in the layering).
    """

    spec: Any
    attempts: int
    error_type: str
    error_message: str
    timed_out: bool = False

    @property
    def seed(self) -> int:
        """The failed spec's master seed."""
        return self.spec.seed

    def describe(self) -> str:
        """One report line: who failed, how often, and why."""
        label = self.spec.label or f"seed {self.spec.seed}"
        note = ", timed out" if self.timed_out else ""
        return (
            f"{label}: {self.error_type} after {self.attempts} "
            f"attempt(s){note}: {self.error_message}"
        )


# ----------------------------------------------------------------------
# Config digests
# ----------------------------------------------------------------------
def _canonicalise(value: Any) -> Any:
    """Reduce a config value to JSON-stable plain data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, _dt.datetime):
        return value.isoformat()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonicalise(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {str(k): _canonicalise(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonicalise(v) for v in value]
    raise TypeError(f"cannot canonicalise {type(value).__name__} for digesting")


def config_digest(config: ExperimentConfig) -> str:
    """Stable sha256 hex digest of a campaign configuration."""
    canonical = json.dumps(_canonicalise(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Series digests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeriesDigest:
    """Fingerprint + range summary of one instrument series.

    The range stats are ``None`` for an empty series -- not NaN, which
    would break the equality that the serial-vs-parallel determinism
    guarantee rests on (``nan != nan``).
    """

    name: str
    points: int
    sha256: str
    minimum: Optional[float]
    mean: Optional[float]
    maximum: Optional[float]


def digest_series(name: str, series) -> SeriesDigest:
    """Digest a :class:`~repro.analysis.series.TimeSeries`."""
    if series.empty:
        return SeriesDigest(
            name=name,
            points=0,
            sha256=hashlib.sha256(b"").hexdigest(),
            minimum=None,
            mean=None,
            maximum=None,
        )
    times = series.times.astype(float)
    values = series.values.astype(float)
    payload = times.tobytes() + values.tobytes()
    return SeriesDigest(
        name=name,
        points=len(series),
        sha256=hashlib.sha256(payload).hexdigest(),
        minimum=float(values.min()),
        mean=float(values.mean()),
        maximum=float(values.max()),
    )


# ----------------------------------------------------------------------
# The record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRecord:
    """The portable summary of one seeded campaign run."""

    schema: int
    seed: int
    config_digest: str
    until: str  # ISO datetime of the truncation horizon, "" for full runs
    end_time: float
    hosts_installed: int
    hosts_failed: int
    failed_host_ids: Tuple[int, ...]
    failure_events: int
    wrong_hashes: int
    wrong_hash_hosts: Tuple[int, ...]
    total_runs: int
    sensor_latches: int
    fault_counts: Tuple[Tuple[str, int], ...]
    event_counts: Tuple[Tuple[str, int], ...]
    snapshot_failure_rate_percent: Optional[float]
    snapshot_wrong_hashes: Optional[int]
    series: Tuple[SeriesDigest, ...]
    elapsed_s: float = field(compare=False, default=0.0)
    #: Telemetry snapshot for runs executed with telemetry on; ``None``
    #: (and absent from the JSON forms) otherwise, which keeps
    #: telemetry-free records byte-identical to the pre-telemetry layout.
    #: Snapshot equality already excludes its wall-time fields, so this
    #: field participates in record comparison.
    telemetry: Optional[TelemetrySnapshot] = None

    def to_outcome(self) -> SeedOutcome:
        """The sweep-facing census view of this record."""
        return SeedOutcome(
            seed=self.seed,
            hosts_installed=self.hosts_installed,
            hosts_failed=self.hosts_failed,
            wrong_hashes=self.wrong_hashes,
            total_runs=self.total_runs,
            sensor_latches=self.sensor_latches,
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        """Plain-data form, elapsed included (for the cache file)."""
        data = dataclasses.asdict(self)
        data["series"] = [dataclasses.asdict(s) for s in self.series]
        if self.telemetry is None:
            data.pop("telemetry")
        else:
            data["telemetry"] = self.telemetry.to_json_dict()
        return data

    def canonical_json(self) -> str:
        """Deterministic JSON, wall-clock bookkeeping excluded.

        Excluded means ``elapsed_s`` and, inside a telemetry snapshot,
        the per-span wall times -- everything that survives is a pure
        function of (config, seed, horizon).
        """
        data = self.to_json_dict()
        data.pop("elapsed_s")
        if "telemetry" in data:
            data["telemetry"].pop("span_wall_s", None)
        return json.dumps(data, sort_keys=True, separators=(",", ":"))


def record_from_json_dict(data: Dict[str, Any]) -> RunRecord:
    """Rebuild a record from :meth:`RunRecord.to_json_dict` output."""
    payload = dict(data)
    payload["failed_host_ids"] = tuple(payload["failed_host_ids"])
    payload["wrong_hash_hosts"] = tuple(payload["wrong_hash_hosts"])
    payload["fault_counts"] = tuple(
        (str(k), int(v)) for k, v in payload["fault_counts"]
    )
    payload["event_counts"] = tuple(
        (str(k), int(v)) for k, v in payload["event_counts"]
    )
    payload["series"] = tuple(SeriesDigest(**s) for s in payload["series"])
    telemetry = payload.get("telemetry")
    payload["telemetry"] = (
        snapshot_from_json_dict(telemetry) if telemetry is not None else None
    )
    return RunRecord(**payload)


def record_from_results(
    seed: int,
    results,
    until: Optional[_dt.datetime] = None,
    elapsed_s: float = 0.0,
) -> RunRecord:
    """Distil a finished run into a :class:`RunRecord`.

    The census semantics match
    :func:`repro.analysis.seedsweep.outcome_from_results` exactly, so a
    pooled sweep aggregates to the same summary the serial sweep always
    produced.
    """
    census = results.overall_census()
    latches = sum(1 for h in results.fleet.hosts.values() if h.sensor.ever_latched)
    fault_tally: Dict[str, int] = {}
    for event in results.fault_log.events:
        fault_tally[event.kind.name] = fault_tally.get(event.kind.name, 0) + 1
    snapshot = results.snapshot
    telemetry = getattr(results, "telemetry", None)
    series = tuple(
        digest_series(name, getattr(results, method)())
        for name, method in (
            ("outside_temperature", "outside_temperature"),
            ("outside_humidity", "outside_humidity"),
            ("inside_temperature_raw", "inside_temperature_raw"),
            ("inside_humidity_raw", "inside_humidity_raw"),
        )
    )
    return RunRecord(
        schema=RECORD_SCHEMA,
        seed=seed,
        config_digest=config_digest(results.config),
        until=until.isoformat() if until is not None else "",
        end_time=float(results.end_time),
        hosts_installed=census.hosts_total,
        hosts_failed=census.hosts_failed,
        failed_host_ids=tuple(
            sorted({e.host_id for e in census.failure_events if e.host_id})
        ),
        failure_events=len(census.failure_events),
        wrong_hashes=results.ledger.total_wrong_hashes,
        wrong_hash_hosts=tuple(results.ledger.hosts_with_wrong_hashes()),
        total_runs=results.ledger.total_runs,
        sensor_latches=latches,
        fault_counts=tuple(sorted(fault_tally.items())),
        event_counts=tuple(sorted(results.event_counts().items())),
        snapshot_failure_rate_percent=(
            snapshot.failure_rate_percent if snapshot is not None else None
        ),
        snapshot_wrong_hashes=snapshot.wrong_hashes if snapshot is not None else None,
        series=series,
        elapsed_s=elapsed_s,
        telemetry=telemetry.snapshot() if telemetry is not None else None,
    )
