"""Discrete-event simulation substrate.

Everything in the reproduction runs on this small, dependency-free engine:

- :class:`repro.sim.clock.SimClock` maps simulated seconds to calendar time,
- :class:`repro.sim.rng.RngStreams` hands out named, independent random
  streams derived from one master seed,
- :class:`repro.sim.engine.Simulator` is the event loop,
- :class:`repro.sim.process.Process` wraps Python generators as simulated
  processes that ``yield`` delays,
- :class:`repro.sim.events.EventBus` is the typed campaign event bus
  subsystems publish structured events on.
"""

from repro.sim.clock import DAY, HOUR, MINUTE, SECOND, WEEK, SimClock
from repro.sim.engine import EventHandle, Simulator
from repro.sim.events import Event, EventBus, EventRecorder
from repro.sim.process import Process, wait_until
from repro.sim.rng import RngStreams

__all__ = [
    "SECOND",
    "MINUTE",
    "HOUR",
    "DAY",
    "WEEK",
    "SimClock",
    "Simulator",
    "EventHandle",
    "Event",
    "EventBus",
    "EventRecorder",
    "Process",
    "wait_until",
    "RngStreams",
]
