"""Simulated calendar time.

The experiment ran against real dates (prototype started Friday,
February 12th 2010; host #15 failed Saturday, March 7th at 04:40), so the
simulator needs more than a bare float: it needs a clock that converts
between simulated seconds and calendar timestamps.

All simulated time is a float number of seconds since the clock epoch.
The epoch defaults to midnight on the day the paper's prototype test began.
"""

from __future__ import annotations

import datetime as _dt
from typing import Iterator

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY

#: Midnight at the start of the paper's prototype weekend (Friday).
PAPER_EPOCH = _dt.datetime(2010, 2, 12, 0, 0, 0)


class SimClock:
    """Convert between simulated seconds and calendar datetimes.

    Parameters
    ----------
    epoch:
        Calendar time corresponding to simulated time ``0.0``.  Defaults to
        :data:`PAPER_EPOCH` (2010-02-12 00:00).
    """

    def __init__(self, epoch: _dt.datetime = PAPER_EPOCH) -> None:
        self.epoch = epoch

    def __repr__(self) -> str:
        return f"SimClock(epoch={self.epoch.isoformat()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, SimClock) and other.epoch == self.epoch

    def __hash__(self) -> int:
        return hash(("SimClock", self.epoch))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_datetime(self, sim_seconds: float) -> _dt.datetime:
        """Calendar timestamp at ``sim_seconds`` after the epoch."""
        return self.epoch + _dt.timedelta(seconds=sim_seconds)

    def to_seconds(self, when: _dt.datetime) -> float:
        """Simulated seconds at calendar instant ``when``.

        Negative if ``when`` precedes the epoch; the engine rejects
        scheduling into the past, but conversion itself is total.
        """
        return (when - self.epoch).total_seconds()

    def at(self, *args: int, **kwargs: int) -> float:
        """Simulated seconds for ``datetime(*args, **kwargs)``.

        ``clock.at(2010, 3, 7, 4, 40)`` reads like the timestamps the paper
        reports ("Saturday, March 7th at 04:40").
        """
        return self.to_seconds(_dt.datetime(*args, **kwargs))

    # ------------------------------------------------------------------
    # Calendar decomposition (used by the climate's diurnal cycles)
    # ------------------------------------------------------------------
    def hour_of_day(self, sim_seconds: float) -> float:
        """Fractional hour of the local day in ``[0, 24)``."""
        t = self.to_datetime(sim_seconds)
        return t.hour + t.minute / 60.0 + t.second / 3600.0 + t.microsecond / 3.6e9

    def day_of_year(self, sim_seconds: float) -> float:
        """Fractional day of the year, 1-based (Jan 1st noon = 1.5)."""
        t = self.to_datetime(sim_seconds)
        start = _dt.datetime(t.year, 1, 1)
        return 1.0 + (t - start).total_seconds() / DAY

    def day_index(self, sim_seconds: float) -> int:
        """Whole days elapsed since the epoch (floor)."""
        return int(sim_seconds // DAY)

    def midnight_before(self, sim_seconds: float) -> float:
        """Simulated time of the most recent midnight at/before the instant."""
        t = self.to_datetime(sim_seconds)
        midnight = _dt.datetime(t.year, t.month, t.day)
        return self.to_seconds(midnight)

    def iter_days(self, start: float, end: float) -> Iterator[float]:
        """Yield the simulated time of each midnight in ``[start, end)``.

        The first yielded value is the first midnight at or after ``start``.
        """
        t = self.midnight_before(start)
        if t < start:
            t += DAY
        while t < end:
            yield t
            t += DAY

    def format(self, sim_seconds: float) -> str:
        """Human-readable timestamp, e.g. ``'2010-03-07 04:40'``."""
        return self.to_datetime(sim_seconds).strftime("%Y-%m-%d %H:%M")
