"""Columnar fleet state: one numpy array per attribute, hosts as indices.

The per-object simulation keeps every host attribute on a Python object;
at fleet scale that is one pointer chase per host per read.  This module
holds the same state as fleet-wide *columns* -- float64/int64/bool arrays
keyed by host index (and, for per-drive attributes, by a flat disk
index) -- so the hot tick path can compute temperatures, uptimes, and
hazard inputs as single vectorized expressions.

The existing ``Host``/``Cpu``/``SensorChip``/``Disk`` objects stay the
public API: their columnized attributes are :class:`ColumnAttr`
descriptors, which read and write the backing array once the object is
*bound* to a :class:`FleetColumns` (``bind_object``).  Unbound objects
(unit tests building a bare ``Host``, the prototype host) fall back to
per-instance storage, so nothing changes for them.

Exactness contract: a column round-trip must never perturb a value.
Columns are float64/int64/bool; Python floats, ints (within int64), and
bools round-trip bit-for-bit, and the vectorized expressions the fleet
tick runs (elementwise ``+``/``*`` and ``np.where`` gathers) are
IEEE-identical to their scalar counterparts.  Anything that is *not*
exactly replicable in a batch (``math.exp`` hazards, RNG draws) stays
scalar and per-host.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.state.codec import pack_floats, unpack_floats

_STATE_VERSION = 1

#: Per-host float columns (allocated lazily, grown by doubling).
_HOST_FLOAT_COLUMNS = (
    "uptime_s",
    "frailty",
    "cold_exposure_s",
    # Static vendor parameters, gathered once at bind time so the tick
    # never touches a VendorSpec object.
    "idle_power_w",
    "active_power_w",
    "cpu_idle_power_w",
    "cpu_active_power_w",
    "case_rise_k_per_w",
    "cpu_theta_k_per_w",
    "average_power_w",
    # Scratch written by the vectorized tick (derived, not authoritative).
    "intake_temp_c",
    "case_temp_c",
    "cpu_temp_c",
    "intake_precip_mm_h",
)
_HOST_INT_COLUMNS = ("host_state", "sensor_state", "page_ops_total", "reset_count")
_HOST_BOOL_COLUMNS = ("cpu_busy", "defective_series")

#: Per-disk columns (flat; each host owns the slice
#: ``disk_start[i]:disk_start[i]+disk_count[i]``).
_DISK_FLOAT_COLUMNS = ("disk_power_on_hours", "disk_temp_c")
_DISK_INT_COLUMNS = ("disk_state",)


class ColumnAttr:
    """Descriptor: an attribute stored in a fleet column when bound.

    ``kind`` is the Python type handed back to callers (``float``,
    ``int``, or ``bool``), so downstream code never sees numpy scalars.
    Unbound instances store the value in a private slot on the instance.
    """

    def __init__(self, column: str, kind: type = float) -> None:
        self.column = column
        self.kind = kind
        self.slot = "_cv_" + column

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj: Any, objtype: type = None) -> Any:
        if obj is None:
            return self
        cols = getattr(obj, "_columns", None)
        if cols is None:
            return getattr(obj, self.slot)
        return self.kind(getattr(cols, self.column)[obj._column_index])

    def __set__(self, obj: Any, value: Any) -> None:
        cols = getattr(obj, "_columns", None)
        if cols is None:
            object.__setattr__(obj, self.slot, value)
        else:
            getattr(cols, self.column)[obj._column_index] = value


class EnumColumnAttr:
    """Descriptor for enum attributes stored as small-int codes."""

    def __init__(self, column: str, codes: Dict[Any, int]) -> None:
        self.column = column
        self.codes = dict(codes)
        self.by_code = {code: member for member, code in codes.items()}
        self.slot = "_cv_" + column

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, obj: Any, objtype: type = None) -> Any:
        if obj is None:
            return self
        cols = getattr(obj, "_columns", None)
        if cols is None:
            return getattr(obj, self.slot)
        return self.by_code[int(getattr(cols, self.column)[obj._column_index])]

    def __set__(self, obj: Any, value: Any) -> None:
        cols = getattr(obj, "_columns", None)
        if cols is None:
            object.__setattr__(obj, self.slot, value)
        else:
            getattr(cols, self.column)[obj._column_index] = self.codes[value]


def _column_descriptors(cls: type) -> List[Any]:
    """Every ColumnAttr/EnumColumnAttr on ``cls`` (MRO-wide, name-deduped)."""
    seen: Dict[str, Any] = {}
    for klass in reversed(cls.__mro__):
        for name, attr in vars(klass).items():
            if isinstance(attr, (ColumnAttr, EnumColumnAttr)):
                seen[name] = attr
    return list(seen.values())


def bind_object(obj: Any, cols: "FleetColumns", index: int) -> None:
    """Re-home an object's columnized attributes into ``cols[index]``.

    Current (fallback) values are read first and written back through
    the descriptors afterwards, so binding is value-preserving at any
    point in the object's life.
    """
    descriptors = _column_descriptors(type(obj))
    values = [(d, d.__get__(obj)) for d in descriptors]
    obj._columns = cols
    obj._column_index = index
    for descriptor, value in values:
        descriptor.__set__(obj, value)


class FleetColumns:
    """The fleet's column store.

    Hosts register through :meth:`add_host`, which hands back a host
    index and a contiguous disk slice.  Arrays grow by doubling;
    ``n_hosts``/``n_disks`` are the live extents (always slice columns
    with them -- the tails are uninitialised).
    """

    def __init__(self, capacity: int = 32, disk_capacity: int = 64) -> None:
        self._capacity = max(1, capacity)
        self._disk_capacity = max(1, disk_capacity)
        self.n_hosts = 0
        self.n_disks = 0
        self.host_ids: List[int] = []
        self.index_of: Dict[int, int] = {}
        for name in _HOST_FLOAT_COLUMNS:
            setattr(self, name, np.zeros(self._capacity, dtype=np.float64))
        for name in _HOST_INT_COLUMNS:
            setattr(self, name, np.zeros(self._capacity, dtype=np.int64))
        for name in _HOST_BOOL_COLUMNS:
            setattr(self, name, np.zeros(self._capacity, dtype=bool))
        self.disk_start = np.zeros(self._capacity, dtype=np.int64)
        self.disk_count = np.zeros(self._capacity, dtype=np.int64)
        for name in _DISK_FLOAT_COLUMNS:
            setattr(self, name, np.zeros(self._disk_capacity, dtype=np.float64))
        for name in _DISK_INT_COLUMNS:
            setattr(self, name, np.zeros(self._disk_capacity, dtype=np.int64))

    def __repr__(self) -> str:
        return f"FleetColumns(hosts={self.n_hosts}, disks={self.n_disks})"

    # ------------------------------------------------------------------
    def _grow(self, names: Tuple[str, ...], new_capacity: int) -> None:
        for name in names:
            old = getattr(self, name)
            fresh = np.zeros(new_capacity, dtype=old.dtype)
            fresh[: old.size] = old
            setattr(self, name, fresh)

    def ensure_host_capacity(self, n: int) -> None:
        if n <= self._capacity:
            return
        new_capacity = self._capacity
        while new_capacity < n:
            new_capacity *= 2
        self._grow(
            _HOST_FLOAT_COLUMNS + _HOST_INT_COLUMNS + _HOST_BOOL_COLUMNS
            + ("disk_start", "disk_count"),
            new_capacity,
        )
        self._capacity = new_capacity

    def ensure_disk_capacity(self, n: int) -> None:
        if n <= self._disk_capacity:
            return
        new_capacity = self._disk_capacity
        while new_capacity < n:
            new_capacity *= 2
        self._grow(_DISK_FLOAT_COLUMNS + _DISK_INT_COLUMNS, new_capacity)
        self._disk_capacity = new_capacity

    def add_host(self, host_id: int, n_disks: int) -> Tuple[int, int]:
        """Allocate one host row and ``n_disks`` disk rows.

        Returns ``(host_index, disk_start)``.  Re-adding a host id is an
        error -- the fleet binds each host exactly once.
        """
        if host_id in self.index_of:
            raise ValueError(f"host {host_id} already has a column index")
        index = self.n_hosts
        self.ensure_host_capacity(index + 1)
        disk_start = self.n_disks
        self.ensure_disk_capacity(disk_start + n_disks)
        self.n_hosts = index + 1
        self.n_disks = disk_start + n_disks
        self.host_ids.append(host_id)
        self.index_of[host_id] = index
        self.disk_start[index] = disk_start
        self.disk_count[index] = n_disks
        return index, disk_start

    # ------------------------------------------------------------------
    # Snapshot protocol.  Columns are *views* over state the owning
    # objects already serialise (host state dicts), so the checkpoint
    # carries only the derived scratch columns for inspection purposes;
    # everything else re-materialises through bind_object on restore.
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        n = self.n_hosts
        return {
            "version": _STATE_VERSION,
            "host_ids": list(self.host_ids),
            "case_temp_c": pack_floats([float(v) for v in self.case_temp_c[:n]]),
            "cpu_temp_c": pack_floats([float(v) for v in self.cpu_temp_c[:n]]),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        if int(state.get("version", 0)) != _STATE_VERSION:
            raise ValueError(f"unknown columns state version {state.get('version')!r}")
        ids = [int(i) for i in state["host_ids"]]
        if ids != self.host_ids:
            raise ValueError("columns snapshot host order does not match this fleet")
        for name in ("case_temp_c", "cpu_temp_c"):
            values = unpack_floats(state[name])
            getattr(self, name)[: len(values)] = values
