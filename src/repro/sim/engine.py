"""The discrete-event engine.

A :class:`Simulator` owns a priority queue of timestamped callbacks and a
:class:`~repro.sim.clock.SimClock`.  Components schedule one-shot or periodic
events; the experiment driver calls :meth:`Simulator.run_until`.

Determinism rules:

- ties in time break by scheduling order (a monotone sequence number), so a
  run is a pure function of (config, master seed);
- callbacks may schedule further events, including at the current instant,
  but never in the past.
"""

from __future__ import annotations

import heapq
import itertools
from time import perf_counter
from typing import Any, Callable, List, Optional

from repro.sim.clock import SimClock


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling into the past)."""


class EventHandle:
    """Cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays queued and is discarded when
    it surfaces.  ``handle.cancelled`` is readable at any time.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], label: str) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.callback = None

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else f"at {self.time:.1f}s"
        return f"EventHandle({self.label!r}, {state})"


class Simulator:
    """Event loop with calendar-aware time.

    Parameters
    ----------
    clock:
        Calendar mapping; defaults to a clock at the paper's epoch.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(10.0, lambda: seen.append(sim.now))
    >>> sim.run_until(60.0)
    >>> seen
    [10.0]
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.now: float = 0.0
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._events_cancelled = 0
        self._running = False
        #: Optional trace hook ``(time, label)`` called before each event
        #: fires; labels come from the ``label=`` scheduling argument.
        #: Used by tests and by anyone debugging event ordering.
        self.on_event: Optional[Callable[[float, str], None]] = None
        #: Optional :class:`~repro.telemetry.spans.SpanTracer`.  When set
        #: (a telemetry-enabled campaign does it), every fired callback is
        #: wrapped in a span keyed by ``"engine.<label>"``.  When ``None``
        #: (the default) the fast path pays one attribute check per event.
        self.tracer: Optional[Any] = None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.1f}s [{self.clock.format(self.now)}], "
            f"pending={self.pending_count})"
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for h in self._queue if not h.cancelled)

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (cancelled events never count)."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Cancelled handles drained from the queue without firing."""
        return self._events_cancelled

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated seconds."""
        return self.schedule_at(self.now + delay, callback, label)

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {label or callback!r} at {time:.1f}s, "
                f"which is before now ({self.now:.1f}s)"
            )
        handle = EventHandle(time, next(self._seq), callback, label)
        heapq.heappush(self._queue, handle)  # type: ignore[arg-type]
        return handle

    def schedule_datetime(
        self, when: Any, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` at the calendar instant ``when`` (a datetime)."""
        return self.schedule_at(self.clock.to_seconds(when), callback, label)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        label: str = "",
    ) -> EventHandle:
        """Run ``callback`` periodically, first at ``start`` (default: now + period).

        Returns the handle of the *first* occurrence; cancelling it stops
        the whole recurrence (each firing re-checks the shared handle).
        """
        first = self.now + period if start is None else start
        control = EventHandle(first, -1, lambda: None, label or "periodic")

        def fire() -> None:
            if control.cancelled:
                return
            callback()
            if not control.cancelled:
                self.schedule(period, fire, label)

        self.schedule_at(first, fire, label)
        return control

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` if none remain."""
        self._drop_cancelled()
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        self.now = handle.time
        callback = handle.callback
        handle.callback = None
        if callback is None:
            # A handle cancelled after surfacing past _drop_cancelled is
            # drained here: it never fired, so it must not count as fired.
            self._events_cancelled += 1
            return True
        self._events_fired += 1
        if self.on_event is not None:
            self.on_event(handle.time, handle.label)
        tracer = self.tracer
        if tracer is None:
            callback()
        else:
            started = perf_counter()
            try:
                callback()
            finally:
                tracer.record(
                    "engine." + (handle.label or "unlabeled"),
                    perf_counter() - started,
                )
        return True

    def run_until(self, end: float) -> None:
        """Fire all events with ``time <= end``, then advance the clock to ``end``."""
        if end < self.now:
            raise SimulationError(f"run_until({end}) is before now ({self.now})")
        if self._running:
            raise SimulationError("run_until called re-entrantly from a callback")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or next_time > end:
                    break
                self.step()
            self.now = end
        finally:
            self._running = False

    def run_until_datetime(self, when: Any) -> None:
        """:meth:`run_until` with a calendar instant."""
        self.run_until(self.clock.to_seconds(when))

    def run(self) -> None:
        """Fire every queued event (including newly spawned ones) until empty."""
        while self.step():
            pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._events_cancelled += 1


# heapq compares tuples of (time, seq) via EventHandle ordering:
def _handle_lt(self: EventHandle, other: EventHandle) -> bool:
    return (self.time, self.seq) < (other.time, other.seq)


EventHandle.__lt__ = _handle_lt  # type: ignore[assignment]
