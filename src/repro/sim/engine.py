"""The discrete-event engine.

A :class:`Simulator` owns a priority queue of timestamped callbacks and a
:class:`~repro.sim.clock.SimClock`.  Components schedule one-shot or periodic
events; the experiment driver calls :meth:`Simulator.run_until`.

Determinism rules:

- ties in time break by scheduling order (a monotone sequence number), so a
  run is a pure function of (config, master seed);
- callbacks may schedule further events, including at the current instant,
  but never in the past.

Snapshotting
------------
The queue used to hold raw closures, which made a mid-flight simulator
unserialisable.  Work scheduled through the *registry* instead carries a
stable ``(key, args)`` spec: :meth:`register` binds a key to a callable
once per process, :meth:`schedule_key` / :meth:`every_key` enqueue specs,
and the callable is resolved at fire time.  :meth:`state_dict` then
externalises the whole engine -- clock position, counters, sequence
numbers, the heap (cancelled tombstones included, so the
``events_cancelled`` tally stays byte-identical across a resume), and
the periodic-task table -- and :meth:`load_state_dict` rebuilds it into
a fresh simulator whose registry has been populated the same way.
Closure-scheduled events still work for ad-hoc use; they simply make
``state_dict`` raise.

Heap hygiene: cancellation is lazy (tombstones drain when they surface),
but when more than half the queue is tombstones the heap is compacted in
one pass (counted in :attr:`heap_compactions`), so long campaigns with
periodic reschedules don't grow the queue unboundedly.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.clock import SimClock

#: Registry key the engine itself uses to re-fire periodic tasks.
_PERIODIC_KEY = "engine.periodic"

#: Compact the heap only past this size (tiny queues aren't worth it).
_COMPACT_MIN_QUEUE = 8

#: Engine state-dict layout version.
_STATE_VERSION = 1


class SimulationError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling into the past)."""


class EventHandle:
    """Cancellable reference to a scheduled event.

    Cancellation is lazy: the heap entry stays queued and is discarded when
    it surfaces (or swept by a compaction pass).  ``handle.cancelled`` is
    readable at any time.  ``key``/``args`` hold the registry spec for
    snapshot-safe events; closure events have ``key is None``.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label", "key", "args", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Optional[Callable[[], None]],
        label: str,
        key: Optional[str] = None,
        args: Tuple = (),
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.label = label
        self.key = key
        self.args = args
        self._sim: Optional["Simulator"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        self.callback = None
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else f"at {self.time:.1f}s"
        return f"EventHandle({self.label!r}, {state})"


class PeriodicTask:
    """Cancellable reference to an engine-managed recurrence.

    Unlike :class:`EventHandle` this survives snapshot/restore: the task
    table serialises with the engine, and
    :meth:`Simulator.periodic_task` rebuilds a handle from its id.
    """

    __slots__ = ("_sim", "task_id")

    def __init__(self, sim: "Simulator", task_id: int) -> None:
        self._sim = sim
        self.task_id = task_id

    @property
    def cancelled(self) -> bool:
        return self._sim._periodic[self.task_id]["cancelled"]

    def cancel(self) -> None:
        """Stop the recurrence.  Idempotent.

        Matches the closure-based :meth:`Simulator.every` semantics: the
        already-queued next occurrence still surfaces (and counts as
        fired), sees the flag, and does nothing.
        """
        self._sim._periodic[self.task_id]["cancelled"] = True

    def __repr__(self) -> str:
        task = self._sim._periodic[self.task_id]
        state = "cancelled" if task["cancelled"] else f"every {task['period']:.0f}s"
        return f"PeriodicTask({task['label']!r}, {state})"


class Simulator:
    """Event loop with calendar-aware time.

    Parameters
    ----------
    clock:
        Calendar mapping; defaults to a clock at the paper's epoch.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(10.0, lambda: seen.append(sim.now))
    >>> sim.run_until(60.0)
    >>> seen
    [10.0]
    """

    def __init__(self, clock: Optional[SimClock] = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.now: float = 0.0
        self._queue: List[EventHandle] = []
        self._seq = 0
        self._events_fired = 0
        self._events_cancelled = 0
        self._cancelled_pending = 0
        self._heap_compactions = 0
        self._running = False
        self._registry: Dict[str, Callable[..., None]] = {
            _PERIODIC_KEY: self._fire_periodic
        }
        self._periodic: Dict[int, Dict[str, Any]] = {}
        self._periodic_next = 0
        #: Optional trace hook ``(time, label)`` called before each event
        #: fires; labels come from the ``label=`` scheduling argument.
        #: Used by tests and by anyone debugging event ordering.
        self.on_event: Optional[Callable[[float, str], None]] = None
        #: Optional :class:`~repro.telemetry.spans.SpanTracer`.  When set
        #: (a telemetry-enabled campaign does it), every fired callback is
        #: wrapped in a span keyed by ``"engine.<label>"``.  When ``None``
        #: (the default) the fast path pays one attribute check per event.
        self.tracer: Optional[Any] = None

    def __repr__(self) -> str:
        return (
            f"Simulator(now={self.now:.1f}s [{self.clock.format(self.now)}], "
            f"pending={self.pending_count})"
        )

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Number of queued, non-cancelled events."""
        return len(self._queue) - self._cancelled_pending

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (cancelled events never count)."""
        return self._events_fired

    @property
    def events_cancelled(self) -> int:
        """Cancelled handles drained from the queue without firing."""
        return self._events_cancelled

    @property
    def heap_compactions(self) -> int:
        """Times the queue was swept of cancelled tombstones in one pass."""
        return self._heap_compactions

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` after ``delay`` simulated seconds."""
        return self.schedule_at(self.now + delay, callback, label)

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` at absolute simulated time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {label or callback!r} at {time:.1f}s, "
                f"which is before now ({self.now:.1f}s)"
            )
        return self._push(EventHandle(time, self._next_seq(), callback, label))

    def schedule_datetime(
        self, when: Any, callback: Callable[[], None], label: str = ""
    ) -> EventHandle:
        """Run ``callback`` at the calendar instant ``when`` (a datetime)."""
        return self.schedule_at(self.clock.to_seconds(when), callback, label)

    def every(
        self,
        period: float,
        callback: Callable[[], None],
        start: Optional[float] = None,
        label: str = "",
    ) -> EventHandle:
        """Run ``callback`` periodically, first at ``start`` (default: now + period).

        Returns the handle of the *first* occurrence; cancelling it stops
        the whole recurrence (each firing re-checks the shared handle).
        Closure-based and therefore not snapshot-safe; long-lived
        campaign recurrences use :meth:`every_key`.
        """
        first = self.now + period if start is None else start
        control = EventHandle(first, -1, lambda: None, label or "periodic")

        def fire() -> None:
            if control.cancelled:
                return
            callback()
            if not control.cancelled:
                self.schedule(period, fire, label)

        self.schedule_at(first, fire, label)
        return control

    # ------------------------------------------------------------------
    # Registry (snapshot-safe scheduling)
    # ------------------------------------------------------------------
    def register(self, key: str, fn: Callable[..., None]) -> None:
        """Bind ``key`` to ``fn`` for spec-based scheduling.

        Keys are stable names (``"fleet.tick"``, ``"policy.inspect"``);
        the binding is per-process and re-registration overwrites, which
        is what restore-by-reconstruction needs.
        """
        if key == _PERIODIC_KEY and fn is not self._fire_periodic:
            raise SimulationError(f"{_PERIODIC_KEY!r} is reserved by the engine")
        self._registry[key] = fn

    def registered(self, key: str) -> bool:
        """Whether ``key`` is bound."""
        return key in self._registry

    def schedule_key(
        self, delay: float, key: str, args: Tuple = (), label: str = ""
    ) -> EventHandle:
        """Registry-dispatched :meth:`schedule`."""
        return self.schedule_at_key(self.now + delay, key, args, label)

    def schedule_at_key(
        self, time: float, key: str, args: Tuple = (), label: str = ""
    ) -> EventHandle:
        """Registry-dispatched :meth:`schedule_at`: snapshot-safe."""
        if key not in self._registry:
            raise SimulationError(f"no callback registered under {key!r}")
        if time < self.now:
            raise SimulationError(
                f"cannot schedule {label or key!r} at {time:.1f}s, "
                f"which is before now ({self.now:.1f}s)"
            )
        handle = EventHandle(
            time, self._next_seq(), None, label, key=key, args=tuple(args)
        )
        return self._push(handle)

    def every_key(
        self,
        period: float,
        key: str,
        args: Tuple = (),
        start: Optional[float] = None,
        label: str = "",
    ) -> PeriodicTask:
        """Snapshot-safe :meth:`every`: the recurrence lives in the task table.

        Sequence-number consumption matches :meth:`every` exactly (one
        per occurrence), so converting a recurrence from closures to
        keys does not perturb tie-breaking anywhere else in the run.
        """
        if period <= 0:
            raise SimulationError("periodic events need a positive period")
        if key not in self._registry:
            raise SimulationError(f"no callback registered under {key!r}")
        first = self.now + period if start is None else start
        task_id = self._periodic_next
        self._periodic_next += 1
        self._periodic[task_id] = {
            "period": float(period),
            "key": key,
            "args": tuple(args),
            "label": label,
            "cancelled": False,
        }
        self.schedule_at_key(first, _PERIODIC_KEY, (task_id,), label=label)
        return PeriodicTask(self, task_id)

    def every_key_group(
        self,
        period: float,
        key: str,
        callbacks: Sequence[Callable[[], None]],
        start: Optional[float] = None,
        label: str = "",
    ) -> PeriodicTask:
        """A batched recurrence: ONE heap entry firing several callbacks.

        Identical-cadence periodic work (clock, thermal, workload,
        telemetry passes) scheduled as separate ``every_key`` recurrences
        costs one heap push/pop and one dispatch per subsystem per tick.
        A group amortises that to a single entry: each occurrence calls
        every callback once, in the fixed order given -- the RackMind-style
        per-tick system pass -- before the recurrence re-arms.

        ``key`` is registered to the group dispatcher, so the recurrence
        is snapshot-safe as long as the restored process re-registers the
        same group under the same key before ``load_state_dict``.
        """
        fns = tuple(callbacks)
        if not fns:
            raise SimulationError("a periodic group needs at least one callback")

        def _fire_group() -> None:
            for fn in fns:
                fn()

        self.register(key, _fire_group)
        return self.every_key(period, key, start=start, label=label or key)

    def periodic_task(self, task_id: int) -> PeriodicTask:
        """Rebuild the handle for an existing recurrence (restore path)."""
        if task_id not in self._periodic:
            raise SimulationError(f"no periodic task {task_id}")
        return PeriodicTask(self, task_id)

    def find_key_handles(
        self, key: str, args: Optional[Tuple] = None
    ) -> List[EventHandle]:
        """Live queued handles for ``key`` (restore-time re-linking)."""
        return [
            h
            for h in self._queue
            if h.key == key
            and not h.cancelled
            and (args is None or h.args == tuple(args))
        ]

    def _fire_periodic(self, task_id: int) -> None:
        task = self._periodic[task_id]
        if task["cancelled"]:
            return
        self._registry[task["key"]](*task["args"])
        if not task["cancelled"]:
            self.schedule_at_key(
                self.now + task["period"],
                _PERIODIC_KEY,
                (task_id,),
                label=task["label"],
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Fire the single next event.  Returns ``False`` if none remain."""
        self._drop_cancelled()
        if not self._queue:
            return False
        handle = heapq.heappop(self._queue)
        handle._sim = None
        self.now = handle.time
        if handle.cancelled:
            # A handle cancelled after surfacing past _drop_cancelled is
            # drained here: it never fired, so it must not count as fired.
            self._events_cancelled += 1
            return True
        callback = handle.callback
        handle.callback = None
        self._events_fired += 1
        if self.on_event is not None:
            self.on_event(handle.time, handle.label)
        tracer = self.tracer
        if tracer is None:
            self._invoke(handle, callback)
        else:
            started = perf_counter()
            try:
                self._invoke(handle, callback)
            finally:
                tracer.record(
                    "engine." + (handle.label or "unlabeled"),
                    perf_counter() - started,
                )
        return True

    def _invoke(
        self, handle: EventHandle, callback: Optional[Callable[[], None]]
    ) -> None:
        if handle.key is not None:
            fn = self._registry.get(handle.key)
            if fn is None:
                raise SimulationError(
                    f"event {handle.label or handle.key!r} fired but "
                    f"{handle.key!r} is no longer registered"
                )
            fn(*handle.args)
        elif callback is not None:
            callback()

    def run_until(self, end: float) -> None:
        """Fire all events with ``time <= end``, then advance the clock to ``end``."""
        if end < self.now:
            raise SimulationError(f"run_until({end}) is before now ({self.now})")
        if self._running:
            raise SimulationError("run_until called re-entrantly from a callback")
        self._running = True
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or next_time > end:
                    break
                self.step()
            self.now = end
        finally:
            self._running = False

    def run_until_datetime(self, when: Any) -> None:
        """:meth:`run_until` with a calendar instant."""
        self.run_until(self.clock.to_seconds(when))

    def run(self) -> None:
        """Fire every queued event (including newly spawned ones) until empty."""
        while self.step():
            pass

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialise clock position, counters, heap, and task table.

        Raises :class:`SimulationError` if the queue still holds live
        closure-scheduled events -- only registry specs re-materialise.
        Cancelled closure tombstones are fine: they serialise as counted
        tombstones and never fire.
        """
        opaque = sorted(
            {
                h.label or "<unlabeled>"
                for h in self._queue
                if not h.cancelled and h.key is None
            }
        )
        if opaque:
            raise SimulationError(
                "cannot snapshot: queue holds closure-scheduled events "
                f"without registry keys: {', '.join(opaque)}"
            )
        return {
            "version": _STATE_VERSION,
            "now": self.now,
            "seq": self._seq,
            "events_fired": self._events_fired,
            "events_cancelled": self._events_cancelled,
            "heap_compactions": self._heap_compactions,
            "queue": [
                {
                    "time": h.time,
                    "seq": h.seq,
                    "label": h.label,
                    "cancelled": bool(h.cancelled),
                    "key": h.key,
                    "args": list(h.args),
                }
                for h in sorted(self._queue, key=lambda h: (h.time, h.seq))
            ],
            "periodic_next": self._periodic_next,
            "periodic": {
                str(task_id): {
                    "period": task["period"],
                    "key": task["key"],
                    "args": list(task["args"]),
                    "label": task["label"],
                    "cancelled": task["cancelled"],
                }
                for task_id, task in sorted(self._periodic.items())
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Replace the queue, counters, and task table wholesale.

        Any event scheduled between construction and this call (e.g. by
        components re-created during restore) is discarded -- the
        snapshot is the whole truth.  Registry bindings are left alone;
        every key named by the snapshot must already be registered.
        """
        if state.get("version") != _STATE_VERSION:
            raise SimulationError(
                f"cannot load engine state version {state.get('version')!r}"
            )
        queue: List[EventHandle] = []
        for entry in state["queue"]:
            key = entry["key"]
            if key is not None and key not in self._registry:
                raise SimulationError(
                    f"snapshot queue entry {entry['label'] or key!r} needs "
                    f"unregistered key {key!r}"
                )
            handle = EventHandle(
                float(entry["time"]),
                int(entry["seq"]),
                None,
                entry["label"],
                key=key,
                args=tuple(entry["args"]),
            )
            handle.cancelled = bool(entry["cancelled"])
            if not handle.cancelled:
                handle._sim = self
            queue.append(handle)
        heapq.heapify(queue)
        self._queue = queue
        self.now = float(state["now"])
        self._seq = int(state["seq"])
        self._events_fired = int(state["events_fired"])
        self._events_cancelled = int(state["events_cancelled"])
        self._heap_compactions = int(state.get("heap_compactions", 0))
        self._cancelled_pending = sum(1 for h in queue if h.cancelled)
        self._periodic = {
            int(task_id): {
                "period": float(task["period"]),
                "key": task["key"],
                "args": tuple(task["args"]),
                "label": task["label"],
                "cancelled": bool(task["cancelled"]),
            }
            for task_id, task in state["periodic"].items()
        }
        self._periodic_next = int(state["periodic_next"])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _push(self, handle: EventHandle) -> EventHandle:
        handle._sim = self
        heapq.heappush(self._queue, handle)  # type: ignore[arg-type]
        return handle

    def _note_cancel(self) -> None:
        """A queued handle was cancelled; maybe compact the heap."""
        self._cancelled_pending += 1
        if (
            len(self._queue) >= _COMPACT_MIN_QUEUE
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Sweep every cancelled tombstone from the heap in one pass."""
        keep = [h for h in self._queue if not h.cancelled]
        dropped = len(self._queue) - len(keep)
        heapq.heapify(keep)
        self._queue = keep
        self._events_cancelled += dropped
        self._cancelled_pending = 0
        self._heap_compactions += 1

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._events_cancelled += 1
            self._cancelled_pending -= 1


# heapq compares tuples of (time, seq) via EventHandle ordering:
def _handle_lt(self: EventHandle, other: EventHandle) -> bool:
    return (self.time, self.seq) < (other.time, other.seq)


EventHandle.__lt__ = _handle_lt  # type: ignore[assignment]
