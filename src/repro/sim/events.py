"""The campaign event bus: typed, synchronous, deterministic.

Subsystems used to be interrogated post-hoc — the results object walked
live fleets, ledgers, and logs to reconstruct what happened.  The bus
inverts that: publishers announce structured events the moment they
occur, and any number of subscribers (the fault log, the event recorder
a finished run exposes, tests) observe them without being threaded
through constructor signatures.

Design rules, chosen to keep runs a pure function of (config, seed):

- dispatch is synchronous: ``publish`` calls every matching handler
  before returning, so event-log ordering equals publication ordering;
- handlers run in subscription order, and for a subclass event the
  exact-type subscribers run before any base-class (wildcard)
  subscribers — both orders are deterministic;
- publishing draws no randomness and schedules nothing on the
  simulator; the bus is pure plumbing.

The payload classes mirror the campaign's narrative beats: installs,
host failures, tent modifications, sensor latch-ups, wrong hashes,
switch deaths, operator interventions, and the paper snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Type


@dataclass(frozen=True)
class Event:
    """Base class for everything published on the bus."""

    time: float


# ----------------------------------------------------------------------
# Fleet and hardware events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HostInstalled(Event):
    """A host was placed in an enclosure and powered on."""

    host_id: int
    enclosure: str
    group: str = ""


@dataclass(frozen=True)
class HostFailed(Event):
    """A host went down (transient, disk, or water-ingress strike).

    ``kind`` is a :class:`repro.hardware.faults.FaultKind`; the bus does
    not import the hardware layer, so the field is typed loosely.
    """

    host_id: int
    kind: Any = None
    detail: str = ""


@dataclass(frozen=True)
class SensorLatched(Event):
    """A sensor chip cold-latched into the erratic (-111 degC) state."""

    host_id: int


@dataclass(frozen=True)
class SwitchDied(Event):
    """A powered network switch stopped forwarding frames."""

    switch_name: str


@dataclass(frozen=True)
class TentModified(Event):
    """An envelope intervention (R/I/B/F/D) was applied to the tent."""

    letter: str
    modification: Any = None


# ----------------------------------------------------------------------
# Workload events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WrongHash(Event):
    """A synthetic-load run produced a mismatching md5sum."""

    host_id: int
    corrupted_blocks: int = 0


# ----------------------------------------------------------------------
# Monitoring events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HostDownObserved(Event):
    """A collection round found a registered host not answering SSH."""

    host_id: int


@dataclass(frozen=True)
class HostUnreachable(Event):
    """A collection round could not reach a host through its switches."""

    host_id: int


@dataclass(frozen=True)
class SensorAnomalyObserved(Event):
    """A collection round pulled an implausible (-111 degC) reading."""

    host_id: int
    reading_c: Optional[float] = None


@dataclass(frozen=True)
class SensorMuteObserved(SensorAnomalyObserved):
    """A collection round found the sensor chip absent from the bus.

    The paper's post-redetect state: ``lm-sensors`` returns nothing at
    all, as opposed to the erratic -111 degC class a plain
    :class:`SensorAnomalyObserved` reports.  Subscribers to the base
    class still receive these (bus dispatch walks the MRO), so the
    operator playbook is unchanged; subscribing to this class alone
    watches only the vanished-chip case.  ``reading_c`` is ``None``.
    """


@dataclass(frozen=True)
class HostSuspect(Event):
    """A failed observation that is not yet confirmed.

    With a health policy demanding ``confirm_rounds >= 2``, the first
    failed contact(s) raise this instead of
    :class:`HostDownObserved`/:class:`HostUnreachable` -- the operator
    is not involved until the outage is confirmed.  ``kind`` is the
    observed failure mode (``"down"`` or ``"unreachable"``), ``streak``
    the consecutive failed rounds so far.
    """

    host_id: int
    kind: str = "down"
    streak: int = 1


@dataclass(frozen=True)
class HostRecovered(Event):
    """A suspect host answered again before its outage was confirmed.

    Published only for SUSPECT -> UP transitions (a suppressed false
    alarm); a confirmed-down host coming back is an ordinary repair and
    stays silent, as it always was.  ``rounds_suspect`` is the length
    of the suppressed suspicion streak.
    """

    host_id: int
    rounds_suspect: int = 1


# ----------------------------------------------------------------------
# Operator events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HostReplaced(Event):
    """The operator installed a spare in a failed tent host's stead."""

    failed_host_id: int
    replacement_host_id: int


@dataclass(frozen=True)
class SwitchRepaired(Event):
    """The operator re-cabled a dead switch's hosts to a replacement."""

    dead_switch: str
    replacement_switch: str


# ----------------------------------------------------------------------
# Plant events (cooling/power chaos plane)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlantFaultInjected(Event):
    """A cooling/power plant fault became active.

    ``kind`` is the :class:`repro.plant.faults.PlantFaultKind` value
    string (the bus does not import the plant layer); ``domain`` is the
    correlated failure domain the fault strikes -- a pod index for
    fan/intake faults, a power-feed group for feed drops, ``-1`` for
    site-wide faults (CRAC, heater).
    """

    kind: str
    domain: int = -1
    severity: float = 1.0
    repair_s: float = 0.0


@dataclass(frozen=True)
class PlantFaultRepaired(Event):
    """An active plant fault was repaired; its effects lift."""

    kind: str
    domain: int = -1


@dataclass(frozen=True)
class ThermalTrip(Event):
    """A pod's intake crossed the protective overtemp threshold.

    The trip layer answers with staged load-shedding (``stage`` starts
    at 1) and, where configured, the emergency flap.
    """

    pod: int
    intake_c: float = 0.0
    stage: int = 1


@dataclass(frozen=True)
class ThermalTripCleared(Event):
    """A tripped pod cooled below the clear threshold (hysteresis)."""

    pod: int
    intake_c: float = 0.0


@dataclass(frozen=True)
class LoadShed(Event):
    """Hosts were powered down to protect a pod.

    ``reason`` is ``"trip"`` for protective shedding and ``"feed"``
    for a power-feed drop.
    """

    pod: int
    hosts: int = 0
    stage: int = 1
    reason: str = "trip"


@dataclass(frozen=True)
class LoadRestored(Event):
    """Previously shed hosts were powered back up after cool-down."""

    pod: int
    hosts: int = 0
    reason: str = "trip"


@dataclass(frozen=True)
class EmergencyFlapOpened(Event):
    """The trip layer forced the emergency ventilation flap open."""

    pod: int


@dataclass(frozen=True)
class EmergencyFlapClosed(Event):
    """The emergency flap closed again after the trip cleared."""

    pod: int


# ----------------------------------------------------------------------
# Campaign events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SnapshotTaken(Event):
    """The paper-style census was frozen ("at the time of writing").

    ``census`` is a :class:`repro.core.results.SnapshotCensus`.
    """

    census: Any = None


class EventBus:
    """Typed publish/subscribe hub.

    Examples
    --------
    >>> bus = EventBus()
    >>> seen = []
    >>> bus.subscribe(HostFailed, seen.append)
    >>> bus.publish(HostFailed(time=1.0, host_id=15))
    >>> seen[0].host_id
    15
    """

    def __init__(self) -> None:
        self._subscribers: Dict[Type[Event], List[Callable[[Any], None]]] = {}
        #: Published-event tally per event class name (introspection).
        self.counts: Dict[str, int] = {}

    def __repr__(self) -> str:
        return (
            f"EventBus(types={len(self._subscribers)}, "
            f"published={sum(self.counts.values())})"
        )

    def subscribe(
        self, event_type: Type[Event], handler: Callable[[Any], None]
    ) -> Callable[[Any], None]:
        """Call ``handler`` for every published event of ``event_type``.

        Subscribing to :class:`Event` itself makes a wildcard subscriber.
        Returns the handler, for symmetric :meth:`unsubscribe` calls.
        """
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"{event_type!r} is not an Event subclass")
        self._subscribers.setdefault(event_type, []).append(handler)
        return handler

    def unsubscribe(
        self, event_type: Type[Event], handler: Callable[[Any], None]
    ) -> None:
        """Remove one subscription.  Missing subscriptions are ignored."""
        handlers = self._subscribers.get(event_type)
        if handlers and handler in handlers:
            handlers.remove(handler)

    def publish(self, event: Event) -> None:
        """Dispatch ``event`` synchronously to every matching subscriber.

        Exact-type subscribers run first, then subscribers of each base
        class up the MRO (so :class:`Event` wildcards run last), each
        group in subscription order.
        """
        name = type(event).__name__
        self.counts[name] = self.counts.get(name, 0) + 1
        for klass in type(event).__mro__:
            if klass is object:
                break
            for handler in self._subscribers.get(klass, ()):  # type: ignore[arg-type]
                handler(event)


class EventRecorder:
    """A subscriber that simply remembers everything, in publish order.

    The campaign attaches one so a finished run can answer "what
    happened, when" without re-deriving it from live object state.
    """

    def __init__(self) -> None:
        self.events: List[Event] = []

    def attach(self, bus: EventBus) -> None:
        """Subscribe to every event on ``bus``."""
        bus.subscribe(Event, self.events.append)

    def detach(self, bus: EventBus) -> None:
        """Stop recording from ``bus``."""
        bus.unsubscribe(Event, self.events.append)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_type(self, event_type: Type[Event]) -> List[Event]:
        """All recorded events of one type (subclasses included)."""
        return [e for e in self.events if isinstance(e, event_type)]

    def counts(self) -> Dict[str, int]:
        """Recorded-event tally per event class name, sorted by name."""
        tally: Dict[str, int] = {}
        for event in self.events:
            name = type(event).__name__
            tally[name] = tally.get(name, 0) + 1
        return dict(sorted(tally.items()))
