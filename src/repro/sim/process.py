"""Generator-based simulated processes.

Long-lived behaviours (a host's archival loop, the collector's rsync rounds)
read more naturally as coroutines than as chains of callbacks.  A process is
a Python generator that yields either

- a ``float`` -- "sleep this many simulated seconds", or
- ``wait_until(t)`` -- "sleep until absolute simulated time ``t``".

Example::

    def archiver(sim, host):
        yield host.start_fuzz          # de-synchronise, as the paper does
        while True:
            host.run_cycle(sim.now)
            yield 600.0                # every 10 minutes

    Process(sim, archiver(sim, host), name="archiver.host01")
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from repro.sim.engine import EventHandle, SimulationError, Simulator


class _WaitUntil:
    __slots__ = ("time",)

    def __init__(self, time: float) -> None:
        self.time = float(time)

    def __repr__(self) -> str:
        return f"wait_until({self.time})"


def wait_until(time: float) -> _WaitUntil:
    """Yieldable command: resume the process at absolute time ``time``."""
    return _WaitUntil(time)


Yieldable = Union[float, int, _WaitUntil]


class Process:
    """Drive a generator as a simulated process.

    The process starts immediately: its code up to the first ``yield`` runs
    at the current simulated instant.  When the generator returns, the
    process is finished; :attr:`alive` turns ``False``.

    Parameters
    ----------
    sim:
        The simulator providing time and scheduling.
    generator:
        The process body.
    name:
        Label used in reprs and engine traces.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Yieldable, None, None],
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self._pending: Optional[EventHandle] = None
        self.alive = True
        self._advance()

    def __repr__(self) -> str:
        state = "alive" if self.alive else "finished"
        return f"Process({self.name!r}, {state})"

    def stop(self) -> None:
        """Terminate the process; a pending sleep is cancelled."""
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if self.alive:
            self.alive = False
            self._generator.close()

    # ------------------------------------------------------------------
    def _advance(self) -> None:
        self._pending = None
        if not self.alive:
            return
        try:
            command = next(self._generator)
        except StopIteration:
            self.alive = False
            return
        self._schedule(command)

    def _schedule(self, command: Yieldable) -> None:
        if isinstance(command, _WaitUntil):
            wake = command.time
        elif isinstance(command, (int, float)):
            delay = float(command)
            if delay < 0:
                raise SimulationError(f"{self.name}: negative sleep {delay}")
            wake = self.sim.now + delay
        else:
            raise SimulationError(
                f"{self.name}: processes may yield floats or wait_until(), "
                f"got {command!r}"
            )
        self._pending = self.sim.schedule_at(wake, self._advance, label=self.name)
