"""Named, independent random streams.

Every stochastic element of the reproduction (weather noise, fault draws,
workload fuzz, instrument error) pulls from its own named stream, so that

- the whole experiment is reproducible from one master seed, and
- adding draws to one subsystem does not perturb any other subsystem
  (no "seed coupling" between, say, the weather and the fault injector).

Streams are derived with :class:`numpy.random.SeedSequence` keyed by a
stable hash of the stream name, so stream identity depends only on the
``(master seed, name)`` pair, never on creation order.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

import numpy as np

from repro.state.protocol import StateError, check_version

_STATE_VERSION = 1


def _name_key(name: str) -> int:
    """Stable 64-bit integer key for a stream name.

    Python's builtin ``hash`` is salted per-process for strings, so a
    cryptographic digest is used instead.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """Factory of named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    master_seed:
        Seed for the whole family.  Two :class:`RngStreams` built with the
        same seed produce identical streams for identical names.

    Examples
    --------
    >>> streams = RngStreams(7)
    >>> weather = streams.stream("climate.noise")
    >>> faults = streams.stream("hardware.faults")
    >>> weather is streams.stream("climate.noise")
    True
    """

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self.master_seed = int(master_seed)
        self._cache: Dict[str, np.random.Generator] = {}
        self._children: Dict[str, "RngStreams"] = {}

    def __repr__(self) -> str:
        return f"RngStreams(master_seed={self.master_seed}, streams={sorted(self._cache)})"

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always returns the same generator object, so a
        subsystem may re-request its stream instead of threading it through
        call signatures.
        """
        if not name:
            raise ValueError("stream name must be a non-empty string")
        generator = self._cache.get(name)
        if generator is None:
            seq = np.random.SeedSequence([self.master_seed, _name_key(name)])
            generator = np.random.default_rng(seq)
            self._cache[name] = generator
        return generator

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family, e.g. one per host.

        ``streams.spawn("host.03")`` gives an independent family whose
        streams never collide with the parent's or with other children's.
        The same name always returns the same child object, so child
        stream positions are part of this family's snapshot.
        """
        child = self._children.get(name)
        if child is None:
            child = RngStreams(_mix(self.master_seed, _name_key(name)))
            self._children[name] = child
        return child

    def fork_seed(self, name: str) -> int:
        """A derived scalar seed for code that wants its own RNG machinery."""
        return _mix(self.master_seed, _name_key(name))

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Positions of every stream created so far, children included.

        A PCG64 ``bit_generator.state`` is a plain dict of ints and
        strings, so the whole family snapshot is JSON-serialisable.
        """
        return {
            "version": _STATE_VERSION,
            "master_seed": self.master_seed,
            "streams": {
                name: _encode_bitgen_state(gen.bit_generator.state)
                for name, gen in sorted(self._cache.items())
            },
            "children": {
                name: child.state_dict()
                for name, child in sorted(self._children.items())
            },
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Seek every named stream to its recorded position.

        Streams the snapshot names are created on demand; streams created
        since construction but absent from the snapshot keep their fresh
        positions (they had drawn nothing when the snapshot was taken).
        Restore order therefore does not matter as long as this runs
        *after* any reconstruction-time draws.
        """
        check_version("rng", state, _STATE_VERSION)
        if int(state["master_seed"]) != self.master_seed:
            raise StateError(
                f"rng: snapshot was taken under master seed "
                f"{state['master_seed']}, this family uses {self.master_seed}"
            )
        for name, bitgen_state in state["streams"].items():
            self.stream(name).bit_generator.state = _decode_bitgen_state(
                bitgen_state
            )
        for name, child_state in state["children"].items():
            self.spawn(name).load_state_dict(child_state)


def _mix(seed: int, key: int) -> int:
    """Combine a seed and a name key into a new 63-bit seed."""
    digest = hashlib.sha256(f"{seed}:{key}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def _encode_bitgen_state(state: Dict[str, Any]) -> Dict[str, Any]:
    """A PCG64 state dict with its 128-bit ints rendered as strings.

    Python's ``json`` would round-trip the big ints natively, but decimal
    strings survive any JSON implementation and make the checkpoint
    self-describing.
    """
    inner = state["state"]
    return {
        "bit_generator": state["bit_generator"],
        "state": {"state": str(inner["state"]), "inc": str(inner["inc"])},
        "has_uint32": int(state["has_uint32"]),
        "uinteger": int(state["uinteger"]),
    }


def _decode_bitgen_state(data: Dict[str, Any]) -> Dict[str, Any]:
    inner = data["state"]
    return {
        "bit_generator": data["bit_generator"],
        "state": {"state": int(inner["state"]), "inc": int(inner["inc"])},
        "has_uint32": int(data["has_uint32"]),
        "uinteger": int(data["uinteger"]),
    }
