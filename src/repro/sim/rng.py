"""Named, independent random streams.

Every stochastic element of the reproduction (weather noise, fault draws,
workload fuzz, instrument error) pulls from its own named stream, so that

- the whole experiment is reproducible from one master seed, and
- adding draws to one subsystem does not perturb any other subsystem
  (no "seed coupling" between, say, the weather and the fault injector).

Streams are derived with :class:`numpy.random.SeedSequence` keyed by a
stable hash of the stream name, so stream identity depends only on the
``(master seed, name)`` pair, never on creation order.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _name_key(name: str) -> int:
    """Stable 64-bit integer key for a stream name.

    Python's builtin ``hash`` is salted per-process for strings, so a
    cryptographic digest is used instead.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngStreams:
    """Factory of named :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    master_seed:
        Seed for the whole family.  Two :class:`RngStreams` built with the
        same seed produce identical streams for identical names.

    Examples
    --------
    >>> streams = RngStreams(7)
    >>> weather = streams.stream("climate.noise")
    >>> faults = streams.stream("hardware.faults")
    >>> weather is streams.stream("climate.noise")
    True
    """

    def __init__(self, master_seed: int) -> None:
        if not isinstance(master_seed, (int, np.integer)):
            raise TypeError(f"master_seed must be an int, got {type(master_seed).__name__}")
        self.master_seed = int(master_seed)
        self._cache: Dict[str, np.random.Generator] = {}

    def __repr__(self) -> str:
        return f"RngStreams(master_seed={self.master_seed}, streams={sorted(self._cache)})"

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always returns the same generator object, so a
        subsystem may re-request its stream instead of threading it through
        call signatures.
        """
        if not name:
            raise ValueError("stream name must be a non-empty string")
        generator = self._cache.get(name)
        if generator is None:
            seq = np.random.SeedSequence([self.master_seed, _name_key(name)])
            generator = np.random.default_rng(seq)
            self._cache[name] = generator
        return generator

    def spawn(self, name: str) -> "RngStreams":
        """Derive a child family, e.g. one per host.

        ``streams.spawn("host.03")`` gives an independent family whose
        streams never collide with the parent's or with other children's.
        """
        return RngStreams(_mix(self.master_seed, _name_key(name)))

    def fork_seed(self, name: str) -> int:
        """A derived scalar seed for code that wants its own RNG machinery."""
        return _mix(self.master_seed, _name_key(name))


def _mix(seed: int, key: int) -> int:
    """Combine a seed and a name key into a new 63-bit seed."""
    digest = hashlib.sha256(f"{seed}:{key}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") >> 1
