"""Explicit, versioned state: the checkpoint/restore plane.

Every stateful layer of the reproduction -- engine, RNG streams, clock,
hardware, thermal, monitoring, operator protocol, telemetry -- exposes
its mutable state through one uniform protocol:

- ``state_dict() -> dict``: a versioned, JSON-serialisable, picklable
  snapshot of everything that changes during a run;
- ``load_state_dict(d)``: restore a freshly *constructed* component to
  exactly that state.

The contract is restore-by-reconstruction: a checkpoint never pickles
live object graphs.  Restoring builds the campaign again from its
config (construction is deterministic), loads each component's state
dict, and finally overwrites every RNG stream position -- so a resumed
run continues the exact draw sequence of the run it replaces and its
census, sensor records, and telemetry counters are byte-identical to an
uninterrupted run at any cut point.

:class:`~repro.state.checkpoint.CampaignCheckpoint` is the on-disk
container (schema version, config digest, sim time, per-component
blobs, integrity checksum); :mod:`repro.state.codec` holds the packing
helpers that keep big instrument histories cheap to write.
"""

from repro.state.checkpoint import (
    CHECKPOINT_SCHEMA,
    CampaignCheckpoint,
    read_checkpoint,
    write_checkpoint,
)
from repro.state.codec import (
    decode_value,
    encode_value,
    pack_bools,
    pack_floats,
    pack_ints,
    pack_optional_floats,
    unpack_bools,
    unpack_floats,
    unpack_ints,
    unpack_optional_floats,
)
from repro.state.protocol import Snapshottable, StateError

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CampaignCheckpoint",
    "Snapshottable",
    "StateError",
    "decode_value",
    "encode_value",
    "pack_bools",
    "pack_floats",
    "pack_ints",
    "pack_optional_floats",
    "read_checkpoint",
    "unpack_bools",
    "unpack_floats",
    "unpack_ints",
    "unpack_optional_floats",
    "write_checkpoint",
]
