"""The on-disk campaign checkpoint: envelope, checksum, crash-safe IO.

Layout
------
A checkpoint file is a small JSON envelope around one big payload
string::

    {"schema": 1, "checksum": sha256(payload), "payload": "<json>"}

A *delta* checkpoint (schema 2) stores, instead of the full payload, a
structural diff against a sibling file in the same directory::

    {"schema": 2, "checksum": sha256(payload),
     "payload": "<json of {base: <filename>, delta: <tree>}>"}

:func:`read_checkpoint` resolves the base chain transparently, so any
cut in a campaign's checkpoint directory loads like a full snapshot.
Most campaign state between two cuts is either unchanged (config,
topology, vendor tables) or append-only (series digests, fault logs,
packed column blobs), so a delta cut costs bytes proportional to the
*cadence interval* rather than the horizon -- this is what keeps
long-campaign checkpoint sizes flat instead of superlinear.
:class:`DeltaCheckpointWriter` drives the chain and rebases with a full
schema-1 cut every ``rebase_every`` writes to bound reassembly depth.

The payload is serialised exactly once; the checksum is computed over
that byte-for-byte string, so a torn or bit-flipped file can never load
as a subtly wrong campaign.  Inside the payload:

- ``schema``: checkpoint layout version (bump on incompatible change);
- ``config``: the full encoded :class:`ExperimentConfig` (a checkpoint
  is self-describing -- resume needs no side channel);
- ``config_digest``: the same digest the run-record cache keys on;
- ``sim_time`` / ``seed``: where and under which master seed the run
  stood;
- ``components``: one versioned state blob per snapshottable layer
  (engine, rng, clock, fleet, thermal, monitoring, policy, telemetry,
  ...), keyed by component name;
- ``meta``: builder options (disabled instruments, link-fault plan,
  health policy, telemetry flag) plus the campaign phase markers.

Crash safety
------------
Writes go through the same discipline as the runner's record cache
(``_store_cached``): serialise to a ``mkstemp`` sibling, atomically
rename over the target, and unlink the tmp file in a ``finally`` so it
never outlives the attempt.  Loads quarantine anything corrupt --
unparsable JSON, checksum mismatch, unknown schema -- to a ``.corrupt``
sibling and return ``None`` instead of raising, so a damaged checkpoint
degrades to a from-scratch run rather than a crashed sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.state.codec import decode_value, encode_value

#: Checkpoint layout version; readers reject (quarantine) other values.
CHECKPOINT_SCHEMA = 1

#: Envelope schema of a delta segment (diff against a sibling file).
DELTA_SCHEMA = 2

#: Hard bound on base-chain length during reassembly (a well-formed
#: writer rebases long before this; the guard breaks reference cycles).
_MAX_CHAIN_DEPTH = 128

_DELTA_KEY = "__delta__"


@dataclass
class CampaignCheckpoint:
    """Everything needed to rebuild a mid-flight campaign."""

    config_digest: str
    sim_time: float
    seed: int
    components: Dict[str, Dict[str, Any]]
    meta: Dict[str, Any] = field(default_factory=dict)
    schema: int = CHECKPOINT_SCHEMA

    def to_payload(self) -> Dict[str, Any]:
        """The plain-data payload the envelope carries."""
        return {
            "schema": self.schema,
            "config_digest": self.config_digest,
            "sim_time": self.sim_time,
            "seed": self.seed,
            "components": self.components,
            "meta": self.meta,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "CampaignCheckpoint":
        return cls(
            schema=int(data["schema"]),
            config_digest=str(data["config_digest"]),
            sim_time=float(data["sim_time"]),
            seed=int(data["seed"]),
            components=dict(data["components"]),
            meta=dict(data.get("meta", {})),
        )

    # Convenience wrappers over the tagged-value codec, so callers do
    # not deal in encoded blobs directly.
    def encode_meta(self, key: str, value: Any) -> None:
        """Store a config-like value (dataclasses/enums allowed) in meta."""
        self.meta[key] = encode_value(value)

    def decode_meta(self, key: str, default: Any = None) -> Any:
        if key not in self.meta:
            return default
        return decode_value(self.meta[key])


def _common_prefix_len(old: str, new: str) -> int:
    """Length of the shared prefix, scanned in slices (fast on MB blobs)."""
    limit = min(len(old), len(new))
    lo = 0
    chunk = 1 << 16
    while lo < limit and old[lo : lo + chunk] == new[lo : lo + chunk]:
        lo += chunk
    if lo >= limit:
        return limit
    # Mismatch inside the last chunk: binary-refine instead of a
    # per-character scan (these blobs run to megabytes).
    while chunk > 1:
        chunk >>= 1
        if lo < limit and old[lo : lo + chunk] == new[lo : lo + chunk]:
            lo += chunk
    return min(lo, limit)


def _diff(old: Any, new: Any) -> Optional[Dict[str, Any]]:
    """Structural delta turning ``old`` into ``new``; ``None`` if equal.

    Dicts diff per key, lists and strings keep their common prefix and
    replace the tail (the append-only shapes campaign state is made
    of), everything else is replaced whole.  Payloads never contain the
    ``__delta__`` sentinel key, so the encoding is unambiguous.
    """
    if old is new:
        return None
    if isinstance(old, dict) and isinstance(new, dict):
        sets: Dict[str, Any] = {}
        for key, value in new.items():
            if key in old:
                delta = _diff(old[key], value)
                if delta is not None:
                    sets[key] = delta
            else:
                sets[key] = {_DELTA_KEY: "full", "value": value}
        drops = [key for key in old if key not in new]
        if not sets and not drops:
            return None
        return {_DELTA_KEY: "dict", "set": sets, "drop": drops}
    if isinstance(old, list) and isinstance(new, list):
        limit = min(len(old), len(new))
        keep = 0
        while keep < limit and old[keep] == new[keep]:
            keep += 1
        if keep == len(old) == len(new):
            return None
        if keep:
            return {_DELTA_KEY: "tail", "keep": keep, "tail": new[keep:]}
        return {_DELTA_KEY: "full", "value": new}
    if isinstance(old, str) and isinstance(new, str):
        keep = _common_prefix_len(old, new)
        if keep == len(old) == len(new):
            return None
        if keep >= 32:
            return {_DELTA_KEY: "strtail", "keep": keep, "tail": new[keep:]}
        return {_DELTA_KEY: "full", "value": new}
    if old == new:
        return None
    return {_DELTA_KEY: "full", "value": new}


def _apply(old: Any, delta: Dict[str, Any]) -> Any:
    """Inverse of :func:`_diff`: rebuild the new value from ``old``."""
    kind = delta[_DELTA_KEY]
    if kind == "full":
        return delta["value"]
    if kind == "dict":
        dropped = set(delta["drop"])
        out = {k: v for k, v in old.items() if k not in dropped}
        for key, sub in delta["set"].items():
            out[key] = _apply(old.get(key), sub)
        return out
    if kind in ("tail", "strtail"):
        keep = int(delta["keep"])
        return old[:keep] + delta["tail"]
    raise ValueError(f"unknown delta node kind {kind!r}")


def _quarantine(path: str) -> None:
    """Move a poisoned checkpoint aside so it is never re-parsed."""
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass


def write_checkpoint(path: str, checkpoint: CampaignCheckpoint) -> bool:
    """Atomically write ``checkpoint`` to ``path``; True when stored.

    Best-effort like the record cache: a full disk must not abort the
    run the checkpoint was meant to protect.  The tmp file never
    outlives the call.
    """
    try:
        payload = json.dumps(
            checkpoint.to_payload(), sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError):
        return False
    return _write_envelope(path, checkpoint.schema, payload)


def _write_envelope(path: str, schema: int, payload: str) -> bool:
    """Atomic, best-effort write of one checksummed envelope."""
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path: Optional[str] = None
    try:
        os.makedirs(directory, exist_ok=True)
        envelope = {
            "schema": schema,
            "checksum": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
            "payload": payload,
        }
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh)
        os.replace(tmp_path, path)
        tmp_path = None
        return True
    except (OSError, TypeError, ValueError):
        return False
    finally:
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


class DeltaCheckpointWriter:
    """Emit a chain of checkpoint cuts with delta compression.

    The first cut (and every ``rebase_every``-th thereafter) is a full
    schema-1 file; cuts in between are schema-2 deltas against the
    previous cut in the same directory.  A failed write leaves the
    chain base untouched, so the next cut simply diffs across the gap.

    One writer instance belongs to one campaign run: the chain threads
    through the files *that run* wrote, and a resumed campaign starts a
    fresh writer (its first cut is full, so old segments may be pruned
    once a new full cut lands).
    """

    def __init__(self, rebase_every: int = 16) -> None:
        if rebase_every < 0:
            raise ValueError("rebase_every cannot be negative")
        self.rebase_every = int(rebase_every)
        self._base_payload: Optional[Dict[str, Any]] = None
        self._base_name: Optional[str] = None
        self._base_dir: Optional[str] = None
        self._chain_len = 0

    def write(self, path: str, checkpoint: CampaignCheckpoint) -> bool:
        """Write ``checkpoint`` to ``path`` as a full or delta cut."""
        payload = checkpoint.to_payload()
        directory = os.path.dirname(os.path.abspath(path))
        delta_ok = (
            self._base_payload is not None
            and self._base_dir == directory
            and (self.rebase_every == 0 or self._chain_len + 1 < self.rebase_every)
        )
        if delta_ok:
            delta = _diff(self._base_payload, payload)
            if delta is None:
                delta = {_DELTA_KEY: "dict", "set": {}, "drop": []}
            try:
                body = json.dumps(
                    {"base": self._base_name, "delta": delta},
                    sort_keys=True,
                    separators=(",", ":"),
                )
            except (TypeError, ValueError):
                return False
            stored = _write_envelope(path, DELTA_SCHEMA, body)
            if stored:
                self._chain_len += 1
        else:
            stored = write_checkpoint(path, checkpoint)
            if stored:
                self._chain_len = 0
        if stored:
            self._base_payload = payload
            self._base_name = os.path.basename(path)
            self._base_dir = directory
        return stored


def read_checkpoint(path: str) -> Optional[CampaignCheckpoint]:
    """Load and verify a checkpoint; ``None`` when unusable.

    A file that exists but fails JSON parsing, checksum verification,
    or schema validation is quarantined to a ``.corrupt`` sibling; a
    merely unreadable file (I/O error) is left in place.  Either way
    the caller sees ``None`` and falls back to a from-scratch run.
    """
    payload = _read_payload(path, _MAX_CHAIN_DEPTH)
    if payload is None:
        return None
    try:
        checkpoint = CampaignCheckpoint.from_payload(payload)
        if checkpoint.schema != CHECKPOINT_SCHEMA:
            raise ValueError(f"unknown checkpoint schema {checkpoint.schema}")
    except (KeyError, TypeError, ValueError):
        _quarantine(path)
        return None
    return checkpoint


def _read_payload(path: str, depth: int) -> Optional[Dict[str, Any]]:
    """Verify one envelope and resolve its delta chain to a full payload.

    A corrupt file is quarantined at its own level; a delta whose base
    is missing or unusable simply returns ``None`` (the delta file
    itself is intact and may become loadable if the base reappears).
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            envelope = json.load(fh)
    except OSError:
        return None
    except ValueError:
        _quarantine(path)
        return None
    try:
        payload_str = envelope["payload"]
        schema = envelope.get("schema")
        if not isinstance(payload_str, str):
            raise ValueError("payload is not a string")
        actual = hashlib.sha256(payload_str.encode("utf-8")).hexdigest()
        if actual != envelope["checksum"]:
            raise ValueError("checksum mismatch")
        body = json.loads(payload_str)
        if schema == CHECKPOINT_SCHEMA:
            return body
        if schema != DELTA_SCHEMA:
            raise ValueError(f"unknown envelope schema {schema!r}")
        base_name = body["base"]
        delta = body["delta"]
        if not isinstance(base_name, str) or os.path.sep in base_name:
            raise ValueError("delta base must be a sibling filename")
    except (KeyError, TypeError, ValueError):
        _quarantine(path)
        return None
    if depth <= 0:
        return None
    base_path = os.path.join(os.path.dirname(os.path.abspath(path)), base_name)
    base_payload = _read_payload(base_path, depth - 1)
    if base_payload is None:
        return None
    try:
        return _apply(base_payload, delta)
    except (KeyError, TypeError, ValueError):
        _quarantine(path)
        return None
