"""The on-disk campaign checkpoint: envelope, checksum, crash-safe IO.

Layout
------
A checkpoint file is a small JSON envelope around one big payload
string::

    {"schema": 1, "checksum": sha256(payload), "payload": "<json>"}

The payload is serialised exactly once; the checksum is computed over
that byte-for-byte string, so a torn or bit-flipped file can never load
as a subtly wrong campaign.  Inside the payload:

- ``schema``: checkpoint layout version (bump on incompatible change);
- ``config``: the full encoded :class:`ExperimentConfig` (a checkpoint
  is self-describing -- resume needs no side channel);
- ``config_digest``: the same digest the run-record cache keys on;
- ``sim_time`` / ``seed``: where and under which master seed the run
  stood;
- ``components``: one versioned state blob per snapshottable layer
  (engine, rng, clock, fleet, thermal, monitoring, policy, telemetry,
  ...), keyed by component name;
- ``meta``: builder options (disabled instruments, link-fault plan,
  health policy, telemetry flag) plus the campaign phase markers.

Crash safety
------------
Writes go through the same discipline as the runner's record cache
(``_store_cached``): serialise to a ``mkstemp`` sibling, atomically
rename over the target, and unlink the tmp file in a ``finally`` so it
never outlives the attempt.  Loads quarantine anything corrupt --
unparsable JSON, checksum mismatch, unknown schema -- to a ``.corrupt``
sibling and return ``None`` instead of raising, so a damaged checkpoint
degrades to a from-scratch run rather than a crashed sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.state.codec import decode_value, encode_value

#: Checkpoint layout version; readers reject (quarantine) other values.
CHECKPOINT_SCHEMA = 1


@dataclass
class CampaignCheckpoint:
    """Everything needed to rebuild a mid-flight campaign."""

    config_digest: str
    sim_time: float
    seed: int
    components: Dict[str, Dict[str, Any]]
    meta: Dict[str, Any] = field(default_factory=dict)
    schema: int = CHECKPOINT_SCHEMA

    def to_payload(self) -> Dict[str, Any]:
        """The plain-data payload the envelope carries."""
        return {
            "schema": self.schema,
            "config_digest": self.config_digest,
            "sim_time": self.sim_time,
            "seed": self.seed,
            "components": self.components,
            "meta": self.meta,
        }

    @classmethod
    def from_payload(cls, data: Dict[str, Any]) -> "CampaignCheckpoint":
        return cls(
            schema=int(data["schema"]),
            config_digest=str(data["config_digest"]),
            sim_time=float(data["sim_time"]),
            seed=int(data["seed"]),
            components=dict(data["components"]),
            meta=dict(data.get("meta", {})),
        )

    # Convenience wrappers over the tagged-value codec, so callers do
    # not deal in encoded blobs directly.
    def encode_meta(self, key: str, value: Any) -> None:
        """Store a config-like value (dataclasses/enums allowed) in meta."""
        self.meta[key] = encode_value(value)

    def decode_meta(self, key: str, default: Any = None) -> Any:
        if key not in self.meta:
            return default
        return decode_value(self.meta[key])


def _quarantine(path: str) -> None:
    """Move a poisoned checkpoint aside so it is never re-parsed."""
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass


def write_checkpoint(path: str, checkpoint: CampaignCheckpoint) -> bool:
    """Atomically write ``checkpoint`` to ``path``; True when stored.

    Best-effort like the record cache: a full disk must not abort the
    run the checkpoint was meant to protect.  The tmp file never
    outlives the call.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp_path: Optional[str] = None
    try:
        os.makedirs(directory, exist_ok=True)
        payload = json.dumps(
            checkpoint.to_payload(), sort_keys=True, separators=(",", ":")
        )
        envelope = {
            "schema": checkpoint.schema,
            "checksum": hashlib.sha256(payload.encode("utf-8")).hexdigest(),
            "payload": payload,
        }
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(envelope, fh)
        os.replace(tmp_path, path)
        tmp_path = None
        return True
    except (OSError, TypeError, ValueError):
        return False
    finally:
        if tmp_path is not None:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


def read_checkpoint(path: str) -> Optional[CampaignCheckpoint]:
    """Load and verify a checkpoint; ``None`` when unusable.

    A file that exists but fails JSON parsing, checksum verification,
    or schema validation is quarantined to a ``.corrupt`` sibling; a
    merely unreadable file (I/O error) is left in place.  Either way
    the caller sees ``None`` and falls back to a from-scratch run.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as fh:
            envelope = json.load(fh)
    except OSError:
        return None
    except ValueError:
        _quarantine(path)
        return None
    try:
        payload_str = envelope["payload"]
        checksum = envelope["checksum"]
        if not isinstance(payload_str, str):
            raise ValueError("payload is not a string")
        actual = hashlib.sha256(payload_str.encode("utf-8")).hexdigest()
        if actual != checksum:
            raise ValueError("checksum mismatch")
        payload = json.loads(payload_str)
        checkpoint = CampaignCheckpoint.from_payload(payload)
        if checkpoint.schema != CHECKPOINT_SCHEMA:
            raise ValueError(f"unknown checkpoint schema {checkpoint.schema}")
    except (KeyError, TypeError, ValueError):
        _quarantine(path)
        return None
    return checkpoint
