"""Serialisation helpers for state dicts.

Two layers:

- **Packed arrays** -- the hot instrument histories (a full-scale
  campaign accumulates ~half a million sensor records) are stored as
  base64-encoded little-endian ``float64``/``int64`` columns instead of
  JSON number lists, which keeps checkpoint writes well under the 5 %
  step-time budget the benchmark satellite enforces.
- **Tagged values** -- configs, bus events, and fault plans are frozen
  dataclasses, enums, and datetimes.  :func:`encode_value` reduces them
  to tagged plain data and :func:`decode_value` rebuilds them against a
  fixed registry of ``repro.*`` classes -- nothing outside that
  registry is ever instantiated from a checkpoint.
"""

from __future__ import annotations

import base64
import dataclasses
import datetime as _dt
import enum
import math
from typing import Any, Dict, List, Optional, Sequence, Type

import numpy as np

_F64 = "<f8"
_I64 = "<i8"
_U8 = "|u1"


# ----------------------------------------------------------------------
# Packed columns
# ----------------------------------------------------------------------
def _pack(values, dtype: str) -> Dict[str, Any]:
    array = np.asarray(list(values), dtype=np.dtype(dtype))
    return {"__packed__": dtype, "n": int(array.size),
            "data": base64.b64encode(array.tobytes()).decode("ascii")}


def _unpack(blob: Dict[str, Any], dtype: str) -> np.ndarray:
    if blob.get("__packed__") != dtype:
        raise ValueError(f"expected a packed {dtype} column, got {blob!r:.80}")
    raw = base64.b64decode(blob["data"].encode("ascii"))
    array = np.frombuffer(raw, dtype=np.dtype(dtype))
    if array.size != blob["n"]:
        raise ValueError("packed column length mismatch")
    return array


def pack_floats(values: Sequence[float]) -> Dict[str, Any]:
    """A float column as a base64 ``float64`` blob."""
    return _pack(values, _F64)


def unpack_floats(blob: Dict[str, Any]) -> List[float]:
    return [float(v) for v in _unpack(blob, _F64)]


def pack_ints(values: Sequence[int]) -> Dict[str, Any]:
    """An int column as a base64 ``int64`` blob."""
    return _pack(values, _I64)


def unpack_ints(blob: Dict[str, Any]) -> List[int]:
    return [int(v) for v in _unpack(blob, _I64)]


def pack_bools(values: Sequence[bool]) -> Dict[str, Any]:
    """A bool column as a base64 byte blob."""
    return _pack([1 if v else 0 for v in values], _U8)


def unpack_bools(blob: Dict[str, Any]) -> List[bool]:
    return [bool(v) for v in _unpack(blob, _U8)]


def pack_optional_floats(values: Sequence[Optional[float]]) -> Dict[str, Any]:
    """Float-or-``None`` column; ``None`` rides as NaN.

    The instrument series this packs (sensor temperatures, logger
    readings) never contain a genuine NaN, so the sentinel is lossless.
    """
    return pack_floats([math.nan if v is None else float(v) for v in values])


def unpack_optional_floats(blob: Dict[str, Any]) -> List[Optional[float]]:
    return [None if math.isnan(v) else v for v in _unpack(blob, _F64)]


# ----------------------------------------------------------------------
# Tagged values
# ----------------------------------------------------------------------
def _class_registry() -> Dict[str, Type]:
    """Name -> class for everything a checkpoint may instantiate.

    Imported lazily so the state package stays import-light and free of
    cycles (core and monitoring import it back).
    """
    from repro.climate import profiles as _profiles
    from repro.control import controllers as _controllers
    from repro.control import observation as _observation
    from repro.core import config as _config
    from repro.core import results as _results
    from repro.hardware import faults as _hwfaults
    from repro.monitoring import health as _health
    from repro.monitoring import transport as _transport
    from repro.plant import faults as _plant
    from repro.plant import trip as _trip
    from repro.runner import policy as _policy
    from repro.sim import events as _events
    from repro.thermal import tent as _tent

    classes: List[Type] = [
        _config.ExperimentConfig,
        _config.HostPlan,
        _config.TentModificationPlan,
        _hwfaults.TransientFaultModel,
        _hwfaults.MemoryFaultModel,
        _hwfaults.FaultKind,
        _tent.Modification,
        _results.PrototypeResult,
        _results.SnapshotCensus,
        _transport.LinkFault,
        _transport.LinkFaultAction,
        _transport.LinkFaultPlan,
        _transport.LinkStorm,
        _health.HealthPolicy,
        _policy.RetryPolicy,
        _plant.PlantFault,
        _plant.PlantFaultKind,
        _plant.PlantFaultPlan,
        _plant.PlantStorm,
        _trip.ThermalTripPolicy,
        _controllers.ControllerSpec,
        _controllers.ControlAction,
        _observation.ControlObservation,
    ]
    classes.extend(
        obj
        for obj in vars(_events).values()
        if isinstance(obj, type)
        and issubclass(obj, _events.Event)
        and dataclasses.is_dataclass(obj)
    )
    classes.extend(
        obj
        for obj in vars(_profiles).values()
        if isinstance(obj, type) and dataclasses.is_dataclass(obj)
    )
    return {cls.__name__: cls for cls in classes}


def encode_value(value: Any) -> Any:
    """Reduce a value to tagged, JSON-serialisable plain data."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return {"__enum__": type(value).__name__, "name": value.name}
    if isinstance(value, _dt.datetime):
        return {"__datetime__": value.isoformat()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                f.name: encode_value(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): encode_value(v) for k, v in value.items()}
    raise TypeError(f"cannot encode {type(value).__name__} into a checkpoint")


def decode_value(data: Any) -> Any:
    """Rebuild :func:`encode_value` output; tuples come back as tuples.

    Dataclass fields declared as lists keep list values; every other
    encoded sequence decodes to a tuple, which matches how the frozen
    config/event classes declare their collections.
    """
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return tuple(decode_value(v) for v in data)
    if isinstance(data, dict):
        if "__enum__" in data:
            cls = _lookup(data["__enum__"])
            return cls[data["name"]]
        if "__datetime__" in data:
            return _dt.datetime.fromisoformat(data["__datetime__"])
        if "__dataclass__" in data:
            cls = _lookup(data["__dataclass__"])
            fields = {k: decode_value(v) for k, v in data["fields"].items()}
            known = {f.name for f in dataclasses.fields(cls)}
            return cls(**{k: v for k, v in fields.items() if k in known})
        return {k: decode_value(v) for k, v in data.items()}
    raise TypeError(f"cannot decode {type(data).__name__} from a checkpoint")


def _lookup(name: str) -> Type:
    registry = _class_registry()
    if name not in registry:
        raise ValueError(f"checkpoint names unknown class {name!r}")
    return registry[name]
