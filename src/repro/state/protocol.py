"""The :class:`Snapshottable` protocol and the errors the plane raises.

A component is snapshottable when it can externalise every value that
changes during a run into a plain dict and later restore a freshly
constructed instance from it.  The protocol is structural
(:func:`typing.runtime_checkable`): components do not import this
module, they simply grow the two methods.

Rules every implementation follows:

- the dict carries a ``"version"`` key; ``load_state_dict`` raises
  :class:`StateError` on a version it does not understand;
- the dict is JSON-serialisable and picklable: plain scalars,
  strings, lists, dicts, plus the packed-array blobs from
  :mod:`repro.state.codec`;
- object references are stored by stable identity (host id, enclosure
  name, switch name, engine task id), never by pickling the object --
  the restoring orchestrator resolves them against the reconstructed
  campaign;
- ``load_state_dict`` assumes a *freshly constructed* component (the
  restore-by-reconstruction contract) and overwrites, never merges.
"""

from __future__ import annotations

from typing import Any, Dict, Protocol, runtime_checkable


class StateError(RuntimeError):
    """A component cannot be snapshotted or a state dict cannot be loaded.

    Raised, for example, when the simulator's queue still holds raw
    closure callbacks (only key-registered work serialises), or when a
    state dict's ``version`` is newer than the running code.
    """


def check_version(component: str, state: Dict[str, Any], expected: int) -> None:
    """Raise :class:`StateError` unless ``state`` carries ``expected``."""
    version = state.get("version")
    if version != expected:
        raise StateError(
            f"{component}: cannot load state version {version!r} "
            f"(this build reads version {expected})"
        )


@runtime_checkable
class Snapshottable(Protocol):
    """Anything whose mutable state round-trips through a plain dict."""

    def state_dict(self) -> Dict[str, Any]:
        """A versioned, JSON-serialisable snapshot of all mutable state."""
        ...

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a freshly constructed instance to ``state``."""
        ...
