"""Telemetry: the reproduction's own measurement plane.

The paper is a measurement campaign; this package lets the reproduction
measure *itself* the same way -- metrics, span traces, and structured
run logs, threaded through the engine, the monitoring host, and the
sweep runner:

- :mod:`repro.telemetry.metrics` -- counters, gauges, fixed-bucket
  histograms; deterministic, picklable, mergeable; Prometheus-text and
  JSON exposition;
- :mod:`repro.telemetry.spans` -- per-label wall-time aggregation (the
  engine wraps every event callback; the collector wraps every round)
  plus the shared :class:`~repro.telemetry.spans.Stopwatch`;
- :mod:`repro.telemetry.hub` -- :class:`Telemetry` (one run's registry +
  tracer) and the frozen :class:`TelemetrySnapshot` records carry across
  process boundaries;
- :mod:`repro.telemetry.runlog` -- a JSONL
  :class:`~repro.sim.events.EventBus` sink, one line per campaign event;
- :mod:`repro.telemetry.report` -- the ``repro telemetry`` hot-label /
  slowest-span terminal report and its ``--json`` twin;
- :mod:`repro.telemetry.timeseries` -- the fleet observatory's
  bounded-memory columnar :class:`SeriesRecorder` (per-pod ring buffers
  with 2:1 downsampling, snapshot-safe);
- :mod:`repro.telemetry.progress` -- live JSONL heartbeats
  (:class:`ProgressMeter` for runs, :class:`SweepProgress` for sweeps).

Telemetry is strictly opt-in (``CampaignBuilder.with_telemetry``): a run
built without it takes a single ``is None`` branch per hook site and
produces byte-identical results.
"""

from repro.telemetry.hub import (
    TELEMETRY_SCHEMA,
    HistogramSnapshot,
    Telemetry,
    TelemetrySnapshot,
    merge_snapshots,
    snapshot_from_json_dict,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.progress import PROGRESS_SCHEMA, ProgressMeter, SweepProgress
from repro.telemetry.runlog import JsonlRunLog
from repro.telemetry.spans import SpanStats, SpanTracer, Stopwatch
from repro.telemetry.timeseries import SeriesRecorder

__all__ = [
    "PROGRESS_SCHEMA",
    "TELEMETRY_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "JsonlRunLog",
    "MetricsRegistry",
    "ProgressMeter",
    "SeriesRecorder",
    "SpanStats",
    "SpanTracer",
    "Stopwatch",
    "SweepProgress",
    "Telemetry",
    "TelemetrySnapshot",
    "merge_snapshots",
    "snapshot_from_json_dict",
]
