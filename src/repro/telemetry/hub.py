"""The per-run telemetry hub and its picklable snapshot.

:class:`Telemetry` is what a campaign carries when observability is
switched on: one :class:`~repro.telemetry.metrics.MetricsRegistry` plus
one :class:`~repro.telemetry.spans.SpanTracer`.  Nothing in the stack
holds telemetry by default -- ``CampaignBuilder.with_telemetry`` opts a
run in, and every hook site guards with a single ``is None`` check, so
a telemetry-free run does zero extra work and produces byte-identical
records.

:class:`TelemetrySnapshot` is the frozen, plain-data form a
:class:`~repro.runner.records.RunRecord` ships across process
boundaries.  Its equality deliberately ignores ``span_wall_s``: span
fire counts, counters, gauges, and histograms are pure functions of the
simulation, wall time is not, so serial and parallel sweeps of the same
seeds compare equal and merge to identical counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.telemetry.metrics import MetricsRegistry, escape_label_value
from repro.telemetry.spans import SpanTracer

#: Layout version of the ``--telemetry-out`` JSON file.
TELEMETRY_SCHEMA = 1


class Telemetry:
    """One run's metrics registry and span tracer, as a unit.

    Examples
    --------
    >>> tel = Telemetry()
    >>> tel.metrics.counter("demo").inc()
    >>> with tel.span("demo.work"):
    ...     pass
    >>> tel.snapshot().counters
    (('demo', 1),)
    """

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self.spans = SpanTracer()

    def __repr__(self) -> str:
        return f"Telemetry(metrics={len(self.metrics)}, span_labels={len(self.spans)})"

    def span(self, label: str):
        """Time a ``with`` block under ``label`` (delegates to the tracer)."""
        return self.spans.span(label)

    def counter(self, name: str, help: str = ""):
        """Fetch-or-create a counter (delegates to the registry).

        Mirrors :meth:`span` so call sites that only count -- like the
        sweep runner's retry/timeout/eviction tallies -- don't need to
        reach through ``metrics``.
        """
        return self.metrics.counter(name, help)

    def merge(self, other: "Telemetry") -> None:
        """Fold another hub in (counters/histograms/spans add, gauges max)."""
        self.metrics.merge(other.metrics)
        self.spans.merge(other.spans)

    # ------------------------------------------------------------------
    # Snapshot protocol
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        return {
            "metrics": self.metrics.to_json_dict(),
            "spans": self.spans.to_json_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.metrics = MetricsRegistry.from_json_dict(state["metrics"])
        self.spans.load_json_dict(state["spans"])

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> "TelemetrySnapshot":
        """Freeze the current state into a picklable snapshot."""
        data = self.metrics.to_json_dict()
        return TelemetrySnapshot(
            counters=tuple(sorted(data["counters"].items())),
            gauges=tuple(sorted(data["gauges"].items())),
            histograms=tuple(
                HistogramSnapshot(
                    name=name,
                    bounds=tuple(payload["bounds"]),
                    counts=tuple(payload["bucket_counts"]),
                    sum=payload["sum"],
                )
                for name, payload in sorted(data["histograms"].items())
            ),
            span_counts=tuple(sorted(self.spans.counts().items())),
            span_wall_s=tuple(
                (label, self.spans.stats(label).total_s) for label in self.spans.labels()
            ),
        )

    def to_json_dict(self) -> Dict[str, Any]:
        """The ``repro run --telemetry-out`` file layout."""
        data: Dict[str, Any] = {"schema": TELEMETRY_SCHEMA}
        data.update(self.metrics.to_json_dict())
        data["spans"] = self.spans.to_json_dict()
        return data

    def to_prometheus_text(self, prefix: str = "repro_") -> str:
        """Prometheus text format: the registry plus the span families."""
        lines = [self.metrics.to_prometheus_text(prefix=prefix).rstrip("\n")]
        for label in self.spans.labels():
            stats = self.spans.stats(label)
            escaped = escape_label_value(label)
            lines.append(
                f'{prefix}span_fired_total{{label="{escaped}"}} {stats.count}'
            )
            lines.append(
                f'{prefix}span_wall_seconds_total{{label="{escaped}"}} '
                f"{stats.total_s:.9f}"
            )
        return "\n".join(line for line in lines if line) + "\n"


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state (``counts`` has one extra +Inf slot)."""

    name: str
    bounds: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float

    @property
    def count(self) -> int:
        """Total observations."""
        return sum(self.counts)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Plain-data telemetry state, safe to pickle, cache, and compare.

    ``span_wall_s`` is wall-clock bookkeeping: excluded from equality
    (like ``RunRecord.elapsed_s``) and from canonical JSON, so the
    serial-vs-parallel determinism guarantee extends to telemetry.
    """

    counters: Tuple[Tuple[str, int], ...]
    gauges: Tuple[Tuple[str, float], ...]
    histograms: Tuple[HistogramSnapshot, ...]
    span_counts: Tuple[Tuple[str, int], ...]
    span_wall_s: Tuple[Tuple[str, float], ...] = field(compare=False, default=())

    def __repr__(self) -> str:
        fired = sum(count for _, count in self.span_counts)
        return (
            f"TelemetrySnapshot(counters={len(self.counters)}, "
            f"span_labels={len(self.span_counts)}, span_fired={fired})"
        )

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """One counter's value (0 if absent)."""
        return dict(self.counters).get(name, 0)

    def span_count(self, label: str) -> int:
        """One span label's fire count (0 if absent)."""
        return dict(self.span_counts).get(label, 0)

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    def merge(self, other: "TelemetrySnapshot") -> "TelemetrySnapshot":
        """A new snapshot: counts add, gauges max, wall time adds."""
        return TelemetrySnapshot(
            counters=_merge_sums(self.counters, other.counters),
            gauges=_merge_max(self.gauges, other.gauges),
            histograms=_merge_histograms(self.histograms, other.histograms),
            span_counts=_merge_sums(self.span_counts, other.span_counts),
            span_wall_s=_merge_sums(self.span_wall_s, other.span_wall_s),
        )

    # ------------------------------------------------------------------
    # JSON round trip (for the on-disk record cache)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "counters": [[name, value] for name, value in self.counters],
            "gauges": [[name, value] for name, value in self.gauges],
            "histograms": [
                {
                    "name": h.name,
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                }
                for h in self.histograms
            ],
            "span_counts": [[name, value] for name, value in self.span_counts],
            "span_wall_s": [[name, value] for name, value in self.span_wall_s],
        }


def snapshot_from_json_dict(data: Dict[str, Any]) -> TelemetrySnapshot:
    """Rebuild a snapshot from :meth:`TelemetrySnapshot.to_json_dict`."""
    return TelemetrySnapshot(
        counters=tuple((str(k), int(v)) for k, v in data.get("counters", [])),
        gauges=tuple((str(k), float(v)) for k, v in data.get("gauges", [])),
        histograms=tuple(
            HistogramSnapshot(
                name=str(h["name"]),
                bounds=tuple(float(b) for b in h["bounds"]),
                counts=tuple(int(c) for c in h["counts"]),
                sum=float(h["sum"]),
            )
            for h in data.get("histograms", [])
        ),
        span_counts=tuple((str(k), int(v)) for k, v in data.get("span_counts", [])),
        span_wall_s=tuple((str(k), float(v)) for k, v in data.get("span_wall_s", [])),
    )


def merge_snapshots(
    snapshots: "Iterator[TelemetrySnapshot] | Tuple[TelemetrySnapshot, ...] | list",
) -> Optional[TelemetrySnapshot]:
    """Fold many snapshots into one (``None`` for an empty input)."""
    merged: Optional[TelemetrySnapshot] = None
    for snapshot in snapshots:
        merged = snapshot if merged is None else merged.merge(snapshot)
    return merged


def _merge_sums(a, b):
    tally: Dict[str, Any] = dict(a)
    for name, value in b:
        tally[name] = tally.get(name, 0) + value
    return tuple(sorted(tally.items()))


def _merge_max(a, b):
    tally: Dict[str, float] = dict(a)
    for name, value in b:
        tally[name] = max(tally[name], value) if name in tally else value
    return tuple(sorted(tally.items()))


def _merge_histograms(
    a: Tuple[HistogramSnapshot, ...], b: Tuple[HistogramSnapshot, ...]
) -> Tuple[HistogramSnapshot, ...]:
    by_name: Dict[str, HistogramSnapshot] = {h.name: h for h in a}
    for theirs in b:
        mine = by_name.get(theirs.name)
        if mine is None:
            by_name[theirs.name] = theirs
            continue
        if mine.bounds != theirs.bounds:
            raise ValueError(
                f"cannot merge histogram {theirs.name!r}: "
                f"bounds {mine.bounds} != {theirs.bounds}"
            )
        by_name[theirs.name] = HistogramSnapshot(
            name=mine.name,
            bounds=mine.bounds,
            counts=tuple(x + y for x, y in zip(mine.counts, theirs.counts)),
            sum=mine.sum + theirs.sum,
        )
    return tuple(by_name[name] for name in sorted(by_name))
